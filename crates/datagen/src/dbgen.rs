//! Database generation: schemas and content.
//!
//! Given a [`DomainSpec`] and a [`SchemaProfile`], produces a populated
//! [`minidb::Database`] whose shape statistics (tables per DB, columns per
//! table, PKs, FKs) target the paper's Table 2 for Spider-like and BIRD-like
//! corpora.

use crate::domains::{DomainId, DomainSpec};
use minidb::{ColumnDef, ColumnType, Database, ForeignKey, TableSchema, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape parameters for database generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemaProfile {
    /// Minimum tables per database.
    pub tables_min: usize,
    /// Maximum tables per database.
    pub tables_max: usize,
    /// Minimum attribute columns per table (the id column is extra).
    pub attrs_min: usize,
    /// Maximum attribute columns per table.
    pub attrs_max: usize,
    /// Minimum rows per table.
    pub rows_min: usize,
    /// Maximum rows per table.
    pub rows_max: usize,
    /// Probability that a non-first table gains a foreign key to an earlier
    /// table (evaluated per potential parent, capped at 2 FKs).
    pub fk_prob: f64,
}

impl SchemaProfile {
    /// Profile matching the Spider dev-set shape of Table 2
    /// (2–11 tables, ~22 columns per DB, ~4-5 columns per table).
    pub fn spider() -> Self {
        Self {
            tables_min: 2,
            tables_max: 8,
            attrs_min: 3,
            attrs_max: 7,
            rows_min: 12,
            rows_max: 60,
            fk_prob: 0.75,
        }
    }

    /// Profile matching the BIRD dev-set shape of Table 2 (3–13 tables,
    /// ~72 columns per DB, ~10 columns per table, denser FK graphs, larger
    /// content).
    pub fn bird() -> Self {
        Self {
            tables_min: 3,
            tables_max: 12,
            attrs_min: 6,
            attrs_max: 14,
            rows_min: 40,
            rows_max: 160,
            fk_prob: 0.9,
        }
    }
}

/// A generated, populated database plus its provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratedDb {
    /// Unique database identifier (e.g. `college_0`).
    pub db_id: String,
    /// The domain this database belongs to.
    pub domain: DomainId,
    /// The populated database.
    pub database: Database,
}

/// Generate one populated database for `domain` with the given profile.
/// Deterministic in `seed`.
pub fn generate_db(
    db_id: impl Into<String>,
    domain: DomainId,
    profile: &SchemaProfile,
    seed: u64,
) -> GeneratedDb {
    let db_id = db_id.into();
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = domain.spec();

    let n_tables = rng.gen_range(profile.tables_min..=profile.tables_max);
    let schemas = generate_schemas(spec, n_tables, profile, &mut rng);

    let mut database = Database::new(db_id.clone());
    // Populate in declaration order so FK parents exist first.
    let mut pk_values: Vec<Vec<i64>> = Vec::with_capacity(schemas.len());
    for schema in &schemas {
        let n_rows = rng.gen_range(profile.rows_min..=profile.rows_max);
        let rows = populate(schema, n_rows, spec, &schemas, &pk_values, &mut rng);
        pk_values.push((1..=n_rows as i64).collect());
        let table = minidb::database::Table::from_rows(schema.clone(), rows)
            .expect("generated rows match the generated schema");
        database.add_table(table).expect("generated schema names are unique");
    }
    GeneratedDb { db_id, domain, database }
}

/// Regenerate a database's *content* under the same schema with a new
/// seed — the mechanism behind Spider's test-suite execution accuracy,
/// which compares query results on several database instances so that
/// coincidental result matches on one instance don't count as correct.
pub fn regenerate_content(db: &GeneratedDb, profile: &SchemaProfile, seed: u64) -> GeneratedDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = db.domain.spec();
    // topological order: FK parents must be populated before their children
    // (the catalog iterates by name, which need not respect dependencies)
    let mut pending: Vec<TableSchema> =
        db.database.tables().map(|t| t.schema.clone()).collect();
    let mut schemas: Vec<TableSchema> = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let placed: Vec<String> = schemas.iter().map(|s| s.name.clone()).collect();
        let ready = pending
            .iter()
            .position(|s| s.foreign_keys.iter().all(|fk| placed.contains(&fk.ref_table)))
            .expect("FK graph generated as a DAG");
        schemas.push(pending.remove(ready));
    }
    let mut database = Database::new(db.database.name());
    let mut pk_values: Vec<Vec<i64>> = Vec::with_capacity(schemas.len());
    for schema in &schemas {
        let n_rows = rng.gen_range(profile.rows_min..=profile.rows_max);
        let rows = populate(schema, n_rows, spec, &schemas, &pk_values, &mut rng);
        pk_values.push((1..=n_rows as i64).collect());
        let table = minidb::database::Table::from_rows(schema.clone(), rows)
            .expect("regenerated rows match the schema");
        database.add_table(table).expect("schema names unchanged");
    }
    GeneratedDb { db_id: db.db_id.clone(), domain: db.domain, database }
}

fn generate_schemas(
    spec: &DomainSpec,
    n_tables: usize,
    profile: &SchemaProfile,
    rng: &mut StdRng,
) -> Vec<TableSchema> {
    // Choose entity templates; reuse with numeric suffixes when the profile
    // wants more tables than the domain has entities.
    let mut entity_order: Vec<usize> = (0..spec.entities.len()).collect();
    entity_order.shuffle(rng);
    let mut schemas: Vec<TableSchema> = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let ent = &spec.entities[entity_order[t % entity_order.len()]];
        let name = if t < entity_order.len() {
            ent.name.to_string()
        } else {
            format!("{}_{}", ent.name, t / entity_order.len() + 1)
        };

        let mut columns = vec![ColumnDef::new("id", ColumnType::Integer)];
        let n_attrs = rng
            .gen_range(profile.attrs_min..=profile.attrs_max)
            .min(ent.attrs.len().max(profile.attrs_min));
        let mut attrs: Vec<&str> = ent.attrs.to_vec();
        attrs.shuffle(rng);
        for a in attrs.iter().take(n_attrs) {
            columns.push(ColumnDef::new(*a, column_type_for(a)));
        }
        // generic filler attributes if the entity ran out
        let generic = ["code", "status", "notes", "category", "rank", "total"];
        let mut gi = 0;
        while columns.len() - 1 < n_attrs && gi < generic.len() {
            let g = generic[gi];
            gi += 1;
            if columns.iter().any(|c| c.name == g) {
                continue;
            }
            columns.push(ColumnDef::new(g, column_type_for(g)));
        }

        let mut schema = TableSchema::new(name, columns);
        schema.primary_key = vec![0];

        // foreign keys to earlier tables
        if t > 0 {
            let mut fk_count = 0;
            let mut parents: Vec<usize> = (0..t).collect();
            parents.shuffle(rng);
            for p in parents {
                if fk_count >= 2 {
                    break;
                }
                if rng.gen_bool(profile.fk_prob / (fk_count + 1) as f64) {
                    let parent_name = schemas[p].name.clone();
                    let fk_col = format!("{parent_name}_id");
                    if schema.column_index(&fk_col).is_some() {
                        continue;
                    }
                    schema.columns.push(ColumnDef::new(fk_col, ColumnType::Integer));
                    schema.foreign_keys.push(ForeignKey {
                        column: schema.columns.len() - 1,
                        ref_table: parent_name,
                        ref_column: "id".into(),
                    });
                    fk_count += 1;
                }
            }
        }
        schemas.push(schema);
    }
    schemas
}

/// Column affinity heuristics from attribute names.
fn column_type_for(name: &str) -> ColumnType {
    const REAL_HINTS: [&str; 12] = [
        "rating", "gpa", "rate", "score", "price", "gdp", "efficiency", "utilization",
        "temperature", "humidity", "pressure", "factor",
    ];
    const INT_HINTS: [&str; 36] = [
        "year", "age", "count", "capacity", "salary", "budget", "population", "sales",
        "amount", "length", "height", "area", "distance", "duration", "stock", "wins",
        "losses", "credits", "level", "number", "pages", "copies", "members", "followers",
        "likes", "shares", "comments", "beds", "floor", "runways", "passengers", "quantity",
        "total", "mileage", "hours", "votes",
    ];
    let lower = name.to_lowercase();
    if REAL_HINTS.iter().any(|h| lower.contains(h)) {
        ColumnType::Real
    } else if INT_HINTS.iter().any(|h| lower.contains(h)) {
        ColumnType::Integer
    } else {
        ColumnType::Text
    }
}

/// Deterministic pseudo-name generator: alternating syllables.
fn make_name(rng: &mut StdRng) -> String {
    const ONSETS: [&str; 14] =
        ["b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z"];
    const VOWELS: [&str; 6] = ["a", "e", "i", "o", "u", "ia"];
    let syllables = rng.gen_range(2..=3);
    let mut s = String::new();
    for _ in 0..syllables {
        s.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        s.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
    }
    // capitalize
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => s,
    }
}

fn populate(
    schema: &TableSchema,
    n_rows: usize,
    spec: &DomainSpec,
    all_schemas: &[TableSchema],
    pk_values: &[Vec<i64>],
    rng: &mut StdRng,
) -> Vec<Vec<Value>> {
    let fk_cols: Vec<(usize, usize)> = schema
        .foreign_keys
        .iter()
        .filter_map(|fk| {
            all_schemas
                .iter()
                .position(|s| s.name == fk.ref_table)
                .map(|parent| (fk.column, parent))
        })
        .collect();

    (0..n_rows)
        .map(|i| {
            schema
                .columns
                .iter()
                .enumerate()
                .map(|(ci, col)| {
                    if ci == 0 {
                        return Value::Int(i as i64 + 1);
                    }
                    if let Some(&(_, parent)) = fk_cols.iter().find(|(c, _)| *c == ci) {
                        // referential integrity with a small chance of NULL
                        if rng.gen_bool(0.05) {
                            return Value::Null;
                        }
                        let parents = &pk_values[parent];
                        return Value::Int(parents[rng.gen_range(0..parents.len())]);
                    }
                    value_for_column(&col.name, col.ty, spec, rng)
                })
                .collect()
        })
        .collect()
}

fn value_for_column(
    name: &str,
    ty: ColumnType,
    spec: &DomainSpec,
    rng: &mut StdRng,
) -> Value {
    // occasional NULLs make COUNT(col) vs COUNT(*) distinguishable
    if rng.gen_bool(0.03) {
        return Value::Null;
    }
    let lower = name.to_lowercase();
    match ty {
        ColumnType::Integer => {
            let v = if lower.contains("year") {
                rng.gen_range(1960..=2024)
            } else if lower.contains("age") {
                rng.gen_range(16..=85)
            } else if lower.contains("salary") || lower.contains("budget") {
                rng.gen_range(20..=500) * 1000
            } else if lower.contains("population") {
                rng.gen_range(1..=9000) * 1000
            } else if lower.contains("capacity") || lower.contains("count") {
                rng.gen_range(5..=2000)
            } else {
                rng.gen_range(0..=1000)
            };
            Value::Int(v)
        }
        ColumnType::Real => {
            let v = if lower.contains("rating") || lower.contains("score") {
                rng.gen_range(0.0..10.0f64)
            } else if lower.contains("gpa") {
                rng.gen_range(1.0..4.0f64)
            } else if lower.contains("rate") {
                rng.gen_range(0.0..1.0f64)
            } else {
                rng.gen_range(0.0..1000.0f64)
            };
            Value::Real((v * 100.0).round() / 100.0)
        }
        ColumnType::Text => {
            if lower.contains("name") || lower.contains("title") || lower.contains("username") {
                Value::Text(make_name(rng))
            } else if lower.contains("city") || lower.contains("location")
                || lower.contains("address") || lower.contains("origin")
                || lower.contains("destination")
            {
                Value::Text(format!("{} City", make_name(rng)))
            } else {
                // domain-flavoured categorical value
                Value::Text(spec.values[rng.gen_range(0..spec.values.len())].to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::domain_by_name;

    fn college() -> DomainId {
        domain_by_name("College").unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_db("college_0", college(), &SchemaProfile::spider(), 7);
        let b = generate_db("college_0", college(), &SchemaProfile::spider(), 7);
        assert_eq!(a.database.table_count(), b.database.table_count());
        let ta: Vec<_> = a.database.tables().map(|t| (&t.schema.name, t.n_rows())).collect();
        let tb: Vec<_> = b.database.tables().map(|t| (&t.schema.name, t.n_rows())).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_db("college_0", college(), &SchemaProfile::spider(), 7);
        let b = generate_db("college_1", college(), &SchemaProfile::spider(), 8);
        let ra: usize = a.database.tables().map(|t| t.n_rows()).sum();
        let rb: usize = b.database.tables().map(|t| t.n_rows()).sum();
        // extremely unlikely to coincide exactly on both counts and names
        assert!(
            ra != rb || a.database.table_count() != b.database.table_count(),
            "seeds should produce different databases"
        );
    }

    #[test]
    fn shape_within_profile() {
        let p = SchemaProfile::spider();
        for seed in 0..20 {
            let g = generate_db(format!("db{seed}"), college(), &p, seed);
            let n = g.database.table_count();
            assert!((p.tables_min..=p.tables_max).contains(&n), "tables {n}");
            for t in g.database.tables() {
                assert!(t.schema.columns.len() > p.attrs_min);
                assert!((p.rows_min..=p.rows_max).contains(&t.n_rows()));
                assert_eq!(t.schema.primary_key, vec![0]);
            }
        }
    }

    #[test]
    fn fks_reference_existing_tables_and_rows() {
        for seed in 0..10 {
            let g = generate_db(format!("db{seed}"), college(), &SchemaProfile::bird(), seed);
            for t in g.database.tables() {
                for fk in &t.schema.foreign_keys {
                    let parent = g.database.table(&fk.ref_table).expect("parent exists");
                    let parent_ids: Vec<i64> = parent
                        .to_rows()
                        .iter()
                        .map(|r| match &r[0] {
                            Value::Int(i) => *i,
                            _ => panic!("pk not int"),
                        })
                        .collect();
                    for row in t.to_rows() {
                        match &row[fk.column] {
                            Value::Null => {}
                            Value::Int(v) => {
                                assert!(parent_ids.contains(v), "dangling FK {v}");
                            }
                            other => panic!("fk value {other:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bird_profile_is_bigger_than_spider() {
        // aggregate over seeds: BIRD databases should have more columns/rows
        let mut spider_cols = 0usize;
        let mut bird_cols = 0usize;
        for seed in 0..12 {
            let s = generate_db(format!("s{seed}"), college(), &SchemaProfile::spider(), seed);
            let b = generate_db(format!("b{seed}"), college(), &SchemaProfile::bird(), seed);
            spider_cols += s.database.tables().map(|t| t.schema.columns.len()).sum::<usize>();
            bird_cols += b.database.tables().map(|t| t.schema.columns.len()).sum::<usize>();
        }
        assert!(bird_cols > spider_cols, "bird {bird_cols} vs spider {spider_cols}");
    }

    #[test]
    fn generated_db_is_queryable() {
        let g = generate_db("db0", college(), &SchemaProfile::spider(), 3);
        let first = g.database.tables().next().unwrap().schema.name.clone();
        let rs = g.database.run(&format!("SELECT COUNT(*) FROM {first}")).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn regenerated_content_same_schema_different_rows() {
        let g = generate_db("db0", college(), &SchemaProfile::spider(), 3);
        let r = regenerate_content(&g, &SchemaProfile::spider(), 99);
        // schemas identical
        let a: Vec<_> = g.database.tables().map(|t| t.schema.clone()).collect();
        let b: Vec<_> = r.database.tables().map(|t| t.schema.clone()).collect();
        assert_eq!(a, b);
        // content differs somewhere
        let differs = g
            .database
            .tables()
            .zip(r.database.tables())
            .any(|(x, y)| x.n_rows() != y.n_rows() || x.to_rows() != y.to_rows());
        assert!(differs, "new seed must change content");
        // referential integrity holds in the regenerated instance
        for t in r.database.tables() {
            for fk in &t.schema.foreign_keys {
                let parent = r.database.table(&fk.ref_table).expect("parent exists");
                let ids: Vec<i64> = parent
                    .to_rows()
                    .iter()
                    .map(|row| match &row[0] {
                        Value::Int(i) => *i,
                        other => panic!("pk {other:?}"),
                    })
                    .collect();
                for row in t.to_rows() {
                    if let Value::Int(v) = &row[fk.column] {
                        assert!(ids.contains(v), "dangling FK after regeneration");
                    }
                }
            }
        }
        // gold-style queries still run
        let first = r.database.tables().next().unwrap().schema.name.clone();
        r.database.run(&format!("SELECT COUNT(*) FROM {first}")).unwrap();
    }

    #[test]
    fn regeneration_is_deterministic() {
        let g = generate_db("db0", college(), &SchemaProfile::bird(), 5);
        let a = regenerate_content(&g, &SchemaProfile::bird(), 7);
        let b = regenerate_content(&g, &SchemaProfile::bird(), 7);
        let ra: Vec<usize> = a.database.tables().map(|t| t.n_rows()).collect();
        let rb: Vec<usize> = b.database.tables().map(|t| t.n_rows()).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn column_types_heuristics() {
        assert_eq!(column_type_for("year"), ColumnType::Integer);
        assert_eq!(column_type_for("rating"), ColumnType::Real);
        assert_eq!(column_type_for("name"), ColumnType::Text);
        assert_eq!(column_type_for("enrollment_year"), ColumnType::Integer);
    }
}
