//! Dataset statistics — the paper's Table 2.
//!
//! Computes per-database shape statistics (tables, columns, columns per
//! table, primary keys, foreign keys) with Min/Max/Avg aggregation over a
//! set of databases, matching the columns of Table 2 ("Spider vs. BIRD
//! Dataset Statistics").

use crate::dbgen::GeneratedDb;
use serde::{Deserialize, Serialize};

/// Min / Max / Avg triple over a per-database quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMaxAvg {
    /// Minimum over databases.
    pub min: f64,
    /// Maximum over databases.
    pub max: f64,
    /// Mean over databases.
    pub avg: f64,
}

impl MinMaxAvg {
    fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "statistics over empty set");
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        Self { min, max, avg }
    }
}

impl std::fmt::Display for MinMaxAvg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:>4} {:>5} {:>6.1}", self.min, self.max, self.avg)
    }
}

/// One row of Table 2: shape statistics over a database split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Tables per database.
    pub tables_per_db: MinMaxAvg,
    /// Columns per database (summed over tables).
    pub columns_per_db: MinMaxAvg,
    /// Columns per table (averaged within each database first).
    pub columns_per_table: MinMaxAvg,
    /// Primary keys per database.
    pub pks_per_db: MinMaxAvg,
    /// Foreign keys per database.
    pub fks_per_db: MinMaxAvg,
}

/// Compute Table 2 statistics over a set of databases.
pub fn dataset_stats<'a>(dbs: impl IntoIterator<Item = &'a GeneratedDb>) -> DatasetStats {
    let mut tables = Vec::new();
    let mut columns = Vec::new();
    let mut cols_per_table = Vec::new();
    let mut pks = Vec::new();
    let mut fks = Vec::new();
    for g in dbs {
        let db = &g.database;
        let n_tables = db.table_count();
        let n_columns: usize = db.tables().map(|t| t.schema.columns.len()).sum();
        let n_pks: usize = db.tables().filter(|t| !t.schema.primary_key.is_empty()).count();
        let n_fks: usize = db.tables().map(|t| t.schema.foreign_keys.len()).sum();
        tables.push(n_tables as f64);
        columns.push(n_columns as f64);
        cols_per_table.push(n_columns as f64 / n_tables as f64);
        pks.push(n_pks as f64);
        fks.push(n_fks as f64);
    }
    DatasetStats {
        tables_per_db: MinMaxAvg::of(&tables),
        columns_per_db: MinMaxAvg::of(&columns),
        columns_per_table: MinMaxAvg::of(&cols_per_table),
        pks_per_db: MinMaxAvg::of(&pks),
        fks_per_db: MinMaxAvg::of(&fks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{generate_db, SchemaProfile};
    use crate::domains::domain_by_name;

    fn dbs(profile: &SchemaProfile, n: usize) -> Vec<GeneratedDb> {
        let dom = domain_by_name("Finance").unwrap();
        (0..n)
            .map(|i| generate_db(format!("db{i}"), dom, profile, i as u64))
            .collect()
    }

    #[test]
    fn min_max_avg_basics() {
        let m = MinMaxAvg::of(&[1.0, 2.0, 3.0]);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 3.0);
        assert!((m.avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_respect_profile_bounds() {
        let p = SchemaProfile::spider();
        let v = dbs(&p, 15);
        let s = dataset_stats(v.iter());
        assert!(s.tables_per_db.min >= p.tables_min as f64);
        assert!(s.tables_per_db.max <= p.tables_max as f64);
        assert!(s.pks_per_db.min >= 1.0, "every table has a PK");
    }

    #[test]
    fn bird_bigger_than_spider_like_table2() {
        let s = dataset_stats(dbs(&SchemaProfile::spider(), 15).iter());
        let b = dataset_stats(dbs(&SchemaProfile::bird(), 15).iter());
        assert!(b.columns_per_db.avg > s.columns_per_db.avg);
        assert!(b.columns_per_table.avg > s.columns_per_table.avg);
        assert!(b.fks_per_db.avg > s.fks_per_db.avg);
    }

    #[test]
    #[should_panic(expected = "statistics over empty set")]
    fn empty_set_panics() {
        let _ = dataset_stats(std::iter::empty());
    }
}
