//! Corpus assembly: Spider-like and BIRD-like benchmarks.
//!
//! A [`Corpus`] bundles generated databases with train/dev (NL, SQL) samples.
//! Every gold query is validated by actually executing it on its database;
//! samples whose gold SQL fails to execute are regenerated. Dev samples may
//! carry multiple NL variants (for QVT); recipes are mixed per corpus so the
//! hardness distribution approximates the original benchmarks.

use crate::dbgen::{generate_db, GeneratedDb, SchemaProfile};
use crate::domains::{DomainId, DOMAINS};
use crate::nl::render_variants;
use crate::query_gen::{QueryGenerator, Recipe};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlkit::hardness::BirdDifficulty;
use sqlkit::{Hardness, Query, SqlFeatures};
use std::collections::BTreeMap;

/// Which benchmark family a corpus imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorpusKind {
    /// Spider-like: moderate schemas, the classic hardness mix.
    Spider,
    /// BIRD-like: bigger schemas and content, harder queries, CASE/IIF.
    Bird,
}

impl CorpusKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CorpusKind::Spider => "Spider",
            CorpusKind::Bird => "BIRD",
        }
    }
}

/// One (NL, SQL) benchmark sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// Stable sample id within its split.
    pub id: usize,
    /// Database this sample queries.
    pub db_id: String,
    /// Domain of that database.
    pub domain: DomainId,
    /// NL question variants; the first is the canonical question. QVT uses
    /// samples with two or more variants.
    pub variants: Vec<String>,
    /// Gold SQL text.
    pub sql: String,
    /// Gold SQL parsed.
    pub query: Query,
    /// Spider hardness bucket.
    pub hardness: Hardness,
    /// BIRD-style difficulty bucket.
    pub bird_difficulty: BirdDifficulty,
    /// Extracted SQL features (for the dataset filter).
    pub features: SqlFeatures,
    /// Robustness perturbation applied to this sample, if any (Dr.Spider
    /// style; see `crate::perturb`).
    pub perturbation: Option<crate::perturb::Perturbation>,
}

impl Sample {
    /// The canonical NL question.
    pub fn question(&self) -> &str {
        &self.variants[0]
    }
}

/// A full benchmark: databases plus train/dev splits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corpus {
    /// Which benchmark family this imitates.
    pub kind: CorpusKind,
    /// All databases, train and dev, by id.
    pub databases: BTreeMap<String, GeneratedDb>,
    /// Ids of the training databases.
    pub train_db_ids: Vec<String>,
    /// Ids of the dev databases.
    pub dev_db_ids: Vec<String>,
    /// Training samples (over training databases).
    pub train: Vec<Sample>,
    /// Dev samples (over dev databases).
    pub dev: Vec<Sample>,
}

impl Corpus {
    /// Database for a sample.
    pub fn db(&self, sample: &Sample) -> &GeneratedDb {
        &self.databases[&sample.db_id]
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of training databases.
    pub train_dbs: usize,
    /// Number of dev databases.
    pub dev_dbs: usize,
    /// Number of training samples.
    pub train_samples: usize,
    /// Number of dev samples.
    pub dev_samples: usize,
    /// Probability that a dev sample gets 2–4 NL variants (QVT fodder).
    pub variant_prob: f64,
    /// Master seed.
    pub seed: u64,
}

impl CorpusConfig {
    /// Full-size Spider-like corpus: 140 train DBs / 20 dev DBs,
    /// 7000 train / 1034 dev samples — matching the paper's setup.
    pub fn spider(seed: u64) -> Self {
        Self {
            train_dbs: 140,
            dev_dbs: 20,
            train_samples: 7000,
            dev_samples: 1034,
            variant_prob: 0.5,
            seed,
        }
    }

    /// Full-size BIRD-like corpus: 1534 dev samples as in the paper's
    /// experiments; training scaled to keep generation quick.
    pub fn bird(seed: u64) -> Self {
        Self {
            train_dbs: 40,
            dev_dbs: 11,
            train_samples: 3000,
            dev_samples: 1534,
            variant_prob: 0.08,
            seed,
        }
    }

    /// A small corpus for tests and examples.
    pub fn tiny(seed: u64) -> Self {
        Self {
            train_dbs: 6,
            dev_dbs: 3,
            train_samples: 120,
            dev_samples: 60,
            variant_prob: 0.5,
            seed,
        }
    }
}

/// Recipe mixing weights per corpus kind.
fn recipe_weights(kind: CorpusKind) -> Vec<(Recipe, u32)> {
    match kind {
        CorpusKind::Spider => vec![
            (Recipe::SimpleSelect, 9),
            (Recipe::CountAll, 9),
            (Recipe::FilterSelect, 12),
            (Recipe::MultiColFilter, 10),
            (Recipe::OrderLimit, 8),
            (Recipe::GroupCount, 7),
            (Recipe::JoinSelect, 7),
            (Recipe::JoinFilter, 8),
            (Recipe::JoinGroup, 5),
            (Recipe::ScalarSubquery, 6),
            (Recipe::InSubquery, 9),
            (Recipe::GroupHavingOrder, 5),
            (Recipe::MultiJoinComplex, 9),
            (Recipe::SetOp, 3),
        ],
        CorpusKind::Bird => vec![
            (Recipe::SimpleSelect, 6),
            (Recipe::CountAll, 6),
            (Recipe::FilterSelect, 10),
            (Recipe::MultiColFilter, 10),
            (Recipe::OrderLimit, 8),
            (Recipe::GroupCount, 7),
            (Recipe::JoinSelect, 8),
            (Recipe::JoinFilter, 10),
            (Recipe::JoinGroup, 7),
            (Recipe::ScalarSubquery, 7),
            (Recipe::InSubquery, 7),
            (Recipe::GroupHavingOrder, 6),
            (Recipe::MultiJoinComplex, 6),
            (Recipe::SetOp, 3),
            (Recipe::CaseProjection, 7),
        ],
    }
}

fn pick_weighted(weights: &[(Recipe, u32)], rng: &mut StdRng) -> Recipe {
    let total: u32 = weights.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (r, w) in weights {
        if roll < *w {
            return *r;
        }
        roll -= w;
    }
    weights[0].0
}

/// Assign domains to `n` databases proportionally to each domain's
/// `train_db_weight` (every domain gets at least one when n permits).
fn assign_domains(n: usize, rng: &mut StdRng) -> Vec<DomainId> {
    let total_weight: u32 = DOMAINS.iter().map(|d| d.train_db_weight).sum();
    let mut out = Vec::with_capacity(n);
    if n >= DOMAINS.len() {
        // one of each first, then weighted remainder
        out.extend((0..DOMAINS.len()).map(DomainId));
    }
    while out.len() < n {
        let mut roll = rng.gen_range(0..total_weight);
        for (i, d) in DOMAINS.iter().enumerate() {
            if roll < d.train_db_weight {
                out.push(DomainId(i));
                break;
            }
            roll -= d.train_db_weight;
        }
    }
    out.truncate(n);
    out
}

/// Generate a corpus.
pub fn generate_corpus(kind: CorpusKind, config: &CorpusConfig) -> Corpus {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let profile = match kind {
        CorpusKind::Spider => SchemaProfile::spider(),
        CorpusKind::Bird => SchemaProfile::bird(),
    };

    // databases
    let train_domains = assign_domains(config.train_dbs, &mut rng);
    let dev_domains = assign_domains(config.dev_dbs, &mut rng);
    let mut databases = BTreeMap::new();
    let mut train_db_ids = Vec::new();
    let mut dev_db_ids = Vec::new();
    for (i, domain) in train_domains.iter().enumerate() {
        let db_id = format!("{}_train_{}", domain.spec().name.to_lowercase(), i);
        let seed = rng.gen();
        databases.insert(db_id.clone(), generate_db(&db_id, *domain, &profile, seed));
        train_db_ids.push(db_id);
    }
    for (i, domain) in dev_domains.iter().enumerate() {
        let db_id = format!("{}_dev_{}", domain.spec().name.to_lowercase(), i);
        let seed = rng.gen();
        databases.insert(db_id.clone(), generate_db(&db_id, *domain, &profile, seed));
        dev_db_ids.push(db_id);
    }

    let weights = recipe_weights(kind);
    let train = generate_split(
        &databases,
        &train_db_ids,
        config.train_samples,
        &weights,
        kind,
        0.0, // no variants needed on train
        &mut rng,
    );
    let dev = generate_split(
        &databases,
        &dev_db_ids,
        config.dev_samples,
        &weights,
        kind,
        config.variant_prob,
        &mut rng,
    );

    Corpus { kind, databases, train_db_ids, dev_db_ids, train, dev }
}

fn generate_split(
    databases: &BTreeMap<String, GeneratedDb>,
    db_ids: &[String],
    n_samples: usize,
    weights: &[(Recipe, u32)],
    kind: CorpusKind,
    variant_prob: f64,
    rng: &mut StdRng,
) -> Vec<Sample> {
    let mut out = Vec::with_capacity(n_samples);
    // Reject gold SQL that normalizes identically to an earlier sample on
    // the same database: duplicate gold samples double-count one query in
    // every metric and make cross-method comparisons noisier.
    let mut seen: std::collections::HashSet<(String, String)> =
        std::collections::HashSet::with_capacity(n_samples);
    let mut attempts = 0usize;
    let max_attempts = n_samples * 30;
    while out.len() < n_samples && attempts < max_attempts {
        attempts += 1;
        let db_id = &db_ids[out.len() % db_ids.len()];
        let db = &databases[db_id];
        let mut qg = QueryGenerator::new(db);
        qg.bird_flavor = kind == CorpusKind::Bird;
        let recipe = pick_weighted(weights, rng);
        let Some(g) = qg.generate(recipe, rng) else {
            continue;
        };
        // gold must execute
        if db.database.run_query(&g.query).is_err() {
            continue;
        }
        let normalized = sqlkit::to_sql(&sqlkit::normalize::normalize(&g.query));
        if !seen.insert((db_id.clone(), normalized)) {
            continue;
        }
        let n_variants = if rng.gen_bool(variant_prob) { rng.gen_range(2..=4) } else { 1 };
        let variants = render_variants(&g.parts, n_variants, rng);
        out.push(Sample {
            id: out.len(),
            db_id: db_id.clone(),
            domain: db.domain,
            variants,
            features: SqlFeatures::of(&g.query),
            bird_difficulty: BirdDifficulty::classify(&g.query),
            hardness: g.hardness,
            sql: g.sql,
            query: g.query,
            perturbation: None,
        });
    }
    assert!(
        out.len() == n_samples,
        "could only generate {} of {n_samples} samples",
        out.len()
    );
    out
}

/// Augment a corpus with extra *training* databases and samples in one
/// domain (paper §6, "Adaptive Training Data Generation": synthesize new
/// (NL, SQL) pairs for the domains where evaluation shows weakness).
///
/// Returns a new corpus whose train split gained `extra_dbs` databases of
/// `domain` with `samples_per_db` samples each; the dev split is untouched
/// so before/after evaluations stay comparable.
pub fn augment_corpus(
    corpus: &Corpus,
    domain: DomainId,
    extra_dbs: usize,
    samples_per_db: usize,
    seed: u64,
) -> Corpus {
    let mut out = corpus.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = match corpus.kind {
        CorpusKind::Spider => SchemaProfile::spider(),
        CorpusKind::Bird => SchemaProfile::bird(),
    };
    let weights = recipe_weights(corpus.kind);
    for i in 0..extra_dbs {
        let db_id = format!("{}_aug_{}", domain.spec().name.to_lowercase(), i);
        let db = generate_db(&db_id, domain, &profile, rng.gen());
        out.databases.insert(db_id.clone(), db);
        out.train_db_ids.push(db_id.clone());
        let new_samples = generate_split(
            &out.databases,
            std::slice::from_ref(&db_id),
            samples_per_db,
            &weights,
            corpus.kind,
            0.0,
            &mut rng,
        );
        let base_id = out.train.len();
        out.train.extend(new_samples.into_iter().enumerate().map(|(j, mut s)| {
            s.id = base_id + j;
            s
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spider() -> Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(42))
    }

    #[test]
    fn augmentation_adds_domain_data_without_touching_dev() {
        let base = tiny_spider();
        let domain = crate::domains::domain_by_name("Music").unwrap();
        let before_dbs =
            base.train_db_ids.iter().filter(|id| base.databases[*id].domain == domain).count();
        let aug = augment_corpus(&base, domain, 3, 10, 9);
        let after_dbs =
            aug.train_db_ids.iter().filter(|id| aug.databases[*id].domain == domain).count();
        assert_eq!(after_dbs, before_dbs + 3);
        assert_eq!(aug.train.len(), base.train.len() + 30);
        assert_eq!(aug.dev.len(), base.dev.len(), "dev split untouched");
        // new gold SQL executes
        for s in aug.train.iter().skip(base.train.len()) {
            aug.db(s).database.run_query(&s.query).expect("augmented gold executes");
            assert_eq!(s.domain, domain);
        }
        // ids stay unique
        let mut ids: Vec<usize> = aug.train.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), aug.train.len());
    }

    #[test]
    fn corpus_has_requested_shape() {
        let c = tiny_spider();
        assert_eq!(c.train.len(), 120);
        assert_eq!(c.dev.len(), 60);
        assert_eq!(c.train_db_ids.len(), 6);
        assert_eq!(c.dev_db_ids.len(), 3);
        assert_eq!(c.databases.len(), 9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_spider();
        let b = tiny_spider();
        for (sa, sb) in a.dev.iter().zip(&b.dev) {
            assert_eq!(sa.sql, sb.sql);
            assert_eq!(sa.variants, sb.variants);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(1));
        let b = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(2));
        let differs = a.dev.iter().zip(&b.dev).any(|(x, y)| x.sql != y.sql);
        assert!(differs);
    }

    #[test]
    fn all_gold_queries_execute() {
        let c = tiny_spider();
        for s in c.train.iter().chain(&c.dev) {
            c.db(s)
                .database
                .run_query(&s.query)
                .unwrap_or_else(|e| panic!("gold `{}` fails: {e}", s.sql));
        }
    }

    #[test]
    fn dev_has_qvt_variants() {
        let c = tiny_spider();
        let with_variants = c.dev.iter().filter(|s| s.variants.len() >= 2).count();
        assert!(with_variants >= 10, "only {with_variants} dev samples have variants");
    }

    #[test]
    fn hardness_mix_covers_all_buckets() {
        let c = tiny_spider();
        for h in Hardness::ALL {
            let n = c.dev.iter().filter(|s| s.hardness == h).count()
                + c.train.iter().filter(|s| s.hardness == h).count();
            assert!(n > 0, "no samples at hardness {h}");
        }
    }

    #[test]
    fn bird_corpus_has_case_queries() {
        let c = generate_corpus(CorpusKind::Bird, &CorpusConfig::tiny(7));
        let with_case = c.dev.iter().chain(&c.train).filter(|s| s.features.has_case).count();
        assert!(with_case > 0, "BIRD-like corpus should include CASE/IIF");
    }

    #[test]
    fn samples_reference_their_split_dbs() {
        let c = tiny_spider();
        for s in &c.dev {
            assert!(c.dev_db_ids.contains(&s.db_id));
        }
        for s in &c.train {
            assert!(c.train_db_ids.contains(&s.db_id));
        }
    }

    #[test]
    fn domains_weighted_assignment() {
        let mut rng = StdRng::seed_from_u64(0);
        let d = assign_domains(100, &mut rng);
        assert_eq!(d.len(), 100);
        // with n >= 33, every domain appears at least once
        let mut seen: Vec<usize> = d.iter().map(|x| x.0).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), DOMAINS.len());
    }
}
