//! Natural-language question templating.
//!
//! Every generated SQL query carries a structured [`NlParts`] description;
//! [`render_variants`] turns it into several distinct English surface forms.
//! The variety (question vs. imperative style, synonym substitution for
//! comparators) is what the paper's Query Variance Testing (QVT, Eq. 1)
//! exercises: different NL phrasings of the same target SQL.

use rand::rngs::StdRng;
use rand::Rng;

/// Structured pieces of a question, produced by the query generator.
#[derive(Debug, Clone, Default)]
pub struct NlParts {
    /// What is selected ("the name and the age", "the number of singers").
    pub selection: String,
    /// The subject relation(s) ("singers", "students and their departments").
    pub subject: String,
    /// Condition descriptions ("age is greater than 30").
    pub conditions: Vec<String>,
    /// Grouping description ("for each country").
    pub grouping: Option<String>,
    /// Ordering description ("sorted by age from highest").
    pub ordering: Option<String>,
    /// Limit description ("top 3").
    pub limit: Option<String>,
}

/// Comparator phrases with synonyms; index 0 is the canonical phrasing.
pub fn comparator_phrases(op: &str) -> &'static [&'static str] {
    match op {
        ">" => &["greater than", "more than", "above", "over"],
        ">=" => &["at least", "no less than", "greater than or equal to"],
        "<" => &["less than", "smaller than", "below", "under"],
        "<=" => &["at most", "no more than", "less than or equal to"],
        "=" => &["equal to", "exactly", ""],
        "!=" => &["not equal to", "different from", "other than"],
        _ => &["matching"],
    }
}

/// Humanize an identifier: underscores to spaces.
pub fn humanize(ident: &str) -> String {
    ident.replace('_', " ")
}

const QUESTION_TEMPLATES: usize = 6;

/// Render `n` distinct surface variants of the question described by
/// `parts`. The first returned string is the canonical question. All
/// rendering is deterministic in `rng`.
pub fn render_variants(parts: &NlParts, n: usize, rng: &mut StdRng) -> Vec<String> {
    let n = n.clamp(1, QUESTION_TEMPLATES);
    let mut out = Vec::with_capacity(n);
    let offset = rng.gen_range(0..QUESTION_TEMPLATES);
    for i in 0..n {
        out.push(render(parts, (offset + i) % QUESTION_TEMPLATES));
    }
    out
}

fn render(parts: &NlParts, template: usize) -> String {
    let mut tail = String::new();
    if let Some(g) = &parts.grouping {
        tail.push(' ');
        tail.push_str(g);
    }
    if !parts.conditions.is_empty() {
        tail.push_str(" where ");
        tail.push_str(&parts.conditions.join(" and "));
    }
    if let Some(o) = &parts.ordering {
        tail.push_str(", ");
        tail.push_str(o);
    }
    if let Some(l) = &parts.limit {
        tail.push_str(", ");
        tail.push_str(l);
    }
    let sel = &parts.selection;
    let subj = &parts.subject;
    match template {
        0 => format!("What are {sel} of {subj}{tail}?"),
        1 => format!("Return {sel} of {subj}{tail}."),
        2 => format!("List {sel} for all {subj}{tail}."),
        3 => format!("Show me {sel} of the {subj}{tail}."),
        4 => format!("Find {sel} of {subj}{tail}."),
        _ => format!("Give {sel} from the {subj}{tail}."),
    }
}

/// Canonical paraphrase key: the question with surface template markers
/// (question/imperative verbs, determiners, connector prepositions) and
/// punctuation stripped. All `render_variants` outputs of the same
/// [`NlParts`] share one key, so a *query rewriter* (paper §6, "Handling
/// ambiguous and underspecified NL queries") can detect that two phrasings
/// ask the same thing.
pub fn paraphrase_key(question: &str) -> String {
    const STOPWORDS: [&str; 12] =
        ["what", "are", "return", "list", "show", "find", "give", "me", "the", "a", "for", "all",];
    question
        .split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| !STOPWORDS.contains(&w.as_str()) && w != "of" && w != "from")
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paraphrase_key_unifies_all_variants() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let p = NlParts {
                selection: "the name and the age".into(),
                subject: "singers".into(),
                conditions: vec!["the country is 'US'".into()],
                grouping: Some("for each country".into()),
                ordering: Some("sorted by age from highest to lowest".into()),
                limit: Some("return only the top 3".into()),
            };
            let variants = render_variants(&p, 6, &mut rng);
            let keys: Vec<String> = variants.iter().map(|v| paraphrase_key(v)).collect();
            for k in &keys {
                assert_eq!(k, &keys[0], "variants must share a paraphrase key: {variants:?}");
            }
        }
    }

    #[test]
    fn paraphrase_key_separates_different_questions() {
        let a = paraphrase_key("What are the names of singers where the age is greater than 30?");
        let b = paraphrase_key("What are the names of singers where the age is less than 30?");
        assert_ne!(a, b);
    }

    fn parts() -> NlParts {
        NlParts {
            selection: "the name".into(),
            subject: "singers".into(),
            conditions: vec!["the age is greater than 30".into()],
            grouping: None,
            ordering: Some("sorted by age from highest to lowest".into()),
            limit: Some("return only the top 3".into()),
        }
    }

    #[test]
    fn variants_are_distinct_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = render_variants(&parts(), 3, &mut rng);
        assert_eq!(a.len(), 3);
        assert!(a[0] != a[1] && a[1] != a[2]);

        let mut rng2 = StdRng::seed_from_u64(5);
        let b = render_variants(&parts(), 3, &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn all_parts_appear() {
        let mut rng = StdRng::seed_from_u64(0);
        let q = &render_variants(&parts(), 1, &mut rng)[0];
        assert!(q.contains("the name"), "{q}");
        assert!(q.contains("singers"), "{q}");
        assert!(q.contains("greater than 30"), "{q}");
        assert!(q.contains("top 3"), "{q}");
    }

    #[test]
    fn humanize_replaces_underscores() {
        assert_eq!(humanize("enrollment_year"), "enrollment year");
    }

    #[test]
    fn comparator_synonyms_nonempty() {
        for op in [">", ">=", "<", "<=", "=", "!="] {
            assert!(!comparator_phrases(op).is_empty());
        }
    }

    #[test]
    fn more_variants_than_templates_dedupes() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = render_variants(&parts(), 10, &mut rng);
        assert!(v.len() <= QUESTION_TEMPLATES);
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len(), "no duplicates");
    }
}
