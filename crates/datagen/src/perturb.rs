//! Dr.Spider-style robustness perturbations (paper §3 lists Dr.Spider in
//! the benchmark repository; this module implements its three diagnostic
//! angles as corpus transformations).
//!
//! * **NL perturbation** — the canonical question is replaced by a
//!   different surface form with synonym comparators, as Dr.Spider's NLQ
//!   post-perturbation sets do.
//! * **Schema perturbation** — tables and attribute columns are renamed to
//!   synonyms in a *copy* of each dev database, and the gold SQL is
//!   rewritten to match, so the gold stays executable while any
//!   linking that memorized the original names breaks.
//! * **DB-content perturbation** — text values are re-cased/padded in the
//!   database copy and in the gold SQL literals, while the NL question
//!   keeps the original spelling, defeating exact string matching.
//!
//! Perturbed samples carry a [`Perturbation`] tag that the simulated model
//! profiles translate into the class-specific robustness drops Dr.Spider
//! reports.

use crate::dataset::Corpus;
use crate::dbgen::GeneratedDb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sqlkit::ast::*;
use std::collections::BTreeMap;

/// The three Dr.Spider perturbation families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Perturbation {
    /// Question rephrased (synonyms, different template).
    NlParaphrase,
    /// Schema identifiers renamed to synonyms.
    SchemaSynonym,
    /// Database content re-cased / padded.
    DbContentReplace,
}

impl Perturbation {
    /// All perturbation families.
    pub const ALL: [Perturbation; 3] =
        [Perturbation::NlParaphrase, Perturbation::SchemaSynonym, Perturbation::DbContentReplace];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Perturbation::NlParaphrase => "NL paraphrase",
            Perturbation::SchemaSynonym => "schema synonyms",
            Perturbation::DbContentReplace => "DB content",
        }
    }
}

/// Synonym dictionary for attribute columns (Dr.Spider uses crowd-sourced
/// synonyms; this is the deterministic stand-in).
fn column_synonym(name: &str) -> String {
    match name {
        "name" => "full_name".into(),
        "title" => "heading".into(),
        "age" => "age_years".into(),
        "year" => "calendar_year".into(),
        "city" => "municipality".into(),
        "country" => "nation".into(),
        "salary" => "compensation".into(),
        "price" => "cost_amount".into(),
        "rating" => "score_value".into(),
        "capacity" => "max_capacity".into(),
        "status" => "current_status".into(),
        "category" => "classification".into(),
        "budget" => "allocated_funds".into(),
        "population" => "inhabitant_count".into(),
        other => format!("{other}_field"),
    }
}

/// Synonym dictionary for table names.
fn table_synonym(name: &str) -> String {
    match name {
        "singer" => "vocalist".into(),
        "student" => "pupil".into(),
        "teacher" => "instructor".into(),
        "film" => "motion_picture".into(),
        "concert" => "live_show".into(),
        "doctor" => "physician".into(),
        "patient" => "care_recipient".into(),
        "player" => "athlete".into(),
        "book" => "publication_item".into(),
        other => format!("{other}_tbl"),
    }
}

/// Apply one perturbation family to the dev split of `corpus`, returning a
/// new corpus (train split untouched). Samples gain the matching
/// [`Perturbation`] tag.
pub fn perturb_corpus(corpus: &Corpus, kind: Perturbation, seed: u64) -> Corpus {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        Perturbation::NlParaphrase => perturb_nl(corpus, &mut rng),
        Perturbation::SchemaSynonym => perturb_schema(corpus),
        Perturbation::DbContentReplace => perturb_content(corpus, &mut rng),
    }
}

fn perturb_nl(corpus: &Corpus, rng: &mut StdRng) -> Corpus {
    let mut out = corpus.clone();
    for s in &mut out.dev {
        // promote a non-canonical variant when available; otherwise apply a
        // light lexical rewrite to the canonical question
        if s.variants.len() >= 2 {
            let pick = 1 + (rng.gen::<usize>() % (s.variants.len() - 1));
            s.variants.swap(0, pick);
        } else {
            let rewritten = lexical_rewrite(&s.variants[0]);
            s.variants[0] = rewritten;
        }
        s.perturbation = Some(Perturbation::NlParaphrase);
    }
    out
}

/// Simple synonym-level rewrite of a question's comparator phrases.
fn lexical_rewrite(q: &str) -> String {
    q.replace("greater than", "above")
        .replace("less than", "below")
        .replace("at least", "no less than")
        .replace("at most", "no more than")
        .replace("What are", "Which are")
        .replace("sorted by", "ranked by")
}

fn perturb_schema(corpus: &Corpus) -> Corpus {
    let mut out = corpus.clone();
    // rename every dev database's identifiers and rewrite gold queries
    let mut renamed_dbs: BTreeMap<String, GeneratedDb> = BTreeMap::new();
    let mut table_maps: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut column_maps: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for db_id in &corpus.dev_db_ids {
        let db = &corpus.databases[db_id];
        let (new_db, tmap, cmap) = rename_database(db);
        table_maps.insert(db_id.clone(), tmap);
        column_maps.insert(db_id.clone(), cmap);
        renamed_dbs.insert(db_id.clone(), new_db);
    }
    for (db_id, db) in renamed_dbs {
        out.databases.insert(db_id, db);
    }
    for s in &mut out.dev {
        let tmap = &table_maps[&s.db_id];
        let cmap = &column_maps[&s.db_id];
        rename_query(&mut s.query, tmap, cmap);
        s.sql = sqlkit::to_sql(&s.query);
        s.features = sqlkit::SqlFeatures::of(&s.query);
        s.perturbation = Some(Perturbation::SchemaSynonym);
    }
    out
}

/// Rename a database's tables and attribute columns; returns the renamed
/// copy plus the (old → new) table and column maps. The `id` primary key
/// and FK columns keep their names so join structure stays legible.
fn rename_database(
    db: &GeneratedDb,
) -> (GeneratedDb, BTreeMap<String, String>, BTreeMap<String, String>) {
    let mut tmap = BTreeMap::new();
    let mut cmap = BTreeMap::new();
    for t in db.database.tables() {
        tmap.insert(t.schema.name.clone(), table_synonym(&t.schema.name));
        let fk_cols: Vec<usize> = t.schema.foreign_keys.iter().map(|f| f.column).collect();
        for (i, c) in t.schema.columns.iter().enumerate() {
            if i == 0 || fk_cols.contains(&i) {
                continue;
            }
            cmap.entry(c.name.clone()).or_insert_with(|| column_synonym(&c.name));
        }
    }
    let mut new_database = minidb::Database::new(db.database.name());
    for t in db.database.tables() {
        let mut schema = t.schema.clone();
        schema.name = tmap[&schema.name].clone();
        let fk_cols: Vec<usize> = schema.foreign_keys.iter().map(|f| f.column).collect();
        for (i, c) in schema.columns.iter_mut().enumerate() {
            if i == 0 || fk_cols.contains(&i) {
                continue;
            }
            if let Some(new) = cmap.get(&c.name) {
                c.name = new.clone();
            }
        }
        for fk in &mut schema.foreign_keys {
            if let Some(new) = tmap.get(&fk.ref_table) {
                fk.ref_table = new.clone();
            }
        }
        new_database
            .add_table(
                minidb::database::Table::from_rows(schema, t.to_rows())
                    .expect("renaming does not change cell values"),
            )
            .expect("renamed tables stay unique");
    }
    (
        GeneratedDb { db_id: db.db_id.clone(), domain: db.domain, database: new_database },
        tmap,
        cmap,
    )
}

/// Rewrite a query against the rename maps (aliases stay untouched).
fn rename_query(
    q: &mut Query,
    tmap: &BTreeMap<String, String>,
    cmap: &BTreeMap<String, String>,
) {
    for core in q.cores_mut() {
        if let Some(from) = &mut core.from {
            rename_table_ref(&mut from.base, tmap, cmap);
            for j in &mut from.joins {
                rename_table_ref(&mut j.table, tmap, cmap);
                if let Some(on) = &mut j.on {
                    rename_expr(on, tmap, cmap);
                }
            }
        }
        for item in &mut core.items {
            match item {
                SelectItem::QualifiedWildcard(t) => {
                    if let Some(new) = tmap.get(t) {
                        *t = new.clone();
                    }
                }
                SelectItem::Expr { expr, .. } => rename_expr(expr, tmap, cmap),
                SelectItem::Wildcard => {}
            }
        }
        if let Some(w) = &mut core.where_clause {
            rename_expr(w, tmap, cmap);
        }
        for g in &mut core.group_by {
            rename_expr(g, tmap, cmap);
        }
        if let Some(h) = &mut core.having {
            rename_expr(h, tmap, cmap);
        }
    }
    for k in &mut q.order_by {
        rename_expr(&mut k.expr, tmap, cmap);
    }
}

fn rename_table_ref(
    t: &mut TableRef,
    tmap: &BTreeMap<String, String>,
    cmap: &BTreeMap<String, String>,
) {
    match t {
        TableRef::Named { name, .. } => {
            if let Some(new) = tmap.get(name) {
                *name = new.clone();
            }
        }
        TableRef::Subquery { query, .. } => rename_query(query, tmap, cmap),
    }
}

fn rename_expr(e: &mut Expr, tmap: &BTreeMap<String, String>, cmap: &BTreeMap<String, String>) {
    match e {
        Expr::Column { table, column } => {
            if let Some(t) = table {
                if let Some(new) = tmap.get(t) {
                    *t = new.clone();
                }
            }
            if let Some(new) = cmap.get(column) {
                *column = new.clone();
            }
        }
        Expr::Literal(_) | Expr::AggWildcard(_) => {}
        Expr::Agg { arg, .. } => rename_expr(arg, tmap, cmap),
        Expr::Func { args, .. } => args.iter_mut().for_each(|a| rename_expr(a, tmap, cmap)),
        Expr::Binary { left, right, .. } => {
            rename_expr(left, tmap, cmap);
            rename_expr(right, tmap, cmap);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            rename_expr(expr, tmap, cmap)
        }
        Expr::Between { expr, low, high, .. } => {
            rename_expr(expr, tmap, cmap);
            rename_expr(low, tmap, cmap);
            rename_expr(high, tmap, cmap);
        }
        Expr::InList { expr, list, .. } => {
            rename_expr(expr, tmap, cmap);
            list.iter_mut().for_each(|x| rename_expr(x, tmap, cmap));
        }
        Expr::InSubquery { expr, query, .. } => {
            rename_expr(expr, tmap, cmap);
            rename_query(query, tmap, cmap);
        }
        Expr::Exists { query, .. } | Expr::Subquery(query) => rename_query(query, tmap, cmap),
        Expr::Like { expr, pattern, .. } => {
            rename_expr(expr, tmap, cmap);
            rename_expr(pattern, tmap, cmap);
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                rename_expr(op, tmap, cmap);
            }
            for (w, t) in branches {
                rename_expr(w, tmap, cmap);
                rename_expr(t, tmap, cmap);
            }
            if let Some(el) = else_expr {
                rename_expr(el, tmap, cmap);
            }
        }
    }
}

fn perturb_content(corpus: &Corpus, rng: &mut StdRng) -> Corpus {
    let mut out = corpus.clone();
    // per-db map of (old text value → mangled value)
    let mut value_maps: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for db_id in &corpus.dev_db_ids {
        let db = &corpus.databases[db_id];
        let mut vmap: BTreeMap<String, String> = BTreeMap::new();
        let mut new_database = minidb::Database::new(db.database.name());
        for t in db.database.tables() {
            let rows: Vec<Vec<minidb::Value>> = t
                .to_rows()
                .iter()
                .map(|row| {
                    row.iter()
                        .map(|v| match v {
                            minidb::Value::Text(s) if s.len() >= 3 => {
                                let mangled = vmap
                                    .entry(s.clone())
                                    .or_insert_with(|| mangle_value(s, rng))
                                    .clone();
                                minidb::Value::Text(mangled)
                            }
                            other => other.clone(),
                        })
                        .collect()
                })
                .collect();
            new_database
                .add_table(
                    minidb::database::Table::from_rows(t.schema.clone(), rows)
                        .expect("mangling maps text to text"),
                )
                .expect("table names unchanged");
        }
        out.databases.insert(
            db_id.clone(),
            GeneratedDb { db_id: db_id.clone(), domain: db.domain, database: new_database },
        );
        value_maps.insert(db_id.clone(), vmap);
    }
    for s in &mut out.dev {
        let vmap = &value_maps[&s.db_id];
        rewrite_literals(&mut s.query, vmap);
        s.sql = sqlkit::to_sql(&s.query);
        s.perturbation = Some(Perturbation::DbContentReplace);
    }
    out
}

/// Mangle a text value the way dirty production data looks: case changes
/// and stray whitespace.
fn mangle_value(s: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3) {
        0 => s.to_uppercase(),
        1 => s.to_lowercase(),
        _ => format!(" {s}"),
    }
}

/// Rewrite string literals in the gold SQL to the mangled values so gold
/// stays correct on the perturbed database.
fn rewrite_literals(q: &mut Query, vmap: &BTreeMap<String, String>) {
    for core in q.cores_mut() {
        if let Some(w) = &mut core.where_clause {
            rewrite_literal_expr(w, vmap);
        }
        if let Some(h) = &mut core.having {
            rewrite_literal_expr(h, vmap);
        }
        if let Some(from) = &mut core.from {
            for t in from.tables() {
                if let TableRef::Subquery { .. } = t {
                    // handled through cores_mut of nested queries below
                }
            }
        }
    }
    // nested queries inside expressions
    fn recurse(e: &mut Expr, vmap: &BTreeMap<String, String>) {
        match e {
            Expr::InSubquery { query, .. } | Expr::Exists { query, .. } => {
                rewrite_literals(query, vmap)
            }
            Expr::Subquery(query) => rewrite_literals(query, vmap),
            Expr::Binary { left, right, .. } => {
                recurse(left, vmap);
                recurse(right, vmap);
            }
            Expr::Unary { expr, .. } => recurse(expr, vmap),
            _ => {}
        }
    }
    for core in q.cores_mut() {
        if let Some(w) = &mut core.where_clause {
            recurse(w, vmap);
        }
    }
}

fn rewrite_literal_expr(e: &mut Expr, vmap: &BTreeMap<String, String>) {
    match e {
        Expr::Literal(Literal::Str(s)) => {
            if let Some(new) = vmap.get(s) {
                *s = new.clone();
            }
        }
        Expr::Binary { left, right, .. } => {
            rewrite_literal_expr(left, vmap);
            rewrite_literal_expr(right, vmap);
        }
        Expr::Unary { expr, .. } => rewrite_literal_expr(expr, vmap),
        Expr::Between { expr, low, high, .. } => {
            rewrite_literal_expr(expr, vmap);
            rewrite_literal_expr(low, vmap);
            rewrite_literal_expr(high, vmap);
        }
        Expr::InList { expr, list, .. } => {
            rewrite_literal_expr(expr, vmap);
            list.iter_mut().for_each(|x| rewrite_literal_expr(x, vmap));
        }
        Expr::Like { expr, pattern, .. } => {
            rewrite_literal_expr(expr, vmap);
            // LIKE patterns contain fragments; leave them (fragment matching
            // is case-insensitive in the engine anyway)
            let _ = pattern;
        }
        Expr::InSubquery { expr, query, .. } => {
            rewrite_literal_expr(expr, vmap);
            rewrite_literals(query, vmap);
        }
        Expr::Exists { query, .. } | Expr::Subquery(query) => rewrite_literals(query, vmap),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_corpus, CorpusConfig, CorpusKind};

    fn corpus() -> Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(64))
    }

    #[test]
    fn nl_perturbation_changes_canonical_question() {
        let base = corpus();
        let p = perturb_corpus(&base, Perturbation::NlParaphrase, 1);
        let changed = base
            .dev
            .iter()
            .zip(&p.dev)
            .filter(|(a, b)| a.question() != b.question())
            .count();
        assert!(changed * 10 >= base.dev.len() * 5, "most questions should change: {changed}");
        for s in &p.dev {
            assert_eq!(s.perturbation, Some(Perturbation::NlParaphrase));
            // gold SQL untouched by NL perturbation
            p.db(s).database.run_query(&s.query).expect("gold still executes");
        }
    }

    #[test]
    fn schema_perturbation_keeps_gold_executable_with_same_results() {
        let base = corpus();
        let p = perturb_corpus(&base, Perturbation::SchemaSynonym, 2);
        for (orig, pert) in base.dev.iter().zip(&p.dev) {
            let orig_rs = base.db(orig).database.run_query(&orig.query).expect("orig gold");
            let pert_rs = p.db(pert).database.run_query(&pert.query).unwrap_or_else(|e| {
                panic!("renamed gold `{}` fails: {e}", pert.sql)
            });
            assert!(
                minidb::results_equivalent(&orig_rs, &pert_rs),
                "rename must preserve results: `{}` vs `{}`",
                orig.sql,
                pert.sql
            );
            assert_ne!(orig.sql, pert.sql, "identifiers should actually change");
        }
    }

    #[test]
    fn schema_perturbation_renames_tables_and_columns() {
        let base = corpus();
        let p = perturb_corpus(&base, Perturbation::SchemaSynonym, 3);
        let db_id = &p.dev_db_ids[0];
        let orig_names: Vec<String> =
            base.databases[db_id].database.tables().map(|t| t.schema.name.clone()).collect();
        let new_names: Vec<String> =
            p.databases[db_id].database.tables().map(|t| t.schema.name.clone()).collect();
        assert_ne!(orig_names, new_names);
    }

    #[test]
    fn content_perturbation_keeps_gold_correct() {
        let base = corpus();
        let p = perturb_corpus(&base, Perturbation::DbContentReplace, 4);
        for s in &p.dev {
            p.db(s)
                .database
                .run_query(&s.query)
                .unwrap_or_else(|e| panic!("gold `{}` fails on mangled content: {e}", s.sql));
            assert_eq!(s.perturbation, Some(Perturbation::DbContentReplace));
        }
    }

    #[test]
    fn train_split_is_untouched() {
        let base = corpus();
        for kind in Perturbation::ALL {
            let p = perturb_corpus(&base, kind, 5);
            assert_eq!(p.train.len(), base.train.len());
            for (a, b) in base.train.iter().zip(&p.train) {
                assert_eq!(a.sql, b.sql);
                assert_eq!(a.perturbation, None);
            }
        }
    }

    #[test]
    fn perturbation_labels() {
        assert_eq!(Perturbation::SchemaSynonym.label(), "schema synonyms");
        assert_eq!(Perturbation::ALL.len(), 3);
    }
}
