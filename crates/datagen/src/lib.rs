//! # datagen
//!
//! Synthetic benchmark corpus generator for the NL2SQL360 reproduction.
//!
//! The original paper evaluates on the Spider and BIRD datasets, which are
//! licensed downloads with real databases. This crate generates *structural
//! stand-ins*: multi-domain schemas across the paper's 33 domains, populated
//! databases whose shape statistics target the paper's Table 2, and
//! (NL, SQL) samples spanning the Spider hardness buckets and the SQL
//! characteristics the paper filters on (subqueries, JOINs, logical
//! connectors, ORDER BY), with NL paraphrase variants for Query Variance
//! Testing. Everything is deterministic in a single seed.
//!
//! ```
//! use datagen::{generate_corpus, CorpusConfig, CorpusKind};
//!
//! let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(1));
//! assert_eq!(corpus.dev.len(), 60);
//! let s = &corpus.dev[0];
//! // every gold query executes on its database
//! corpus.db(s).database.run_query(&s.query).unwrap();
//! ```

pub mod dataset;
pub mod dbgen;
pub mod domains;
pub mod nl;
pub mod perturb;
pub mod query_gen;
pub mod stats;

pub use dataset::{augment_corpus, generate_corpus, Corpus, CorpusConfig, CorpusKind, Sample};
pub use dbgen::{generate_db, regenerate_content, GeneratedDb, SchemaProfile};
pub use perturb::{perturb_corpus, Perturbation};
pub use domains::{domain_by_name, DomainId, DomainSpec, DOMAINS};
pub use query_gen::{GeneratedQuery, QueryGenerator, Recipe};
pub use stats::{dataset_stats, DatasetStats, MinMaxAvg};
