//! Domain catalog.
//!
//! The paper (Exp-4) classifies the 140 Spider training databases and 20 dev
//! databases into **33 domains** and studies per-domain accuracy. This
//! module defines those 33 domains with entity/attribute vocabularies used
//! by the schema generator and value pools used by the content generator.
//!
//! `train_db_weight` controls how many training databases a domain receives;
//! the paper's Figure 9(b) highlights College / Competition / Transportation
//! as the domains with the most training databases, so they get the largest
//! weights here.

use serde::{Deserialize, Serialize};

/// One entity template: a table base name plus candidate attribute columns.
#[derive(Debug, Clone, Copy)]
pub struct EntitySpec {
    /// Table base name (singular noun).
    pub name: &'static str,
    /// Candidate attribute column names (beyond the generated id/FK columns).
    pub attrs: &'static [&'static str],
}

/// A data domain: entities, a text-value pool, and a training-DB weight.
#[derive(Debug, Clone, Copy)]
pub struct DomainSpec {
    /// Domain name as shown in the paper's Figure 9.
    pub name: &'static str,
    /// Entity templates available to the schema generator.
    pub entities: &'static [EntitySpec],
    /// Pool of domain-flavoured text values.
    pub values: &'static [&'static str],
    /// Relative number of training databases assigned to this domain.
    pub train_db_weight: u32,
}

/// Identifier of a domain within [`DOMAINS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub usize);

impl DomainId {
    /// The domain spec this id refers to.
    pub fn spec(&self) -> &'static DomainSpec {
        &DOMAINS[self.0]
    }
}

macro_rules! entity {
    ($name:literal, [$($attr:literal),* $(,)?]) => {
        EntitySpec { name: $name, attrs: &[$($attr),*] }
    };
}

/// The 33 domains of the paper's domain-adaptation experiment.
pub static DOMAINS: &[DomainSpec] = &[
    DomainSpec {
        name: "College",
        entities: &[
            entity!("student", ["name", "age", "gpa", "major", "city", "enrollment_year"]),
            entity!("professor", ["name", "department", "salary", "tenure_year", "office"]),
            entity!("course", ["title", "credits", "level", "department", "capacity"]),
            entity!("department", ["name", "building", "budget", "head_count"]),
            entity!("enrollment", ["grade", "semester", "year"]),
        ],
        values: &[
            "Computer Science", "Mathematics", "Physics", "History", "Biology", "Economics",
            "Chemistry", "Philosophy", "Engineering", "Linguistics",
        ],
        train_db_weight: 14,
    },
    DomainSpec {
        name: "Competition",
        entities: &[
            entity!("contestant", ["name", "age", "country", "ranking", "score"]),
            entity!("match_event", ["round", "year", "location", "audience", "prize"]),
            entity!("judge", ["name", "experience_years", "specialty"]),
            entity!("team", ["name", "city", "founded_year", "wins", "losses"]),
            entity!("award", ["title", "prize_money", "year"]),
        ],
        values: &[
            "Final", "Semifinal", "Quarterfinal", "Gold", "Silver", "Bronze", "Regional",
            "National", "International", "Qualifier",
        ],
        train_db_weight: 12,
    },
    DomainSpec {
        name: "Transportation",
        entities: &[
            entity!("vehicle", ["model", "capacity", "year", "fuel_type", "mileage"]),
            entity!("route", ["origin", "destination", "distance", "duration"]),
            entity!("driver", ["name", "age", "license_type", "experience_years", "rating"]),
            entity!("station", ["name", "city", "platforms", "opened_year"]),
            entity!("trip", ["departure", "arrival", "fare", "passengers"]),
        ],
        values: &[
            "Downtown", "Airport", "Harbor", "Central", "Northside", "Express", "Local",
            "Diesel", "Electric", "Hybrid",
        ],
        train_db_weight: 10,
    },
    DomainSpec {
        name: "Music",
        entities: &[
            entity!("singer", ["name", "age", "country", "genre", "net_worth"]),
            entity!("album", ["title", "year", "sales", "label", "rating"]),
            entity!("concert", ["venue", "year", "attendance", "revenue"]),
            entity!("song", ["title", "duration", "plays", "chart_position"]),
        ],
        values: &[
            "Rock", "Pop", "Jazz", "Classical", "Hip Hop", "Country", "Electronic", "Blues",
            "Folk", "Reggae",
        ],
        train_db_weight: 7,
    },
    DomainSpec {
        name: "Movie",
        entities: &[
            entity!("film", ["title", "year", "budget", "gross", "rating", "runtime"]),
            entity!("director", ["name", "age", "country", "awards_won"]),
            entity!("actor", ["name", "age", "country", "films_count"]),
            entity!("studio", ["name", "city", "founded_year", "market_share"]),
        ],
        values: &[
            "Drama", "Comedy", "Action", "Thriller", "Documentary", "Horror", "Romance",
            "Animation", "Sci-Fi", "Western",
        ],
        train_db_weight: 6,
    },
    DomainSpec {
        name: "Sports",
        entities: &[
            entity!("player", ["name", "age", "position", "goals", "salary", "height"]),
            entity!("club", ["name", "city", "founded_year", "stadium_capacity", "titles"]),
            entity!("season", ["year", "matches_played", "points"]),
            entity!("stadium", ["name", "city", "capacity", "opened_year"]),
        ],
        values: &[
            "Forward", "Midfielder", "Defender", "Goalkeeper", "Captain", "Rookie", "Veteran",
            "First League", "Second League", "Premier",
        ],
        train_db_weight: 6,
    },
    DomainSpec {
        name: "Medical",
        entities: &[
            entity!("patient", ["name", "age", "blood_type", "city", "insurance"]),
            entity!("doctor", ["name", "specialty", "experience_years", "salary"]),
            entity!("appointment", ["year", "cost", "duration", "status"]),
            entity!("medication", ["name", "dosage", "price", "stock"]),
            entity!("ward", ["name", "beds", "floor"]),
        ],
        values: &[
            "Cardiology", "Neurology", "Pediatrics", "Oncology", "Surgery", "Radiology",
            "General", "Emergency", "Scheduled", "Completed",
        ],
        train_db_weight: 5,
    },
    DomainSpec {
        name: "Geography",
        entities: &[
            entity!("country", ["name", "population", "area", "gdp", "continent"]),
            entity!("city", ["name", "population", "elevation", "founded_year"]),
            entity!("river", ["name", "length", "discharge"]),
            entity!("mountain", ["name", "height", "range"]),
        ],
        values: &[
            "Asia", "Europe", "Africa", "Americas", "Oceania", "Coastal", "Inland", "Alpine",
            "Tropical", "Temperate",
        ],
        train_db_weight: 5,
    },
    DomainSpec {
        name: "Government",
        entities: &[
            entity!("politician", ["name", "age", "party", "votes", "term_start"]),
            entity!("election", ["year", "turnout", "registered_voters"]),
            entity!("region", ["name", "population", "area", "budget"]),
            entity!("policy", ["title", "year", "budget", "status"]),
        ],
        values: &[
            "Liberal", "Conservative", "Green", "Independent", "Federal", "State", "Municipal",
            "Passed", "Pending", "Rejected",
        ],
        train_db_weight: 5,
    },
    DomainSpec {
        name: "Finance",
        entities: &[
            entity!("account", ["holder_name", "balance", "opened_year", "branch", "status"]),
            entity!("loan", ["amount", "interest_rate", "duration", "status"]),
            entity!("customer", ["name", "age", "city", "credit_score", "income"]),
            entity!("transaction_record", ["amount", "year", "category"]),
            entity!("branch", ["name", "city", "assets", "employees"]),
        ],
        values: &[
            "Checking", "Savings", "Credit", "Mortgage", "Active", "Closed", "Approved",
            "Deposit", "Withdrawal", "Transfer",
        ],
        train_db_weight: 5,
    },
    DomainSpec {
        name: "Retail",
        entities: &[
            entity!("product", ["name", "price", "stock", "category", "rating"]),
            entity!("store", ["name", "city", "opened_year", "revenue", "staff_count"]),
            entity!("order_record", ["quantity", "total", "year", "status"]),
            entity!("supplier", ["name", "city", "reliability", "lead_time"]),
        ],
        values: &[
            "Electronics", "Clothing", "Grocery", "Furniture", "Toys", "Garden", "Shipped",
            "Delivered", "Returned", "Pending",
        ],
        train_db_weight: 5,
    },
    DomainSpec {
        name: "Restaurant",
        entities: &[
            entity!("restaurant", ["name", "city", "rating", "capacity", "cuisine"]),
            entity!("dish", ["name", "price", "calories", "category"]),
            entity!("chef", ["name", "experience_years", "specialty", "salary"]),
            entity!("reservation", ["party_size", "year", "status"]),
        ],
        values: &[
            "Italian", "Chinese", "Mexican", "Indian", "French", "Japanese", "Vegan",
            "Seafood", "Steakhouse", "Bistro",
        ],
        train_db_weight: 4,
    },
    DomainSpec {
        name: "Aviation",
        entities: &[
            entity!("airport", ["name", "city", "runways", "passengers", "opened_year"]),
            entity!("airline", ["name", "country", "fleet_size", "founded_year"]),
            entity!("flight", ["distance", "duration", "price", "status"]),
            entity!("aircraft", ["model", "capacity", "range", "year"]),
        ],
        values: &[
            "International", "Domestic", "Regional", "On Time", "Delayed", "Cancelled",
            "Boeing", "Airbus", "Embraer", "Charter",
        ],
        train_db_weight: 4,
    },
    DomainSpec {
        name: "Education",
        entities: &[
            entity!("school", ["name", "city", "students", "founded_year", "ranking"]),
            entity!("teacher", ["name", "age", "subject", "salary", "experience_years"]),
            entity!("classroom", ["building", "capacity", "floor"]),
            entity!("exam", ["subject", "year", "avg_score", "participants"]),
        ],
        values: &[
            "Mathematics", "Science", "English", "Art", "Music", "Primary", "Secondary",
            "Public", "Private", "Charter",
        ],
        train_db_weight: 4,
    },
    DomainSpec {
        name: "Technology",
        entities: &[
            entity!("device", ["name", "price", "release_year", "weight", "battery_life"]),
            entity!("company", ["name", "city", "founded_year", "revenue", "employees"]),
            entity!("software", ["name", "version", "downloads", "rating"]),
            entity!("repository", ["name", "stars", "forks", "language"]),
        ],
        values: &[
            "Laptop", "Phone", "Tablet", "Server", "Python", "Rust", "JavaScript", "Beta",
            "Stable", "Deprecated",
        ],
        train_db_weight: 4,
    },
    DomainSpec {
        name: "Gaming",
        entities: &[
            entity!("game", ["title", "genre", "price", "release_year", "rating"]),
            entity!("gamer", ["username", "age", "country", "hours_played", "level"]),
            entity!("tournament", ["name", "year", "prize_pool", "participants"]),
            entity!("guild", ["name", "members", "founded_year", "score"]),
        ],
        values: &[
            "RPG", "Strategy", "Shooter", "Puzzle", "Racing", "Simulation", "Casual",
            "Competitive", "Indie", "AAA",
        ],
        train_db_weight: 4,
    },
    DomainSpec {
        name: "Weather",
        entities: &[
            entity!("weather_station", ["name", "city", "elevation", "installed_year"]),
            entity!("reading", ["temperature", "humidity", "pressure", "year"]),
            entity!("storm", ["name", "category", "damage", "year"]),
        ],
        values: &[
            "Sunny", "Rainy", "Cloudy", "Snowy", "Windy", "Tropical", "Hurricane", "Typhoon",
            "Blizzard", "Drought",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "Agriculture",
        entities: &[
            entity!("farm", ["name", "area", "founded_year", "revenue"]),
            entity!("crop", ["name", "yield_amount", "price", "season"]),
            entity!("farmer", ["name", "age", "experience_years"]),
            entity!("harvest", ["quantity", "year", "quality"]),
        ],
        values: &[
            "Wheat", "Corn", "Rice", "Soybean", "Barley", "Spring", "Summer", "Autumn",
            "Organic", "Conventional",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "RealEstate",
        entities: &[
            entity!("property", ["address", "price", "bedrooms", "area", "built_year"]),
            entity!("agent", ["name", "sales_count", "commission", "rating"]),
            entity!("listing", ["price", "days_on_market", "status", "year"]),
            entity!("neighborhood", ["name", "avg_price", "population", "schools"]),
        ],
        values: &[
            "Apartment", "House", "Condo", "Townhouse", "Studio", "Listed", "Sold",
            "Pending", "Suburban", "Urban",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "Insurance",
        entities: &[
            entity!("policy", ["premium", "coverage", "start_year", "status"]),
            entity!("claim", ["amount", "year", "status"]),
            entity!("policyholder", ["name", "age", "city", "risk_score"]),
            entity!("adjuster", ["name", "cases_handled", "approval_rate"]),
        ],
        values: &[
            "Auto", "Home", "Life", "Health", "Travel", "Approved", "Denied", "Open",
            "Settled", "Expired",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "Library",
        entities: &[
            entity!("book", ["title", "year", "pages", "copies", "rating"]),
            entity!("author", ["name", "country", "books_written", "birth_year"]),
            entity!("member", ["name", "age", "joined_year", "books_borrowed"]),
            entity!("loan_record", ["year", "duration", "status"]),
        ],
        values: &[
            "Fiction", "Non-fiction", "Mystery", "Biography", "Poetry", "Reference",
            "Children", "Returned", "Overdue", "Reserved",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "Museum",
        entities: &[
            entity!("museum", ["name", "city", "founded_year", "visitors", "budget"]),
            entity!("exhibit", ["title", "year", "artifacts", "popularity"]),
            entity!("artifact", ["name", "age_years", "value", "origin"]),
            entity!("curator", ["name", "specialty", "experience_years"]),
        ],
        values: &[
            "Ancient", "Modern", "Renaissance", "Egyptian", "Asian", "European", "Permanent",
            "Traveling", "Restored", "On Loan",
        ],
        train_db_weight: 3,
    },
    DomainSpec {
        name: "Theater",
        entities: &[
            entity!("play", ["title", "year", "duration", "rating"]),
            entity!("performer", ["name", "age", "roles_count", "salary"]),
            entity!("venue", ["name", "city", "capacity", "opened_year"]),
            entity!("performance", ["year", "attendance", "revenue"]),
        ],
        values: &[
            "Tragedy", "Comedy", "Musical", "Opera", "Ballet", "Matinee", "Evening",
            "Premiere", "Revival", "Tour",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Television",
        entities: &[
            entity!("show", ["title", "seasons", "episodes", "rating", "premiere_year"]),
            entity!("channel", ["name", "country", "launch_year", "viewers"]),
            entity!("episode", ["title", "duration", "viewers", "year"]),
            entity!("host", ["name", "age", "shows_count"]),
        ],
        values: &[
            "News", "Reality", "Sitcom", "Documentary", "Talk Show", "Cable", "Streaming",
            "Network", "Prime Time", "Syndicated",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Publishing",
        entities: &[
            entity!("publisher", ["name", "city", "founded_year", "titles_per_year"]),
            entity!("magazine", ["title", "circulation", "frequency", "price"]),
            entity!("journalist", ["name", "articles_count", "awards", "beat"]),
            entity!("issue", ["number", "year", "pages", "sales"]),
        ],
        values: &[
            "Weekly", "Monthly", "Quarterly", "Politics", "Science", "Fashion", "Sports",
            "Business", "Culture", "Travel",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Manufacturing",
        entities: &[
            entity!("factory", ["name", "city", "capacity", "opened_year", "workers"]),
            entity!("machine", ["model", "year", "efficiency", "maintenance_cost"]),
            entity!("product_line", ["name", "output", "defect_rate"]),
            entity!("shift", ["start_hour", "workers", "output"]),
        ],
        values: &[
            "Assembly", "Packaging", "Quality Control", "Welding", "Molding", "Day",
            "Night", "Automated", "Manual", "Certified",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Energy",
        entities: &[
            entity!("power_plant", ["name", "capacity", "built_year", "output"]),
            entity!("grid_region", ["name", "demand", "population"]),
            entity!("turbine", ["model", "capacity", "efficiency", "installed_year"]),
        ],
        values: &[
            "Solar", "Wind", "Hydro", "Nuclear", "Coal", "Gas", "Geothermal", "Peak",
            "Off-Peak", "Renewable",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Telecom",
        entities: &[
            entity!("subscriber", ["name", "age", "city", "monthly_bill", "data_usage"]),
            entity!("plan", ["name", "price", "data_limit", "minutes"]),
            entity!("tower", ["location", "height", "coverage_radius", "installed_year"]),
        ],
        values: &[
            "Prepaid", "Postpaid", "Unlimited", "Family", "Business", "5G", "4G", "Fiber",
            "Active", "Suspended",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Tourism",
        entities: &[
            entity!("hotel", ["name", "city", "stars", "rooms", "price_per_night"]),
            entity!("tour", ["name", "duration", "price", "capacity"]),
            entity!("tourist", ["name", "age", "country", "trips_count"]),
            entity!("attraction", ["name", "city", "rating", "annual_visitors"]),
        ],
        values: &[
            "Beach", "Mountain", "City Break", "Safari", "Cruise", "Luxury", "Budget",
            "Guided", "Self-Guided", "All-Inclusive",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Logistics",
        entities: &[
            entity!("warehouse", ["name", "city", "capacity", "utilization"]),
            entity!("shipment", ["weight", "distance", "cost", "status", "year"]),
            entity!("carrier", ["name", "fleet_size", "on_time_rate"]),
            entity!("package", ["weight", "value", "priority"]),
        ],
        values: &[
            "Express", "Standard", "Overnight", "Freight", "In Transit", "Delivered",
            "Processing", "Ground", "Air", "Sea",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "SocialMedia",
        entities: &[
            entity!("user_profile", ["username", "age", "country", "followers", "posts_count"]),
            entity!("post", ["likes", "shares", "comments", "year"]),
            entity!("hashtag", ["tag", "usage_count", "trending_score"]),
            entity!("community", ["name", "members", "created_year"]),
        ],
        values: &[
            "Photo", "Video", "Text", "Story", "Live", "Public", "Private", "Verified",
            "Trending", "Archived",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Law",
        entities: &[
            entity!("case_record", ["title", "year", "duration_days", "status"]),
            entity!("lawyer", ["name", "cases_won", "experience_years", "fee"]),
            entity!("court", ["name", "city", "judges_count", "established_year"]),
            entity!("verdict", ["year", "damages", "outcome"]),
        ],
        values: &[
            "Civil", "Criminal", "Corporate", "Family", "Appeal", "Settled", "Dismissed",
            "Guilty", "Not Guilty", "Pending",
        ],
        train_db_weight: 2,
    },
    DomainSpec {
        name: "Science",
        entities: &[
            entity!("experiment", ["title", "year", "budget", "duration_months", "success_rate"]),
            entity!("researcher", ["name", "field", "publications", "citations", "h_index"]),
            entity!("laboratory", ["name", "city", "equipment_count", "funding"]),
            entity!("publication", ["title", "year", "citations", "impact_factor"]),
        ],
        values: &[
            "Biology", "Chemistry", "Physics", "Genetics", "Astronomy", "Peer Reviewed",
            "Preprint", "Funded", "Completed", "Ongoing",
        ],
        train_db_weight: 2,
    },
];

/// Number of domains (33, matching the paper).
pub fn domain_count() -> usize {
    DOMAINS.len()
}

/// Look up a domain by name (case-insensitive).
pub fn domain_by_name(name: &str) -> Option<DomainId> {
    DOMAINS.iter().position(|d| d.name.eq_ignore_ascii_case(name)).map(DomainId)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_33_domains() {
        assert_eq!(domain_count(), 33);
    }

    #[test]
    fn domain_names_unique() {
        let mut names: Vec<&str> = DOMAINS.iter().map(|d| d.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), DOMAINS.len());
    }

    #[test]
    fn every_domain_has_entities_and_values() {
        for d in DOMAINS {
            assert!(d.entities.len() >= 3, "{} too few entities", d.name);
            assert!(d.values.len() >= 8, "{} too few values", d.name);
            assert!(d.train_db_weight >= 1);
            for e in d.entities {
                assert!(!e.attrs.is_empty(), "{}:{} has no attrs", d.name, e.name);
            }
        }
    }

    #[test]
    fn college_competition_transportation_have_most_weight() {
        let weight = |n: &str| domain_by_name(n).unwrap().spec().train_db_weight;
        let top3 = ["College", "Competition", "Transportation"];
        let max_other = DOMAINS
            .iter()
            .filter(|d| !top3.contains(&d.name))
            .map(|d| d.train_db_weight)
            .max()
            .unwrap();
        for n in top3 {
            assert!(weight(n) > max_other, "{n} should outweigh all others");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(domain_by_name("college").is_some());
        assert!(domain_by_name("College").is_some());
        assert!(domain_by_name("NoSuchDomain").is_none());
    }

    #[test]
    fn entity_table_names_unique_within_domain() {
        for d in DOMAINS {
            let mut names: Vec<&str> = d.entities.iter().map(|e| e.name).collect();
            names.sort();
            names.dedup();
            assert_eq!(names.len(), d.entities.len(), "{}", d.name);
        }
    }
}
