//! Property-based tests of the benchmark generator: across arbitrary
//! seeds, every recipe's output must parse, execute, classify, and
//! round-trip; corpora must keep their invariants under perturbation and
//! augmentation.

use datagen::{
    augment_corpus, generate_corpus, generate_db, perturb_corpus, CorpusConfig, CorpusKind,
    Perturbation, QueryGenerator, Recipe, SchemaProfile, DOMAINS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // corpus-level cases are expensive; keep the count modest
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every query any recipe produces, on any database, parses back from
    /// its printed SQL and executes on its database.
    #[test]
    fn recipes_produce_valid_sql_for_any_seed(seed in any::<u64>(), domain_idx in 0usize..33) {
        let domain = datagen::DomainId(domain_idx);
        let db = generate_db("pdb", domain, &SchemaProfile::spider(), seed);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        for recipe in Recipe::ALL {
            if let Some(g) = qg.generate(recipe, &mut rng) {
                let reparsed = sqlkit::parse_query(&g.sql)
                    .unwrap_or_else(|e| panic!("{recipe:?}: `{}`: {e}", g.sql));
                prop_assert_eq!(&reparsed, &g.query);
                db.database
                    .run_query(&g.query)
                    .unwrap_or_else(|e| panic!("{recipe:?}: `{}`: {e}", g.sql));
            }
        }
    }

    /// Tiny corpora keep their invariants for any seed: split sizes, gold
    /// executability, unique ids, variant non-emptiness.
    #[test]
    fn corpus_invariants_for_any_seed(seed in any::<u64>()) {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(seed));
        prop_assert_eq!(c.dev.len(), 60);
        prop_assert_eq!(c.train.len(), 120);
        for (i, s) in c.dev.iter().enumerate() {
            prop_assert_eq!(s.id, i);
            prop_assert!(!s.variants.is_empty());
            prop_assert!(s.perturbation.is_none());
            c.db(s).database.run_query(&s.query)
                .unwrap_or_else(|e| panic!("gold `{}`: {e}", s.sql));
        }
    }

    /// Perturbations preserve gold executability and tag every dev sample.
    #[test]
    fn perturbations_preserve_gold(seed in any::<u64>(), kind_idx in 0usize..3) {
        let kind = Perturbation::ALL[kind_idx];
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(seed));
        let p = perturb_corpus(&c, kind, seed ^ 1);
        for s in &p.dev {
            prop_assert_eq!(s.perturbation, Some(kind));
            p.db(s).database.run_query(&s.query)
                .unwrap_or_else(|e| panic!("{kind:?} gold `{}`: {e}", s.sql));
        }
    }

    /// Augmentation grows exactly the requested split and keeps it valid.
    #[test]
    fn augmentation_invariants(seed in any::<u64>(), domain_idx in 0usize..33, extra in 1usize..4) {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(seed));
        let domain = datagen::DomainId(domain_idx);
        let a = augment_corpus(&c, domain, extra, 5, seed ^ 2);
        prop_assert_eq!(a.train.len(), c.train.len() + extra * 5);
        prop_assert_eq!(a.dev.len(), c.dev.len());
        prop_assert_eq!(a.train_db_ids.len(), c.train_db_ids.len() + extra);
        for s in a.train.iter().skip(c.train.len()) {
            prop_assert_eq!(s.domain, domain);
            a.db(s).database.run_query(&s.query)
                .unwrap_or_else(|e| panic!("augmented gold `{}`: {e}", s.sql));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Database generation never panics and respects profile bounds for any
    /// seed/domain combination.
    #[test]
    fn db_generation_total(seed in any::<u64>(), domain_idx in 0usize..33, bird in any::<bool>()) {
        let profile = if bird { SchemaProfile::bird() } else { SchemaProfile::spider() };
        let db = generate_db("db", datagen::DomainId(domain_idx), &profile, seed);
        let n = db.database.table_count();
        prop_assert!(n >= profile.tables_min && n <= profile.tables_max);
        for t in db.database.tables() {
            prop_assert!(t.n_rows() > 0);
            prop_assert_eq!(t.schema.primary_key.as_slice(), &[0][..]);
        }
        let _ = DOMAINS[domain_idx].name;
    }

    /// NL rendering is total and deterministic for any seed.
    #[test]
    fn nl_rendering_total(seed in any::<u64>()) {
        use datagen::nl::{paraphrase_key, render_variants, NlParts};
        let parts = NlParts {
            selection: "the name".into(),
            subject: "items".into(),
            conditions: vec!["the value is greater than 3".into()],
            grouping: None,
            ordering: None,
            limit: None,
        };
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let va = render_variants(&parts, 4, &mut a);
        let vb = render_variants(&parts, 4, &mut b);
        prop_assert_eq!(&va, &vb);
        let keys: Vec<String> = va.iter().map(|v| paraphrase_key(v)).collect();
        for k in &keys {
            prop_assert_eq!(k, &keys[0]);
        }
    }
}
