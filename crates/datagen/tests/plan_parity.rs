//! Property tests: compiled query plans are observationally identical to
//! the AST interpreter over generated query corpora — same rows, columns,
//! ordered flag, and deterministic work units (the VES currency), or the
//! same execution error.

use datagen::{domain_by_name, generate_db, GeneratedDb, QueryGenerator, Recipe, SchemaProfile};
use minidb::exec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_db(domain: &str, seed: u64) -> GeneratedDb {
    generate_db(
        format!("{}_{seed}", domain.to_lowercase()),
        domain_by_name(domain).unwrap(),
        &SchemaProfile::spider(),
        seed,
    )
}

/// Execute one generated query through both engines and assert parity.
/// Returns whether the query actually compiled (for vacuity accounting).
fn check_parity(db: &GeneratedDb, sql: &str, query: &sqlkit::Query) -> bool {
    let Some(plan) = minidb::compile(&db.database, query) else {
        return false;
    };
    let compiled = plan.execute(&db.database);
    let interpreted = exec::execute(&db.database, query);
    match (&compiled, &interpreted) {
        (Ok(c), Ok(i)) => {
            assert_eq!(c.columns, i.columns, "`{sql}` columns diverged");
            assert_eq!(
                format!("{:?}", c.rows),
                format!("{:?}", i.rows),
                "`{sql}` rows diverged"
            );
            assert_eq!(c.ordered, i.ordered, "`{sql}` ordered flag diverged");
            assert_eq!(c.work, i.work, "`{sql}` work units diverged");
        }
        (Err(ce), Err(ie)) => {
            assert_eq!(format!("{ce:?}"), format!("{ie:?}"), "`{sql}` errors diverged");
        }
        _ => panic!(
            "`{sql}` outcome diverged: compiled {compiled:?} vs interpreted {interpreted:?}"
        ),
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_plan_matches_interpreter(
        db_seed in 0u64..4,
        query_seed in 0u64..500,
        recipe_idx in 0usize..Recipe::ALL.len(),
    ) {
        let db = build_db("College", db_seed);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        if let Some(g) = qg.generate(Recipe::ALL[recipe_idx], &mut rng) {
            check_parity(&db, &g.sql, &g.query);
        }
    }

    #[test]
    fn compiled_plan_matches_interpreter_across_domains(
        domain_idx in 0usize..3,
        query_seed in 0u64..300,
    ) {
        let domain = ["Music", "Medical", "Aviation"][domain_idx];
        let db = build_db(domain, 7);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        let recipe = Recipe::ALL[(query_seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            check_parity(&db, &g.sql, &g.query);
        }
    }
}

/// The property tests above are vacuous if `compile` rejected everything;
/// pin that a healthy share of the generated corpus actually takes the
/// compiled path (subquery recipes legitimately fall back).
#[test]
fn a_healthy_share_of_generated_queries_compiles() {
    let db = build_db("College", 11);
    let qg = QueryGenerator::new(&db);
    let mut generated = 0usize;
    let mut compiled = 0usize;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipe = Recipe::ALL[(seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            generated += 1;
            if check_parity(&db, &g.sql, &g.query) {
                compiled += 1;
            }
        }
    }
    assert!(generated >= 100, "only {generated} queries generated");
    assert!(
        compiled * 2 >= generated,
        "only {compiled}/{generated} queries took the compiled path"
    );
}
