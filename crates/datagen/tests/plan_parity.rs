//! Property tests: compiled query plans are observationally identical to
//! the AST interpreter over generated query corpora — same rows, columns,
//! ordered flag, and deterministic work units (the VES currency), or the
//! same execution error.

use datagen::{domain_by_name, generate_db, GeneratedDb, QueryGenerator, Recipe, SchemaProfile};
use minidb::exec;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_db(domain: &str, seed: u64) -> GeneratedDb {
    generate_db(
        format!("{}_{seed}", domain.to_lowercase()),
        domain_by_name(domain).unwrap(),
        &SchemaProfile::spider(),
        seed,
    )
}

/// Execute one generated query through all three engines — the interpreter,
/// the row-wise compiled path, and the default compiled path (vectorized
/// where the shape is eligible) — and assert observational identity:
/// rows, columns, ordered flag, and deterministic work units (the VES
/// currency), or the same execution error.
/// Returns whether the query actually compiled (for vacuity accounting).
fn check_parity(db: &GeneratedDb, sql: &str, query: &sqlkit::Query) -> bool {
    let Some(plan) = minidb::compile(&db.database, query) else {
        return false;
    };
    let compiled = plan.execute(&db.database);
    let rowwise = plan.execute_rowwise(&db.database);
    let interpreted = exec::execute(&db.database, query);
    match (&compiled, &interpreted) {
        (Ok(c), Ok(i)) => {
            assert_eq!(c.columns, i.columns, "`{sql}` columns diverged");
            assert_eq!(
                format!("{:?}", c.rows),
                format!("{:?}", i.rows),
                "`{sql}` rows diverged"
            );
            assert_eq!(c.ordered, i.ordered, "`{sql}` ordered flag diverged");
            assert_eq!(c.work, i.work, "`{sql}` work units diverged");
            let r = rowwise.as_ref().expect("rowwise diverged in outcome");
            assert_eq!(
                format!("{:?}", c.rows),
                format!("{:?}", r.rows),
                "`{sql}` vectorized vs rowwise rows diverged"
            );
            assert_eq!(c.work, r.work, "`{sql}` vectorized vs rowwise work diverged");
        }
        (Err(ce), Err(ie)) => {
            assert_eq!(format!("{ce:?}"), format!("{ie:?}"), "`{sql}` errors diverged");
            let re = rowwise.as_ref().expect_err("rowwise diverged in outcome");
            assert_eq!(format!("{ce:?}"), format!("{re:?}"), "`{sql}` rowwise error diverged");
        }
        _ => panic!(
            "`{sql}` outcome diverged: compiled {compiled:?} vs interpreted {interpreted:?}"
        ),
    }
    true
}

/// Rebuild a database with most non-key cells replaced by NULL: validity
/// bitmaps go sparse, zone maps lose whole batches, aggregates fold over
/// mostly-empty columns. Column 0 (the PK) survives so joins still match.
fn null_dense(db: &GeneratedDb, seed: u64) -> GeneratedDb {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut database = minidb::Database::new(db.database.name());
    for t in db.database.tables() {
        let rows: Vec<Vec<minidb::Value>> = t
            .to_rows()
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .enumerate()
                    .map(|(c, v)| {
                        if c > 0 && rng.gen_bool(0.7) {
                            minidb::Value::Null
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let table = minidb::Table::from_rows(t.schema.clone(), rows)
            .expect("nulling cells never violates affinity");
        database.add_table(table).expect("names unchanged");
    }
    GeneratedDb { db_id: db.db_id.clone(), domain: db.domain, database }
}

/// Rebuild a database with every table empty: zero-row scans, empty hash
/// builds, the all-NULL aggregate head row.
fn emptied(db: &GeneratedDb) -> GeneratedDb {
    let mut database = minidb::Database::new(db.database.name());
    for t in db.database.tables() {
        let table = minidb::Table::from_rows(t.schema.clone(), Vec::new())
            .expect("empty tables are trivially valid");
        database.add_table(table).expect("names unchanged");
    }
    GeneratedDb { db_id: db.db_id.clone(), domain: db.domain, database }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_plan_matches_interpreter(
        db_seed in 0u64..4,
        query_seed in 0u64..500,
        recipe_idx in 0usize..Recipe::ALL.len(),
    ) {
        let db = build_db("College", db_seed);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        if let Some(g) = qg.generate(Recipe::ALL[recipe_idx], &mut rng) {
            check_parity(&db, &g.sql, &g.query);
        }
    }

    #[test]
    fn compiled_plan_matches_interpreter_on_null_dense_content(
        query_seed in 0u64..250,
    ) {
        // queries are generated against the *original* content (value
        // sampling needs non-null cells) but executed against the
        // NULL-dense twin, whose schema is identical
        let db = build_db("College", 3);
        let sparse = null_dense(&db, 41);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        let recipe = Recipe::ALL[(query_seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            check_parity(&sparse, &g.sql, &g.query);
        }
    }

    #[test]
    fn compiled_plan_matches_interpreter_on_empty_tables(
        query_seed in 0u64..150,
    ) {
        let db = build_db("College", 5);
        let empty = emptied(&db);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        let recipe = Recipe::ALL[(query_seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            check_parity(&empty, &g.sql, &g.query);
        }
    }

    #[test]
    fn compiled_plan_matches_interpreter_across_domains(
        domain_idx in 0usize..3,
        query_seed in 0u64..300,
    ) {
        let domain = ["Music", "Medical", "Aviation"][domain_idx];
        let db = build_db(domain, 7);
        let qg = QueryGenerator::new(&db);
        let mut rng = StdRng::seed_from_u64(query_seed);
        let recipe = Recipe::ALL[(query_seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            check_parity(&db, &g.sql, &g.query);
        }
    }
}

/// The property tests above are vacuous if `compile` rejected everything;
/// pin that a healthy share of the generated corpus actually takes the
/// compiled path (subquery recipes legitimately fall back).
#[test]
fn a_healthy_share_of_generated_queries_compiles() {
    let db = build_db("College", 11);
    let qg = QueryGenerator::new(&db);
    let mut generated = 0usize;
    let mut compiled = 0usize;
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let recipe = Recipe::ALL[(seed as usize) % Recipe::ALL.len()];
        if let Some(g) = qg.generate(recipe, &mut rng) {
            generated += 1;
            if check_parity(&db, &g.sql, &g.query) {
                compiled += 1;
            }
        }
    }
    assert!(generated >= 100, "only {generated} queries generated");
    assert!(
        compiled * 2 >= generated,
        "only {compiled}/{generated} queries took the compiled path"
    );
}
