//! Property-based tests of the simulated translators: for arbitrary seeds
//! and zoo members, predictions must parse, be deterministic, and respect
//! the simulation contract (restyled-correct predictions execute to the
//! gold result; corrupted predictions differ from it).

use datagen::{generate_corpus, CorpusConfig, CorpusKind};
use modelzoo::{zoo, DatasetKind, Nl2SqlModel, TranslationTask};
use proptest::prelude::*;
use std::sync::OnceLock;

fn corpus() -> &'static datagen::Corpus {
    static C: OnceLock<datagen::Corpus> = OnceLock::new();
    C.get_or_init(|| generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(2718)))
}

fn task(sample_idx: usize, variant: usize) -> TranslationTask<'static> {
    let c = corpus();
    let sample = &c.dev[sample_idx % c.dev.len()];
    TranslationTask {
        sample,
        variant: variant % sample.variants.len(),
        db: c.db(sample),
        dataset: DatasetKind::Spider,
        domain_train_dbs: 3,
        avg_domain_train_dbs: 3.6,
        few_shot: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every zoo member's prediction parses and is stable across calls.
    #[test]
    fn predictions_parse_and_are_deterministic(
        sample_idx in 0usize..60,
        variant in 0usize..4,
        method_idx in 0usize..16,
    ) {
        let models = zoo();
        let m = &models[method_idx % models.len()];
        let t = task(sample_idx, variant);
        let a = m.translate(&t).expect("spider always supported");
        let b = m.translate(&t).expect("spider always supported");
        prop_assert_eq!(&a.sql, &b.sql);
        prop_assert_eq!(a.prompt_tokens, b.prompt_tokens);
        prop_assert_eq!(a.cost_usd, b.cost_usd);
        let parsed = sqlkit::parse_query(&a.sql)
            .unwrap_or_else(|e| panic!("{}: `{}`: {e}", m.name(), a.sql));
        prop_assert_eq!(parsed, a.query);
    }

    /// The prediction either executes to the gold result (a correct /
    /// restyled output) or it does not — and in the incorrect case the
    /// query text must differ from gold (the corruption contract).
    #[test]
    fn simulation_contract(sample_idx in 0usize..60, method_idx in 0usize..16) {
        let c = corpus();
        let models = zoo();
        let m = &models[method_idx % models.len()];
        let t = task(sample_idx, 0);
        let pred = m.translate(&t).expect("supported");
        let gold_rs = c.db(t.sample).database.run_query(&t.sample.query).expect("gold runs");
        let ex = match c.db(t.sample).database.run_query(&pred.query) {
            Ok(rs) => minidb::results_equivalent(&gold_rs, &rs),
            Err(_) => false,
        };
        if !ex {
            prop_assert_ne!(&pred.query, &t.sample.query, "wrong predictions must differ");
        }
    }

    /// The fast fitness path produces the same query as the full translate.
    #[test]
    fn fast_path_matches_translate(sample_idx in 0usize..60, method_idx in 0usize..16) {
        let models = zoo();
        let m = &models[method_idx % models.len()];
        let t = task(sample_idx, 0);
        let full = m.translate(&t).expect("supported");
        let fast = m.predict_query_only(&t).expect("supported");
        prop_assert_eq!(full.query, fast);
    }

    /// Economy accounting is internally consistent: cost follows tokens for
    /// API methods; local methods bill zero dollars and positive latency.
    #[test]
    fn economy_consistency(sample_idx in 0usize..60, method_idx in 0usize..16) {
        let models = zoo();
        let m = &models[method_idx % models.len()];
        let t = task(sample_idx, 0);
        let p = m.translate(&t).expect("supported");
        match m.spec().serving {
            modelzoo::Serving::Api(pricing) => {
                let expected = pricing.cost(p.prompt_tokens, p.completion_tokens);
                prop_assert!((p.cost_usd - expected).abs() < 1e-12);
                prop_assert!(p.prompt_tokens > 0);
            }
            modelzoo::Serving::Local(_) => {
                prop_assert_eq!(p.cost_usd, 0.0);
                prop_assert_eq!(p.prompt_tokens, 0);
                prop_assert!(p.latency_s > 0.0);
            }
        }
        prop_assert!(p.latency_s.is_finite());
    }
}
