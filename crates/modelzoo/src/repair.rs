//! StaticRepair post-processing: schema-aware identifier repair.
//!
//! A deterministic post-processor in the Figure-13 design space: run the
//! `sqlcheck` analyzer over the decoded query and, when it reports
//! Error-severity diagnostics, try to repair unresolvable table and column
//! identifiers by nearest-name matching against the database schema (the
//! classic "did you mean" repair real systems apply to model output before
//! execution). The repair is kept only if it strictly reduces the number
//! of Error diagnostics, so it can never turn a clean query into a broken
//! one — and a clean query is never touched at all.

use datagen::GeneratedDb;
use sqlcheck::{Catalog, Severity};
use sqlkit::ast::*;

/// Repair `query` in place against `db`'s schema. Returns `true` when the
/// query was changed (and the change reduced Error diagnostics).
pub fn static_repair(query: &mut Query, db: &GeneratedDb) -> bool {
    let catalog = Catalog::from_database(&db.database);
    static_repair_with(query, &catalog)
}

/// [`static_repair`] against a pre-built catalog (callers that process
/// many queries per database should build the catalog once).
pub fn static_repair_with(query: &mut Query, catalog: &Catalog) -> bool {
    let before = error_count(catalog, query);
    if before == 0 {
        return false;
    }
    let mut repaired = query.clone();
    let mut changed = false;
    repair_query(&mut repaired, catalog, &mut changed);
    if !changed {
        return false;
    }
    if error_count(catalog, &repaired) < before {
        *query = repaired;
        true
    } else {
        false
    }
}

fn error_count(catalog: &Catalog, query: &Query) -> usize {
    sqlcheck::analyze(catalog, query)
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

/// One visible table binding: (binding name lowercased, its columns).
struct Binding<'a> {
    name: String,
    cols: Option<&'a [(String, sqlcheck::Ty)]>,
}

fn repair_query(query: &mut Query, catalog: &Catalog, changed: &mut bool) {
    repair_core(&mut query.body, catalog, changed);
    let arm_bindings = bindings_of(&query.body, catalog);
    for (_, core) in &mut query.set_ops {
        repair_core(core, catalog, changed);
    }
    // select aliases are legal ORDER BY keys — never "repair" one into a
    // real column
    let aliases: Vec<String> = query
        .body
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Expr { alias: Some(a), .. } => Some(a.to_lowercase()),
            _ => None,
        })
        .collect();
    for k in &mut query.order_by {
        if let Expr::Column { table: None, column } = &k.expr {
            if aliases.contains(&column.to_lowercase()) {
                continue;
            }
        }
        repair_expr(&mut k.expr, &arm_bindings, catalog, changed);
    }
}

fn repair_core(core: &mut SelectCore, catalog: &Catalog, changed: &mut bool) {
    // tables first, so column repair sees the repaired FROM
    if let Some(from) = &mut core.from {
        repair_table_ref(&mut from.base, catalog, changed);
        for j in &mut from.joins {
            repair_table_ref(&mut j.table, catalog, changed);
        }
        // FROM subqueries define their own scopes
        if let TableRef::Subquery { query, .. } = &mut from.base {
            repair_query(query, catalog, changed);
        }
        for j in &mut from.joins {
            if let TableRef::Subquery { query, .. } = &mut j.table {
                repair_query(query, catalog, changed);
            }
        }
    }
    let bindings = bindings_of(core, catalog);
    for item in &mut core.items {
        if let SelectItem::Expr { expr, .. } = item {
            repair_expr(expr, &bindings, catalog, changed);
        }
    }
    if let Some(from) = &mut core.from {
        for j in &mut from.joins {
            if let Some(on) = &mut j.on {
                repair_expr(on, &bindings, catalog, changed);
            }
        }
    }
    if let Some(w) = &mut core.where_clause {
        repair_expr(w, &bindings, catalog, changed);
    }
    for g in &mut core.group_by {
        repair_expr(g, &bindings, catalog, changed);
    }
    if let Some(h) = &mut core.having {
        repair_expr(h, &bindings, catalog, changed);
    }
}

/// Rename an unknown base table to the closest catalog table name.
fn repair_table_ref(t: &mut TableRef, catalog: &Catalog, changed: &mut bool) {
    if let TableRef::Named { name, .. } = t {
        if catalog.table(name).is_none() {
            let candidates: Vec<&str> = catalog.tables().iter().map(|t| t.name.as_str()).collect();
            if let Some(fix) = closest(name, &candidates) {
                *name = fix.to_string();
                *changed = true;
            }
        }
    }
}

fn bindings_of<'a>(core: &SelectCore, catalog: &'a Catalog) -> Vec<Binding<'a>> {
    let mut out = Vec::new();
    let Some(from) = &core.from else { return out };
    let mut add = |t: &TableRef| {
        let name = t.binding().unwrap_or("").to_lowercase();
        let cols = match t {
            TableRef::Named { name, .. } => catalog.table(name).map(|t| t.columns.as_slice()),
            TableRef::Subquery { .. } => None,
        };
        out.push(Binding { name, cols });
    };
    add(&from.base);
    for j in &from.joins {
        add(&j.table);
    }
    out
}

fn repair_expr(e: &mut Expr, bindings: &[Binding<'_>], catalog: &Catalog, changed: &mut bool) {
    if let Expr::Column { table, column } = e {
        repair_column(table, column, bindings, changed);
    }
    match e {
        Expr::Agg { arg, .. } => repair_expr(arg, bindings, catalog, changed),
        Expr::Func { args, .. } => {
            args.iter_mut().for_each(|a| repair_expr(a, bindings, catalog, changed))
        }
        Expr::Binary { left, right, .. } => {
            repair_expr(left, bindings, catalog, changed);
            repair_expr(right, bindings, catalog, changed);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            repair_expr(expr, bindings, catalog, changed)
        }
        Expr::Between { expr, low, high, .. } => {
            repair_expr(expr, bindings, catalog, changed);
            repair_expr(low, bindings, catalog, changed);
            repair_expr(high, bindings, catalog, changed);
        }
        Expr::InList { expr, list, .. } => {
            repair_expr(expr, bindings, catalog, changed);
            list.iter_mut().for_each(|x| repair_expr(x, bindings, catalog, changed));
        }
        Expr::InSubquery { expr, query, .. } => {
            repair_expr(expr, bindings, catalog, changed);
            repair_query(query, catalog, changed);
        }
        Expr::Subquery(query) | Expr::Exists { query, .. } => {
            repair_query(query, catalog, changed)
        }
        Expr::Like { expr, pattern, .. } => {
            repair_expr(expr, bindings, catalog, changed);
            repair_expr(pattern, bindings, catalog, changed);
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                repair_expr(op, bindings, catalog, changed);
            }
            for (w, t) in branches {
                repair_expr(w, bindings, catalog, changed);
                repair_expr(t, bindings, catalog, changed);
            }
            if let Some(el) = else_expr {
                repair_expr(el, bindings, catalog, changed);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::AggWildcard(_) => {}
    }
}

/// Repair one column reference against the visible bindings: requalify a
/// qualified reference whose column lives in a different visible table, or
/// rename the column to the closest visible column name.
fn repair_column(
    table: &mut Option<String>,
    column: &mut String,
    bindings: &[Binding<'_>],
    changed: &mut bool,
) {
    let has =
        |b: &Binding<'_>| b.cols.is_none_or(|cs| cs.iter().any(|(c, _)| c.eq_ignore_ascii_case(column)));
    match table {
        Some(q) => {
            let ql = q.to_lowercase();
            let Some(target) = bindings.iter().find(|b| b.name == ql) else { return };
            if has(target) {
                return;
            }
            // the column exists under another visible binding → requalify
            if let Some(other) = bindings.iter().find(|b| b.cols.is_some() && has(b)) {
                *q = other.name.clone();
                *changed = true;
                return;
            }
            // otherwise: closest column within the qualified table
            if let Some(cs) = target.cols {
                let names: Vec<&str> = cs.iter().map(|(c, _)| c.as_str()).collect();
                if let Some(fix) = closest(column, &names) {
                    *column = fix.to_string();
                    *changed = true;
                }
            }
        }
        None => {
            if bindings.iter().any(has) || bindings.is_empty() {
                return;
            }
            let names: Vec<&str> = bindings
                .iter()
                .filter_map(|b| b.cols)
                .flat_map(|cs| cs.iter().map(|(c, _)| c.as_str()))
                .collect();
            if let Some(fix) = closest(column, &names) {
                *column = fix.to_string();
                *changed = true;
            }
        }
    }
}

/// The candidate closest to `name` by edit distance, when close enough to
/// plausibly be the intended identifier (distance at most half the name's
/// length, and never more than 3).
fn closest<'a>(name: &str, candidates: &[&'a str]) -> Option<&'a str> {
    let budget = (name.len() / 2).clamp(1, 3);
    candidates
        .iter()
        .map(|c| (levenshtein(&name.to_lowercase(), &c.to_lowercase()), *c))
        .filter(|&(d, _)| d <= budget)
        .min_by_key(|&(d, c)| (d, c.len()))
        .map(|(_, c)| c)
}

fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1; b.len() + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        prev = cur;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};

    fn corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(5))
    }

    #[test]
    fn clean_queries_are_left_alone() {
        let c = corpus();
        let s = &c.dev[0];
        let mut q = s.query.clone();
        assert!(!static_repair(&mut q, c.db(s)));
        assert_eq!(sqlkit::to_sql(&q), s.sql);
    }

    #[test]
    fn typoed_identifiers_get_repaired_to_executable_sql() {
        let c = corpus();
        // find a sample reading from a plain named table
        let s = c
            .dev
            .iter()
            .find(|s| {
                matches!(
                    s.query.body.from.as_ref().map(|f| &f.base),
                    Some(TableRef::Named { .. })
                )
            })
            .expect("some sample reads a named table");
        let db = c.db(s);
        let mut q = s.query.clone();
        // typo the base table (drop its last character)
        if let Some(TableRef::Named { name, .. }) = q.body.from.as_mut().map(|f| &mut f.base) {
            name.pop();
        }
        assert!(db.database.run_query(&q).is_err(), "typo must break execution");
        assert!(static_repair(&mut q, db), "repair must engage");
        assert!(db.database.run_query(&q).is_ok(), "repaired query must run: {}", sqlkit::to_sql(&q));
    }

    #[test]
    fn unrepairable_garbage_is_not_made_worse() {
        let c = corpus();
        let s = &c.dev[0];
        let mut q = sqlkit::parse_query("SELECT zzz_nothing_close FROM qqq_unrelated").unwrap();
        let before = sqlkit::to_sql(&q);
        static_repair(&mut q, c.db(s));
        // either repaired to something better or left untouched — never
        // rewritten without reducing errors
        let cat = Catalog::from_database(&c.db(s).database);
        assert!(
            sqlkit::to_sql(&q) == before || error_count(&cat, &q) < 2,
            "{}",
            sqlkit::to_sql(&q)
        );
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("singer", "singer"), 0);
        assert_eq!(levenshtein("singer", "singers"), 1);
        assert_eq!(levenshtein("abc", "xyz"), 3);
        assert_eq!(closest("singe", &["singer", "concert"]), Some("singer"));
        assert_eq!(closest("zzzzzz", &["singer", "concert"]), None);
    }
}
