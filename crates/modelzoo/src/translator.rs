//! The simulated translator: ties profiles, modules, prompts, restyling and
//! corruption together behind the [`Nl2SqlModel`] trait.
//!
//! **Simulation boundary.** A real NL2SQL system sees (question, database)
//! and produces SQL through a neural model; that step cannot run offline,
//! so [`SimulatedModel`] receives the gold query as an *oracle* and decides
//! — via its calibrated [`CapabilityProfile`] and a deterministic
//! per-(method, sample, variant) RNG — whether to emit a correct prediction
//! (possibly restyled, which preserves execution but often breaks exact
//! match) or a corrupted one (AST mutations from the method's error
//! palette). Everything downstream of this decision — prompt construction,
//! token/cost accounting, SQL text, execution, metric computation — is real
//! code operating on real SQL.

use crate::corruption::corrupt_prediction;
use crate::economy::count_tokens;
use crate::profiles::{fnv1a, hash_unit, CapabilityProfile, DatasetKind, SampleTraits};
use crate::prompt::build_prompt;
use crate::registry::{MethodSpec, Serving};
use crate::restyle::restyle;
use crate::taxonomy::PostProcessing;
use crate::modules::FewShotIndex;
use datagen::{GeneratedDb, Sample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlkit::Query;

/// One translation request.
#[derive(Clone, Copy)]
pub struct TranslationTask<'a> {
    /// The benchmark sample (question, gold SQL, features).
    pub sample: &'a Sample,
    /// Which NL variant of the sample to translate (0 = canonical).
    pub variant: usize,
    /// The database the question targets.
    pub db: &'a GeneratedDb,
    /// Which benchmark this is.
    pub dataset: DatasetKind,
    /// Number of training databases in the sample's domain.
    pub domain_train_dbs: usize,
    /// Average training databases per domain.
    pub avg_domain_train_dbs: f64,
    /// Few-shot retrieval index over the training pool (None disables
    /// similarity-based example selection).
    pub few_shot: Option<&'a FewShotIndex<'a>>,
}

impl<'a> TranslationTask<'a> {
    /// The NL question text for the requested variant.
    pub fn question(&self) -> &'a str {
        self.sample
            .variants
            .get(self.variant)
            .map(String::as_str)
            .unwrap_or_else(|| self.sample.question())
    }
}

/// One prediction with its cost accounting.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// The predicted SQL text.
    pub sql: String,
    /// Parsed predicted query (always parseable — the simulation emits ASTs).
    pub query: Query,
    /// Prompt tokens spent (API methods; 0 for local models).
    pub prompt_tokens: u64,
    /// Completion tokens spent.
    pub completion_tokens: u64,
    /// Dollar cost of the API calls (0 for local models).
    pub cost_usd: f64,
    /// Latency in seconds (serving model for local methods, API latency
    /// model for prompt methods).
    pub latency_s: f64,
}

/// Anything that turns NL questions into SQL.
///
/// `Send + Sync` is a supertrait so one model instance can serve
/// translation requests from many worker threads concurrently (the `serve`
/// crate shares models behind references across its pool); `translate`
/// already takes `&self`, so implementations are stateless per call.
pub trait Nl2SqlModel: Send + Sync {
    /// The method's display name.
    fn name(&self) -> &str;

    /// Translate one task; `None` when the method does not support the
    /// dataset (e.g. DIN-SQL on BIRD in the paper).
    fn translate(&self, task: &TranslationTask<'_>) -> Option<Prediction>;
}

/// The calibrated simulated model wrapping a registry [`MethodSpec`].
#[derive(Debug, Clone)]
pub struct SimulatedModel {
    spec: MethodSpec,
}

impl SimulatedModel {
    /// Wrap a method spec.
    pub fn new(spec: MethodSpec) -> Self {
        Self { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &MethodSpec {
        &self.spec
    }

    /// Deterministic per-(sample[, variant]) RNG. `with_method` salts the
    /// stream with the method name; the correctness draw deliberately omits
    /// it (common random numbers), so method comparisons are *paired*: a
    /// stronger profile dominates a weaker one sample-by-sample rather than
    /// merely in expectation, keeping leaderboard ranks faithful to the
    /// calibration on finite dev splits.
    fn rng(
        &self,
        task: &TranslationTask<'_>,
        salt: &str,
        with_variant: bool,
        with_method: bool,
    ) -> StdRng {
        let variant = if with_variant { task.variant as u64 } else { u64::MAX };
        let method = if with_method { self.spec.name.as_bytes() } else { b"".as_slice() };
        let seed = fnv1a(&[
            method,
            salt.as_bytes(),
            task.sample.db_id.as_bytes(),
            &(task.sample.id as u64).to_le_bytes(),
            &variant.to_le_bytes(),
            &(matches!(task.dataset, DatasetKind::Bird) as u64).to_le_bytes(),
        ]);
        StdRng::seed_from_u64(seed)
    }

    /// Decide whether this (sample, variant) yields a correct prediction.
    ///
    /// The canonical question (variant 0) follows the calibrated probability
    /// directly — benchmark accuracies are measured on it. Paraphrase
    /// variants flip the canonical outcome with the method's instability,
    /// which is what QVT measures (fine-tuned models are stable under
    /// paraphrase — Finding 6).
    fn decide_correct(&self, task: &TranslationTask<'_>, p: f64) -> bool {
        // common-random-numbers draw: u is shared across methods
        let mut canon_rng = self.rng(task, "outcome", false, false);
        let u: f64 = canon_rng.gen();
        let canonical = u < p;
        if task.variant == 0 {
            return canonical;
        }
        let mut flip_rng = self.rng(task, "variant-flip", true, true);
        let flip = flip_rng.gen_bool(self.spec.profile.variant_instability);
        canonical ^ flip
    }

    fn traits<'a>(&self, task: &'a TranslationTask<'_>) -> SampleTraits<'a> {
        let domain_bias_unit = hash_unit(fnv1a(&[
            self.spec.name.as_bytes(),
            task.sample.domain.spec().name.as_bytes(),
        ]));
        SampleTraits {
            dataset: task.dataset,
            hardness: task.sample.hardness,
            bird_difficulty: task.sample.bird_difficulty,
            features: &task.sample.features,
            domain_train_dbs: task.domain_train_dbs,
            avg_domain_train_dbs: task.avg_domain_train_dbs,
            domain_bias_unit,
            perturbation: task.sample.perturbation,
        }
    }

    /// The calibrated profile (exposed for the AAS search).
    pub fn profile(&self) -> &CapabilityProfile {
        &self.spec.profile
    }

    /// Fast path for fitness evaluation: produce only the predicted query,
    /// skipping prompt construction and economy accounting. Identical
    /// prediction to [`Nl2SqlModel::translate`] for the same task.
    pub fn predict_query_only(&self, task: &TranslationTask<'_>) -> Option<Query> {
        let p = self.spec.profile.p_correct(&self.traits(task))?;
        let correct = self.decide_correct(task, p);
        let mut style_rng = self.rng(task, "style", true, true);
        if correct {
            let mut pred_query = task.sample.query.clone();
            let alignment = self.spec.profile.em_alignment(task.sample.hardness);
            if !style_rng.gen_bool(alignment.clamp(0.0, 1.0)) {
                let _ = restyle(&mut pred_query, &mut style_rng);
            }
            if self.spec.modules.post == PostProcessing::StaticRepair {
                crate::repair::static_repair(&mut pred_query, task.db);
            }
            Some(pred_query)
        } else {
            let mut pred_query =
                corrupt_prediction(&task.sample.query, self.spec.class, task.db, &mut style_rng);
            if self.spec.modules.post == PostProcessing::StaticRepair {
                crate::repair::static_repair(&mut pred_query, task.db);
            }
            Some(pred_query)
        }
    }
}

impl Nl2SqlModel for SimulatedModel {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn translate(&self, task: &TranslationTask<'_>) -> Option<Prediction> {
        let _span = obs::span("modelzoo.translate");
        let p = self.spec.profile.p_correct(&self.traits(task))?;

        let decode = obs::span("modelzoo.decode");
        let correct = self.decide_correct(task, p);
        let mut pred_query = task.sample.query.clone();
        let mut style_rng = self.rng(task, "style", true, true);
        if correct {
            // correct intent; possibly restyled surface form (EM ≠ EX)
            let alignment = self.spec.profile.em_alignment(task.sample.hardness);
            if !style_rng.gen_bool(alignment.clamp(0.0, 1.0)) {
                let _ = restyle(&mut pred_query, &mut style_rng);
            }
        } else {
            pred_query =
                corrupt_prediction(&task.sample.query, self.spec.class, task.db, &mut style_rng);
        }
        drop(decode);

        // post-processing + surface-form finalization
        let sql = {
            let _post = obs::span("modelzoo.post_process");
            if self.spec.modules.post == PostProcessing::StaticRepair {
                crate::repair::static_repair(&mut pred_query, task.db);
            }
            sqlkit::to_sql(&pred_query)
        };

        // economy accounting
        let (prompt_tokens, completion_tokens, cost_usd, latency_s) = match &self.spec.serving {
            Serving::Api(pricing) => {
                let (_, acc) = build_prompt(
                    self.spec.name,
                    &self.spec.modules,
                    task.db,
                    task.question(),
                    task.few_shot,
                    sql.len(),
                );
                let cost = pricing.cost(acc.prompt_tokens, acc.completion_tokens);
                // API latency: proportional to tokens moved (~50 tok/s
                // generation + fixed round trips)
                let latency =
                    0.6 + acc.prompt_tokens as f64 / 4000.0 + acc.completion_tokens as f64 / 50.0;
                (acc.prompt_tokens, acc.completion_tokens, cost, latency)
            }
            Serving::Local(serving) => {
                let key = fnv1a(&[
                    task.sample.db_id.as_bytes(),
                    &(task.sample.id as u64).to_le_bytes(),
                ]);
                let latency = serving.sample_latency_s(self.spec.name, key);
                (0, count_tokens(&sql), 0.0, latency)
            }
        };

        Some(Prediction {
            sql,
            query: pred_query,
            prompt_tokens,
            completion_tokens,
            cost_usd,
            latency_s,
        })
    }
}

/// Instantiate the full zoo as ready-to-run models.
pub fn zoo() -> Vec<SimulatedModel> {
    crate::registry::all_methods().into_iter().map(SimulatedModel::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::method_by_name;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};

    fn corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(21))
    }

    fn task<'a>(c: &'a datagen::Corpus, i: usize) -> TranslationTask<'a> {
        let s = &c.dev[i];
        TranslationTask {
            sample: s,
            variant: 0,
            db: c.db(s),
            dataset: DatasetKind::Spider,
            domain_train_dbs: 4,
            avg_domain_train_dbs: 4.2,
            few_shot: None,
        }
    }

    #[test]
    fn translation_is_deterministic() {
        let c = corpus();
        let m = SimulatedModel::new(method_by_name("DAILSQL").unwrap());
        let a = m.translate(&task(&c, 0)).unwrap();
        let b = m.translate(&task(&c, 0)).unwrap();
        assert_eq!(a.sql, b.sql);
        assert_eq!(a.prompt_tokens, b.prompt_tokens);
    }

    #[test]
    fn predictions_always_parse() {
        let c = corpus();
        for m in zoo() {
            for i in 0..10 {
                if let Some(p) = m.translate(&task(&c, i)) {
                    sqlkit::parse_query(&p.sql)
                        .unwrap_or_else(|e| panic!("{}: `{}`: {e}", m.name(), p.sql));
                }
            }
        }
    }

    #[test]
    fn accuracy_tracks_profile_on_aggregate() {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(33));
        let m = SimulatedModel::new(method_by_name("SFT CodeS-7B").unwrap());
        let mut correct = 0;
        let mut total = 0;
        for i in 0..c.dev.len() {
            let t = task(&c, i);
            let p = m.translate(&t).unwrap();
            let gold = c.db(t.sample).database.run_query(&t.sample.query).unwrap();
            total += 1;
            if let Ok(rs) = c.db(t.sample).database.run_query(&p.query) {
                if minidb::results_equivalent(&gold, &rs) {
                    correct += 1;
                }
            }
        }
        let ex = correct as f64 / total as f64 * 100.0;
        // profile overall ≈ 85; allow generous tolerance on 60 samples
        assert!((65.0..=100.0).contains(&ex), "EX {ex}");
    }

    #[test]
    fn dinsql_declines_bird() {
        let c = corpus();
        let m = SimulatedModel::new(method_by_name("DINSQL").unwrap());
        let mut t = task(&c, 0);
        t.dataset = DatasetKind::Bird;
        assert!(m.translate(&t).is_none());
    }

    #[test]
    fn api_methods_report_tokens_and_cost() {
        let c = corpus();
        let m = SimulatedModel::new(method_by_name("DAILSQL").unwrap());
        let p = m.translate(&task(&c, 1)).unwrap();
        assert!(p.prompt_tokens > 0);
        assert!(p.cost_usd > 0.0);
        assert!(p.latency_s > 0.0);
    }

    #[test]
    fn local_methods_report_latency_not_cost() {
        let c = corpus();
        let m = SimulatedModel::new(method_by_name("RESDSQL-3B").unwrap());
        let p = m.translate(&task(&c, 1)).unwrap();
        assert_eq!(p.prompt_tokens, 0);
        assert_eq!(p.cost_usd, 0.0);
        assert!(p.latency_s > 1.0);
    }

    #[test]
    fn variants_usually_agree_for_stable_models() {
        let c = corpus();
        let m = SimulatedModel::new(method_by_name("SFT CodeS-15B").unwrap());
        let mut agree = 0;
        let mut total = 0;
        for i in 0..c.dev.len() {
            let s = &c.dev[i];
            if s.variants.len() < 2 {
                continue;
            }
            let mut t = task(&c, i);
            let p0 = m.translate(&t).unwrap();
            t.variant = 1;
            let p1 = m.translate(&t).unwrap();
            total += 1;
            // correctness agreement, not textual agreement
            let gold = c.db(s).database.run_query(&s.query).unwrap();
            let ok = |p: &Prediction| {
                c.db(s)
                    .database
                    .run_query(&p.query)
                    .map(|rs| minidb::results_equivalent(&gold, &rs))
                    .unwrap_or(false)
            };
            if ok(&p0) == ok(&p1) {
                agree += 1;
            }
        }
        assert!(total >= 5);
        assert!(agree * 10 >= total * 8, "stable model agreement {agree}/{total}");
    }

    #[test]
    fn zoo_instantiates_everything() {
        assert_eq!(zoo().len(), 16);
    }

    #[test]
    fn static_repair_applies_identically_in_both_prediction_paths() {
        let c = corpus();
        let mut spec = method_by_name("SFT CodeS-7B").unwrap();
        spec.modules.post = crate::taxonomy::PostProcessing::StaticRepair;
        let repaired = SimulatedModel::new(spec);
        let baseline = SimulatedModel::new(method_by_name("SFT CodeS-7B").unwrap());
        assert_ne!(baseline.spec.modules.post, crate::taxonomy::PostProcessing::StaticRepair);

        let mut changed = 0;
        for i in 0..c.dev.len() {
            let t = task(&c, i);
            // fast path and full path must produce the same repaired query
            let full = repaired.translate(&t).unwrap();
            let fast = repaired.predict_query_only(&t).unwrap();
            assert_eq!(full.query, fast, "paths diverge on sample {i}");
            assert_eq!(full.sql, sqlkit::to_sql(&fast));
            if baseline.predict_query_only(&t).unwrap() != fast {
                changed += 1;
            }
        }
        // the module must actually fire on some corrupted predictions
        assert!(changed > 0, "static repair never changed a prediction");
    }
}
