//! Economy and efficiency models (paper Tables 5 and 6).
//!
//! Prompt-based methods pay per API token: the June-2024 prices quoted in
//! Exp-6 (GPT-4 input 60× and output 40× the GPT-3.5-turbo price). Local
//! fine-tuned methods instead have per-sample latency and GPU-memory
//! requirements scaling with parameter count (Exp-7). Since no GPU is
//! available in this reproduction, latency/memory come from a parametric
//! hardware model anchored to the published measurements, with
//! deterministic per-sample jitter.

use crate::profiles::{fnv1a, hash_unit};
use serde::{Deserialize, Serialize};

/// API pricing per 1K tokens (USD), June 2024.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApiPricing {
    /// Dollars per 1K prompt tokens.
    pub input_per_1k: f64,
    /// Dollars per 1K completion tokens.
    pub output_per_1k: f64,
}

impl ApiPricing {
    /// GPT-4 pricing (June 2024): $0.03 / $0.06 per 1K tokens.
    pub const GPT4: ApiPricing = ApiPricing { input_per_1k: 0.03, output_per_1k: 0.06 };
    /// GPT-3.5-turbo pricing (June 2024): $0.0005 / $0.0015 per 1K tokens —
    /// 60× / 40× cheaper than GPT-4, as the paper notes.
    pub const GPT35: ApiPricing = ApiPricing { input_per_1k: 0.0005, output_per_1k: 0.0015 };

    /// Cost in dollars for a (prompt, completion) token pair.
    pub fn cost(&self, prompt_tokens: u64, completion_tokens: u64) -> f64 {
        prompt_tokens as f64 / 1000.0 * self.input_per_1k
            + completion_tokens as f64 / 1000.0 * self.output_per_1k
    }
}

/// Hardware model for locally-served models (PLMs and fine-tuned LLMs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalServing {
    /// Mean latency per sample in seconds (Table 6 anchor).
    pub latency_s: f64,
    /// GPU memory in GiB (Table 6 anchor).
    pub gpu_mem_gib: f64,
}

impl LocalServing {
    /// Parametric fit anchored on Table 6: latency grows sub-linearly with
    /// parameters, memory roughly linearly. `params_b` in billions;
    /// `natsql` variants run slightly leaner (shorter outputs).
    pub fn from_params(params_b: f64, natsql: bool) -> Self {
        // Table 6 anchors: 0.22B→(1.10s, 3.87GiB), 0.77B→(1.71, 7.55),
        // 3B→(1.91, 24.66); NatSQL variants ≈ −6% latency / −10% memory.
        let latency = 1.0 + 0.62 * params_b.ln_1p() + 0.12 * params_b.sqrt();
        let memory = 2.3 + 7.4 * params_b;
        let (lf, mf) = if natsql { (0.94, 0.90) } else { (1.0, 1.0) };
        Self { latency_s: latency * lf, gpu_mem_gib: memory * mf }
    }

    /// Deterministic per-sample latency with ±10% jitter.
    pub fn sample_latency_s(&self, method: &str, sample_key: u64) -> f64 {
        let u = hash_unit(fnv1a(&[method.as_bytes(), &sample_key.to_le_bytes()]));
        self.latency_s * (1.0 + 0.10 * u)
    }
}

/// Rough GPT-style token count: ~4 characters per token.
pub fn count_tokens(text: &str) -> u64 {
    (text.chars().count() as u64).div_ceil(4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt4_is_60x_and_40x_gpt35() {
        let r_in = ApiPricing::GPT4.input_per_1k / ApiPricing::GPT35.input_per_1k;
        let r_out = ApiPricing::GPT4.output_per_1k / ApiPricing::GPT35.output_per_1k;
        assert!((r_in - 60.0).abs() < 1e-9);
        assert!((r_out - 40.0).abs() < 1e-9);
    }

    #[test]
    fn cost_formula() {
        let c = ApiPricing::GPT4.cost(1000, 100);
        assert!((c - (0.03 + 0.006)).abs() < 1e-12);
    }

    #[test]
    fn serving_anchors_near_table6() {
        let base = LocalServing::from_params(0.22, false);
        assert!((base.latency_s - 1.10).abs() < 0.15, "{}", base.latency_s);
        assert!((base.gpu_mem_gib - 3.87).abs() < 0.5, "{}", base.gpu_mem_gib);
        let large = LocalServing::from_params(0.77, false);
        assert!((large.latency_s - 1.71).abs() < 0.35, "{}", large.latency_s);
        assert!((large.gpu_mem_gib - 7.55).abs() < 0.8, "{}", large.gpu_mem_gib);
        let b3 = LocalServing::from_params(3.0, false);
        assert!((b3.latency_s - 1.91).abs() < 0.35, "{}", b3.latency_s);
        assert!((b3.gpu_mem_gib - 24.66).abs() < 1.2, "{}", b3.gpu_mem_gib);
    }

    #[test]
    fn latency_and_memory_grow_with_params() {
        let a = LocalServing::from_params(0.22, false);
        let b = LocalServing::from_params(0.77, false);
        let c = LocalServing::from_params(3.0, false);
        assert!(a.latency_s < b.latency_s && b.latency_s < c.latency_s);
        assert!(a.gpu_mem_gib < b.gpu_mem_gib && b.gpu_mem_gib < c.gpu_mem_gib);
    }

    #[test]
    fn natsql_variants_run_leaner() {
        let plain = LocalServing::from_params(3.0, false);
        let nat = LocalServing::from_params(3.0, true);
        assert!(nat.latency_s < plain.latency_s);
        assert!(nat.gpu_mem_gib < plain.gpu_mem_gib);
    }

    #[test]
    fn sample_latency_is_deterministic_and_bounded() {
        let s = LocalServing::from_params(3.0, false);
        let a = s.sample_latency_s("RESDSQL-3B", 7);
        let b = s.sample_latency_s("RESDSQL-3B", 7);
        assert_eq!(a, b);
        assert!(a >= s.latency_s * 0.9 && a <= s.latency_s * 1.1);
    }

    #[test]
    fn token_counting() {
        assert_eq!(count_tokens(""), 1);
        assert_eq!(count_tokens("abcd"), 1);
        assert_eq!(count_tokens("abcde"), 2);
        assert_eq!(count_tokens(&"x".repeat(400)), 100);
    }
}
