//! # modelzoo
//!
//! The simulated NL2SQL method zoo of the NL2SQL360 reproduction: every
//! method from the paper's Table 1 taxonomy, implemented as a modular
//! pipeline (schema linking, DB-content matching, few-shot selection,
//! prompting, post-processing) around a **calibrated stochastic SQL
//! generator**.
//!
//! The neural translation step of the original systems cannot run offline;
//! see `translator` for the precise simulation boundary. Everything else —
//! prompt construction and token accounting, the restyling that separates
//! EX from EM, the error-palette corruption, SFT learning curves, API
//! pricing and serving models — is real, deterministic code.

pub mod catalog;
pub mod corruption;
pub mod economy;
pub mod modules;
pub mod profiles;
pub mod prompt;
pub mod registry;
pub mod repair;
pub mod restyle;
pub mod sft;
pub mod taxonomy;
pub mod translator;

pub use catalog::{table1_rows, TaxonomyRow};
pub use economy::{count_tokens, ApiPricing, LocalServing};
pub use profiles::{CapabilityProfile, DatasetKind, SampleTraits};
pub use registry::{all_methods, leaderboard_timeline, method_by_name, MethodSpec, Serving};
pub use repair::{static_repair, static_repair_with};
pub use taxonomy::{
    Decoding, FewShot, Intermediate, MethodClass, ModuleSet, MultiStep, PostProcessing,
};
pub use translator::{zoo, Nl2SqlModel, Prediction, SimulatedModel, TranslationTask};
