//! Working implementations of the design-space modules (Figure 13).
//!
//! These are not stubs: schema linking really prunes the schema by matching
//! question tokens against table/column names; DB-content matching really
//! scans cell values (the BRIDGE v2 string-matching strategy, used verbatim
//! in the SuperSQL prompt of Figure 15); few-shot selection really ranks
//! training examples by question similarity (the DAIL-SQL strategy). Their
//! outputs feed the prompt builders, so module choices change real token
//! counts; their accuracy contribution enters composed pipelines through
//! [`module_ex_bonus`].

use crate::taxonomy::{Decoding, FewShot, Intermediate, ModuleSet, MultiStep, PostProcessing};
use datagen::{GeneratedDb, Sample};
use minidb::Value;
use std::collections::HashSet;

/// Lower-cased word tokens of a question.
pub fn tokenize_question(q: &str) -> Vec<String> {
    q.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// Schema linking (RESDSQL-style ranking): keep tables whose name or column
/// names overlap the question tokens; always keep at least one table, and
/// keep FK-parents of kept tables so joins stay expressible.
pub fn schema_link<'a>(db: &'a GeneratedDb, question: &str) -> Vec<&'a minidb::TableSchema> {
    let tokens: HashSet<String> = tokenize_question(question).into_iter().collect();
    let name_matches = |name: &str| {
        let parts = name.to_lowercase();
        parts
            .split('_')
            .any(|p| tokens.contains(p) || tokens.contains(&format!("{p}s")) || p.len() > 3 && tokens.iter().any(|t| t.starts_with(p)))
    };
    let mut kept: Vec<&minidb::TableSchema> = Vec::new();
    for t in db.database.tables() {
        let schema = &t.schema;
        let hit = name_matches(&schema.name)
            || schema.columns.iter().any(|c| name_matches(&c.name));
        if hit {
            kept.push(schema);
        }
    }
    if kept.is_empty() {
        if let Some(t) = db.database.tables().next() {
            kept.push(&t.schema);
        }
    }
    // close over FK parents
    loop {
        let names: HashSet<&str> = kept.iter().map(|s| s.name.as_str()).collect();
        let mut added = false;
        let mut to_add: Vec<&minidb::TableSchema> = Vec::new();
        for s in &kept {
            for fk in &s.foreign_keys {
                if !names.contains(fk.ref_table.as_str()) {
                    if let Ok(parent) = db.database.table(&fk.ref_table) {
                        to_add.push(&parent.schema);
                        added = true;
                    }
                }
            }
        }
        kept.extend(to_add);
        kept.sort_by(|a, b| a.name.cmp(&b.name));
        kept.dedup_by(|a, b| a.name == b.name);
        if !added {
            break;
        }
    }
    kept
}

/// A matched (table, column, value) triple from DB-content matching.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentMatch {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The matched cell value.
    pub value: String,
}

/// DB-content matching (BRIDGE v2 style): find cell values whose text occurs
/// in the question; the matches annotate columns in the prompt.
pub fn match_db_content(db: &GeneratedDb, question: &str, limit: usize) -> Vec<ContentMatch> {
    let q_lower = question.to_lowercase();
    let mut out = Vec::new();
    for t in db.database.tables() {
        for (ci, col) in t.schema.columns.iter().enumerate() {
            if out.len() >= limit {
                return out;
            }
            // text columns only; scan distinct values
            let column = t.column(ci);
            let mut seen: HashSet<String> = HashSet::new();
            for r in 0..t.n_rows() {
                if let Value::Text(s) = column.get(r) {
                    if s.len() >= 3 && seen.insert(s.clone()) && q_lower.contains(&s.to_lowercase()) {
                        out.push(ContentMatch {
                            table: t.schema.name.clone(),
                            column: col.name.clone(),
                            value: s.clone(),
                        });
                        if out.len() >= limit {
                            return out;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Jaccard similarity between token sets of two questions (the core of
/// DAIL-SQL's masked-question similarity selection).
pub fn question_similarity(a: &str, b: &str) -> f64 {
    let ta: HashSet<String> = tokenize_question(a).into_iter().collect();
    let tb: HashSet<String> = tokenize_question(b).into_iter().collect();
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let inter = ta.intersection(&tb).count() as f64;
    let union = ta.union(&tb).count() as f64;
    inter / union
}

/// Few-shot selection (DAIL-SQL style): the `k` training samples most
/// similar to the question.
pub fn select_few_shot<'a>(train: &'a [Sample], question: &str, k: usize) -> Vec<&'a Sample> {
    let mut scored: Vec<(f64, &Sample)> = train
        .iter()
        .map(|s| (question_similarity(question, s.question()), s))
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(_, s)| s).collect()
}

/// A pre-tokenized few-shot retrieval index over a training pool.
///
/// Selecting examples for every dev question would otherwise re-tokenize
/// the full training set per query; the index tokenizes once and reuses the
/// token sets across all methods and samples.
pub struct FewShotIndex<'a> {
    samples: &'a [Sample],
    tokens: Vec<HashSet<String>>,
}

impl<'a> FewShotIndex<'a> {
    /// Build the index (tokenizes every training question once).
    pub fn new(samples: &'a [Sample]) -> Self {
        let tokens = samples
            .iter()
            .map(|s| tokenize_question(s.question()).into_iter().collect())
            .collect();
        Self { samples, tokens }
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `k` most similar training samples to `question`.
    pub fn select(&self, question: &str, k: usize) -> Vec<&'a Sample> {
        let q: HashSet<String> = tokenize_question(question).into_iter().collect();
        let mut scored: Vec<(f64, usize)> = self
            .tokens
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let inter = q.intersection(t).count() as f64;
                let union = (q.len() + t.len()) as f64 - inter;
                let sim = if union > 0.0 { inter / union } else { 0.0 };
                (sim, i)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal).then(a.1.cmp(&b.1))
        });
        scored.into_iter().take(k).map(|(_, i)| &self.samples[i]).collect()
    }
}

/// Accuracy contribution (EX percentage points on Spider-style data) of a
/// module configuration on top of a bare backbone. Drives composed
/// pipelines and the AAS search; the constants reflect the ablation
/// patterns the paper reports (schema linking and few-shot examples help
/// most; NatSQL helps JOIN-heavy data; decomposition helps nesting but
/// costs tokens).
pub fn module_ex_bonus(m: &ModuleSet) -> f64 {
    // several modules only pay off next to a decoder that produces multiple
    // constrained candidates (the PLM setup); API backbones decode greedily
    let constrained = matches!(m.decoding, Decoding::Beam | Decoding::Picard);
    let mut bonus = 0.0;
    if m.schema_linking {
        bonus += 2.4;
    }
    if m.db_content {
        bonus += 1.5;
    }
    bonus += match m.few_shot {
        FewShot::ZeroShot => 0.0,
        FewShot::Manual => 1.0,
        FewShot::SimilarityBased => 2.1,
    };
    bonus += match m.multi_step {
        MultiStep::None => 0.0,
        // skeleton-first generation needs a constrained decoder to fill the
        // skeleton reliably
        MultiStep::SkeletonParsing => {
            if constrained {
                0.6
            } else {
                0.0
            }
        }
        // staged decomposition propagates errors on flat queries; it earns
        // its keep only on nested SQL (see `module_subquery_bonus`)
        MultiStep::Decomposition => -0.6,
    };
    bonus += match m.intermediate {
        Intermediate::None => 0.0,
        // NatSQL is lossy without grammar-constrained decoding back to SQL;
        // its JOIN advantage lives in `module_join_bonus`
        Intermediate::NatSql => {
            if constrained {
                0.8
            } else {
                -0.5
            }
        }
    };
    bonus += match m.decoding {
        Decoding::Greedy => 0.0,
        Decoding::Beam => 0.4,
        Decoding::Picard => 0.9,
    };
    bonus += match m.post {
        PostProcessing::None => 0.0,
        PostProcessing::SelfCorrection => 0.3,
        PostProcessing::SelfConsistency => 0.9,
        // candidate selection needs candidates: with greedy decoding there
        // is only one output to select or rerank
        PostProcessing::ExecutionGuided => {
            if constrained {
                1.0
            } else {
                0.1
            }
        }
        PostProcessing::Reranker => {
            if constrained {
                0.7
            } else {
                0.1
            }
        }
        // identifier repair works on the single decoded output, so it pays
        // off regardless of the decoder — but only recovers schema-binding
        // mistakes, a slice of all errors
        PostProcessing::StaticRepair => 0.5,
    };
    // decomposition stages and similarity-selected exemplars fight for the
    // same prompt structure
    if m.multi_step == MultiStep::Decomposition && m.few_shot == FewShot::SimilarityBased {
        bonus -= 0.8;
    }
    bonus
}

/// Subquery-specific extra points of a configuration (decomposition shines
/// on nested SQL — paper Finding 2's mechanism).
pub fn module_subquery_bonus(m: &ModuleSet) -> f64 {
    let mut b = 0.0;
    if m.multi_step == MultiStep::Decomposition {
        b += 2.0;
    }
    b
}

/// JOIN-specific extra points (NatSQL omits JOIN keywords — Finding 4).
pub fn module_join_bonus(m: &ModuleSet) -> f64 {
    let mut b = 0.0;
    if m.intermediate == Intermediate::NatSql {
        b += 2.0;
    }
    if m.schema_linking {
        b += 0.5;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};

    fn corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(5))
    }

    #[test]
    fn schema_linking_prunes_but_keeps_relevant() {
        let c = corpus();
        let s = &c.dev[0];
        let db = c.db(s);
        let kept = schema_link(db, s.question());
        assert!(!kept.is_empty());
        assert!(kept.len() <= db.database.table_count());
        // the tables referenced by the gold SQL should survive pruning
        let mut referenced: Vec<String> = Vec::new();
        if let Some(from) = &s.query.body.from {
            for t in from.tables() {
                if let sqlkit::ast::TableRef::Named { name, .. } = t {
                    referenced.push(name.to_lowercase());
                }
            }
        }
        let kept_names: Vec<String> = kept.iter().map(|k| k.name.to_lowercase()).collect();
        for r in &referenced {
            assert!(
                kept_names.contains(r),
                "gold table {r} pruned away for question {:?}; kept {kept_names:?}",
                s.question()
            );
        }
    }

    #[test]
    fn schema_linking_closes_over_fk_parents() {
        let c = corpus();
        for s in c.dev.iter().take(10) {
            let kept = schema_link(c.db(s), s.question());
            let names: HashSet<&str> = kept.iter().map(|k| k.name.as_str()).collect();
            for k in &kept {
                for fk in &k.foreign_keys {
                    assert!(names.contains(fk.ref_table.as_str()), "unclosed FK parent");
                }
            }
        }
    }

    #[test]
    fn content_match_finds_quoted_values() {
        let c = corpus();
        // find a dev sample whose question embeds a text value
        let hit = c.dev.iter().find_map(|s| {
            let matches = match_db_content(c.db(s), s.question(), 8);
            (!matches.is_empty()).then_some((s, matches))
        });
        let (s, matches) = hit.expect("some question should mention a cell value");
        for m in &matches {
            assert!(s.question().to_lowercase().contains(&m.value.to_lowercase()));
        }
    }

    #[test]
    fn content_match_respects_limit() {
        let c = corpus();
        let s = &c.dev[0];
        assert!(match_db_content(c.db(s), s.question(), 2).len() <= 2);
    }

    #[test]
    fn similarity_is_sane() {
        assert!(question_similarity("what is the name", "what is the name") > 0.99);
        assert_eq!(question_similarity("alpha beta", "gamma delta"), 0.0);
        let mid = question_similarity("what is the age of singers", "what is the name of singers");
        assert!(mid > 0.3 && mid < 1.0);
    }

    #[test]
    fn few_shot_returns_most_similar_first() {
        let c = corpus();
        let q = c.dev[0].question();
        let shots = select_few_shot(&c.train, q, 5);
        assert_eq!(shots.len(), 5);
        let s0 = question_similarity(q, shots[0].question());
        let s4 = question_similarity(q, shots[4].question());
        assert!(s0 >= s4);
    }

    #[test]
    fn module_bonus_monotone_in_modules() {
        let bare = module_ex_bonus(&ModuleSet::bare());
        let full = module_ex_bonus(&ModuleSet::supersql());
        assert_eq!(bare, 0.0);
        assert!(full > 5.0, "supersql bonus {full}");
    }

    #[test]
    fn natsql_helps_joins() {
        let mut m = ModuleSet::bare();
        assert_eq!(module_join_bonus(&m), 0.0);
        m.intermediate = Intermediate::NatSql;
        assert!(module_join_bonus(&m) > 0.0);
    }
}
