//! Capability profiles — the calibrated stochastic core of the simulated
//! model zoo.
//!
//! A [`CapabilityProfile`] stores per-hardness Execution Accuracy targets
//! (taken from the paper's Tables 3/4), per-feature deltas reproducing the
//! method-class contrasts of Figures 5–7 (GPT-4 methods better on
//! subqueries, PLMs better on Spider's ORDER BY, ...), domain-adaptation
//! sensitivity (Figure 9), NL-variant instability (Figure 8 / QVT), and the
//! EM style-alignment implied by the EM/EX ratios of Table 3.
//!
//! The deltas are *centered*: each feature delta is applied as
//! `delta * (indicator - subset_fraction)` so subset contrasts appear
//! without drifting the overall accuracy away from the calibrated targets.

use datagen::Perturbation;
use serde::{Deserialize, Serialize};
use sqlkit::hardness::{BirdDifficulty, Hardness};
use sqlkit::SqlFeatures;

/// Which benchmark a task comes from (affects profile lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Spider-like corpus.
    Spider,
    /// BIRD-like corpus.
    Bird,
}

/// Per-bucket fractions of dev samples exhibiting each feature
/// `[subquery, join, logical connector, order by]`, measured on the
/// generated corpora (see `crates/bench/src/bin/fractions.rs`). The
/// feature deltas are centered *within* each complexity bucket so that
/// per-bucket accuracies stay on the calibrated targets while
/// characteristic subsets show the method-class contrasts.
const SPIDER_FRACS: [[f64; 4]; 4] = [
    [0.00, 0.00, 0.00, 0.00], // Easy
    [0.00, 0.52, 0.04, 0.18], // Medium
    [0.61, 0.07, 0.00, 0.32], // Hard
    [0.39, 0.54, 0.32, 0.74], // Extra
];
const BIRD_FRACS: [[f64; 4]; 3] = [
    [0.00, 0.35, 0.05, 0.11], // Simple
    [0.61, 0.22, 0.11, 0.45], // Moderate
    [0.11, 0.00, 0.11, 0.11], // Challenging
];

/// Calibrated behavioural profile of one simulated method.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapabilityProfile {
    /// Spider EX targets per hardness (Easy/Medium/Hard/Extra), percent.
    pub spider_ex: [f64; 4],
    /// Spider EM targets per hardness, percent (drives style alignment).
    pub spider_em: [f64; 4],
    /// BIRD EX targets per difficulty (Simple/Moderate/Challenging),
    /// percent; `None` when the paper did not run the method on BIRD.
    pub bird_ex: Option<[f64; 3]>,
    /// Extra EX points on samples containing subqueries (centered).
    pub subquery_delta: f64,
    /// Extra EX points on samples containing JOINs (centered).
    pub join_delta: f64,
    /// Extra EX points on samples with logical connectors (centered).
    pub logical_delta: f64,
    /// Extra EX points on ORDER BY samples, Spider (centered).
    pub orderby_delta_spider: f64,
    /// Extra EX points on ORDER BY samples, BIRD (centered).
    pub orderby_delta_bird: f64,
    /// Probability that one NL variant flips the canonical outcome
    /// (lower = more stable under paraphrase = higher QVT).
    pub variant_instability: f64,
    /// Domain adaptation: EX points gained per unit of (in-domain train DBs
    /// above average)/10. Zero for prompt-based methods.
    pub domain_sensitivity: f64,
    /// Scale of the per-(method, domain) idiosyncratic bias (points).
    pub domain_bias_scale: f64,
    /// EX points lost on Dr.Spider-style perturbed samples
    /// `[NL paraphrase, schema synonyms, DB content]`.
    pub perturb_penalty: [f64; 3],
}

/// Per-sample facts the profile converts into a correctness probability.
#[derive(Debug, Clone, Copy)]
pub struct SampleTraits<'a> {
    /// Which benchmark.
    pub dataset: DatasetKind,
    /// Spider hardness bucket.
    pub hardness: Hardness,
    /// BIRD difficulty bucket.
    pub bird_difficulty: BirdDifficulty,
    /// Extracted SQL features of the gold query.
    pub features: &'a SqlFeatures,
    /// Number of training databases in this sample's domain.
    pub domain_train_dbs: usize,
    /// Average training databases per domain in the corpus.
    pub avg_domain_train_dbs: f64,
    /// Deterministic per-(method, domain) hash in [-1, 1] for idiosyncratic
    /// domain bias.
    pub domain_bias_unit: f64,
    /// Robustness perturbation applied to the sample, if any.
    pub perturbation: Option<Perturbation>,
}

impl CapabilityProfile {
    /// Base EX target (percent) for a sample before feature adjustment.
    pub fn base_ex(&self, dataset: DatasetKind, h: Hardness, bd: BirdDifficulty) -> Option<f64> {
        match dataset {
            DatasetKind::Spider => Some(self.spider_ex[h as usize]),
            DatasetKind::Bird => self.bird_ex.map(|b| b[bd as usize]),
        }
    }

    /// Probability (0..1) that the method produces a semantically correct
    /// SQL for this sample. `None` when the method does not run on this
    /// dataset (e.g. DIN-SQL on BIRD).
    pub fn p_correct(&self, t: &SampleTraits<'_>) -> Option<f64> {
        let mut pct = self.base_ex(t.dataset, t.hardness, t.bird_difficulty)?;

        let fracs = match t.dataset {
            DatasetKind::Spider => SPIDER_FRACS[t.hardness as usize],
            DatasetKind::Bird => BIRD_FRACS[t.bird_difficulty as usize],
        };
        let centered = |on: bool, frac: f64| (if on { 1.0 } else { 0.0 }) - frac;
        pct += self.subquery_delta * centered(t.features.has_subquery(), fracs[0]);
        pct += self.join_delta * centered(t.features.has_join(), fracs[1]);
        pct += self.logical_delta * centered(t.features.has_logical_connector(), fracs[2]);
        let orderby_delta = match t.dataset {
            DatasetKind::Spider => self.orderby_delta_spider,
            DatasetKind::Bird => self.orderby_delta_bird,
        };
        pct += orderby_delta * centered(t.features.has_order_by(), fracs[3]);

        // domain adaptation: fine-tuned methods benefit from in-domain
        // training databases (paper Figure 9(b))
        let excess = (t.domain_train_dbs as f64 - t.avg_domain_train_dbs) / 10.0;
        pct += self.domain_sensitivity * excess.clamp(-0.6, 1.2) * 10.0;
        // idiosyncratic per-domain bias (Finding 7: "varying biases")
        pct += self.domain_bias_scale * t.domain_bias_unit;

        // Dr.Spider-style robustness drop on perturbed samples
        if let Some(perturbation) = t.perturbation {
            let idx = match perturbation {
                Perturbation::NlParaphrase => 0,
                Perturbation::SchemaSynonym => 1,
                Perturbation::DbContentReplace => 2,
            };
            pct -= self.perturb_penalty[idx];
        }

        Some((pct / 100.0).clamp(0.02, 0.99))
    }

    /// Probability that a *correct* output also matches the gold SQL's
    /// surface form (→ EM). Derived from the EM/EX ratio at this hardness.
    pub fn em_alignment(&self, h: Hardness) -> f64 {
        let i = h as usize;
        if self.spider_ex[i] <= 0.0 {
            return 0.0;
        }
        (self.spider_em[i] / self.spider_ex[i]).clamp(0.0, 1.0)
    }
}

/// Deterministic FNV-1a hash for seeding per-sample RNGs.
pub fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        // separator to avoid concatenation collisions
        h ^= 0x1f;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Map a hash to a unit value in [-1, 1].
pub fn hash_unit(h: u64) -> f64 {
    (h % 10_000) as f64 / 5_000.0 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CapabilityProfile {
        CapabilityProfile {
            spider_ex: [92.0, 85.0, 77.0, 62.0],
            spider_em: [80.0, 43.0, 35.0, 18.0],
            bird_ex: Some([58.0, 38.0, 31.0]),
            subquery_delta: 4.0,
            join_delta: 1.5,
            logical_delta: 2.0,
            orderby_delta_spider: -2.0,
            orderby_delta_bird: 2.0,
            variant_instability: 0.12,
            domain_sensitivity: 0.0,
            domain_bias_scale: 2.0,
            perturb_penalty: [7.0, 10.0, 4.0],
        }
    }

    fn traits(features: &SqlFeatures) -> SampleTraits<'_> {
        SampleTraits {
            dataset: DatasetKind::Spider,
            hardness: Hardness::Medium,
            bird_difficulty: BirdDifficulty::Simple,
            features,
            domain_train_dbs: 4,
            avg_domain_train_dbs: 4.2,
            domain_bias_unit: 0.0,
            perturbation: None,
        }
    }

    #[test]
    fn base_probability_tracks_hardness() {
        let p = profile();
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        t.hardness = Hardness::Easy;
        let easy = p.p_correct(&t).unwrap();
        t.hardness = Hardness::Extra;
        let extra = p.p_correct(&t).unwrap();
        assert!(easy > extra);
    }

    #[test]
    fn subquery_delta_shifts_probability() {
        let p = profile();
        let plain = SqlFeatures::default();
        let withsub = SqlFeatures { subquery_count: 1, ..SqlFeatures::default() };
        let p_plain = p.p_correct(&traits(&plain)).unwrap();
        let p_sub = p.p_correct(&traits(&withsub)).unwrap();
        assert!(p_sub > p_plain, "positive subquery delta should help");
        // delta magnitude ≈ 4 points
        assert!((p_sub - p_plain - 0.04).abs() < 1e-9);
    }

    #[test]
    fn bird_lookup_uses_difficulty() {
        let p = profile();
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        t.dataset = DatasetKind::Bird;
        t.bird_difficulty = BirdDifficulty::Challenging;
        let hard = p.p_correct(&t).unwrap();
        t.bird_difficulty = BirdDifficulty::Simple;
        let simple = p.p_correct(&t).unwrap();
        assert!(simple > hard);
    }

    #[test]
    fn missing_bird_profile_returns_none() {
        let mut p = profile();
        p.bird_ex = None;
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        t.dataset = DatasetKind::Bird;
        assert!(p.p_correct(&t).is_none());
    }

    #[test]
    fn domain_sensitivity_rewards_in_domain_data() {
        let mut p = profile();
        p.domain_sensitivity = 0.6;
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        t.domain_train_dbs = 14;
        let rich = p.p_correct(&t).unwrap();
        t.domain_train_dbs = 1;
        let poor = p.p_correct(&t).unwrap();
        assert!(rich > poor + 0.03);
    }

    #[test]
    fn em_alignment_is_em_over_ex() {
        let p = profile();
        let a = p.em_alignment(Hardness::Easy);
        assert!((a - 80.0 / 92.0).abs() < 1e-9);
        assert!(p.em_alignment(Hardness::Extra) < a);
    }

    #[test]
    fn probability_clamped() {
        let mut p = profile();
        p.spider_ex = [120.0, 85.0, 77.0, -5.0];
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        t.hardness = Hardness::Easy;
        assert!(p.p_correct(&t).unwrap() <= 0.99);
        t.hardness = Hardness::Extra;
        assert!(p.p_correct(&t).unwrap() >= 0.02);
    }

    #[test]
    fn perturbation_penalty_lowers_probability() {
        let p = profile();
        let f = SqlFeatures::default();
        let mut t = traits(&f);
        let clean = p.p_correct(&t).unwrap();
        t.perturbation = Some(Perturbation::SchemaSynonym);
        let perturbed = p.p_correct(&t).unwrap();
        assert!((clean - perturbed - 0.10).abs() < 1e-9, "{clean} vs {perturbed}");
    }

    #[test]
    fn fnv_is_deterministic_and_separates() {
        let a = fnv1a(&[b"method", b"db", b"1"]);
        let b = fnv1a(&[b"method", b"db", b"1"]);
        let c = fnv1a(&[b"method", b"db1", b""]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let u = hash_unit(a);
        assert!((-1.0..=1.0).contains(&u));
    }
}
