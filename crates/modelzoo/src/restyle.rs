//! Semantics-preserving restyling of correct predictions.
//!
//! Real NL2SQL systems frequently emit SQL that executes to the right
//! answer but is written differently from the gold query — which is exactly
//! why Execution Accuracy and Exact Match diverge in the paper's Table 3
//! (C3SQL: 82.0 EX vs 46.9 EM). This module implements a palette of edits
//! that are guaranteed to preserve execution semantics on our engine while
//! breaking the component-level exact match:
//!
//! * qualifying bare column references with their table name,
//! * flipping comparison operand order (`x > 1` → `1 < x`),
//! * expanding `BETWEEN lo AND hi` into `>= lo AND <= hi`,
//! * replacing `COUNT(*)` with `COUNT(id)` (the PK is never NULL).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use sqlkit::ast::*;

/// The available restyle edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestyleKind {
    /// Qualify unqualified columns with the (single) FROM table name.
    QualifyColumns,
    /// Mirror a comparison: `a < b` becomes `b > a`.
    FlipComparison,
    /// Expand BETWEEN into two comparisons.
    ExpandBetween,
    /// `COUNT(*)` → `COUNT(id)`.
    CountStarToPk,
}

impl RestyleKind {
    /// All restyle kinds.
    pub const ALL: [RestyleKind; 4] = [
        RestyleKind::QualifyColumns,
        RestyleKind::FlipComparison,
        RestyleKind::ExpandBetween,
        RestyleKind::CountStarToPk,
    ];
}

/// Apply one applicable restyle edit chosen from the palette; returns the
/// kind applied, or `None` when nothing applied.
pub fn restyle(query: &mut Query, rng: &mut StdRng) -> Option<RestyleKind> {
    let mut order = RestyleKind::ALL.to_vec();
    order.shuffle(rng);
    for kind in order {
        let applied = match kind {
            RestyleKind::QualifyColumns => qualify_columns(query),
            RestyleKind::FlipComparison => flip_comparison(query),
            RestyleKind::ExpandBetween => expand_between(query),
            RestyleKind::CountStarToPk => count_star_to_pk(query, rng),
        };
        if applied {
            return Some(kind);
        }
    }
    None
}

/// Qualify bare columns when the outer core reads from exactly one named
/// table with no joins (only then is qualification unambiguous and safe).
fn qualify_columns(query: &mut Query) -> bool {
    let table = match &query.body.from {
        Some(f) if f.joins.is_empty() => match &f.base {
            TableRef::Named { name, alias: None } => name.clone(),
            _ => return false,
        },
        _ => return false,
    };
    // ORDER BY keys that reference select aliases must stay bare — a
    // qualifier would turn them into unknown columns.
    let aliases: Vec<String> = query
        .body
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Expr { alias: Some(a), .. } => Some(a.to_lowercase()),
            _ => None,
        })
        .collect();
    let orders_by_alias = query.order_by.iter().any(|k| {
        matches!(&k.expr, Expr::Column { table: None, column } if aliases.contains(&column.to_lowercase()))
    });
    if orders_by_alias {
        return false;
    }
    let mut changed = false;
    let mut qualify = |e: &mut Expr| {
        visit_exprs_mut(e, &mut |x| {
            if let Expr::Column { table: t @ None, .. } = x {
                *t = Some(table.clone());
                changed = true;
            }
        });
    };
    let core = &mut query.body;
    for item in &mut core.items {
        if let SelectItem::Expr { expr, .. } = item {
            qualify(expr);
        }
    }
    if let Some(w) = &mut core.where_clause {
        qualify(w);
    }
    for g in &mut core.group_by {
        qualify(g);
    }
    if let Some(h) = &mut core.having {
        qualify(h);
    }
    for k in &mut query.order_by {
        qualify(&mut k.expr);
    }
    changed
}

/// Visit an expression tree mutably (without entering subqueries — their
/// scopes differ, so qualification must not leak into them).
fn visit_exprs_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    f(e);
    match e {
        Expr::Agg { arg, .. } => visit_exprs_mut(arg, f),
        Expr::Func { args, .. } => args.iter_mut().for_each(|a| visit_exprs_mut(a, f)),
        Expr::Binary { left, right, .. } => {
            visit_exprs_mut(left, f);
            visit_exprs_mut(right, f);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            visit_exprs_mut(expr, f)
        }
        Expr::Between { expr, low, high, .. } => {
            visit_exprs_mut(expr, f);
            visit_exprs_mut(low, f);
            visit_exprs_mut(high, f);
        }
        Expr::InList { expr, list, .. } => {
            visit_exprs_mut(expr, f);
            list.iter_mut().for_each(|x| visit_exprs_mut(x, f));
        }
        Expr::InSubquery { expr, .. } => visit_exprs_mut(expr, f),
        Expr::Like { expr, pattern, .. } => {
            visit_exprs_mut(expr, f);
            visit_exprs_mut(pattern, f);
        }
        Expr::Case { operand, branches, else_expr } => {
            if let Some(op) = operand {
                visit_exprs_mut(op, f);
            }
            for (w, t) in branches {
                visit_exprs_mut(w, f);
                visit_exprs_mut(t, f);
            }
            if let Some(el) = else_expr {
                visit_exprs_mut(el, f);
            }
        }
        Expr::Literal(_)
        | Expr::Column { .. }
        | Expr::AggWildcard(_)
        | Expr::Exists { .. }
        | Expr::Subquery(_) => {}
    }
}

fn mirror(op: BinOp) -> Option<BinOp> {
    match op {
        BinOp::Lt => Some(BinOp::Gt),
        BinOp::Gt => Some(BinOp::Lt),
        BinOp::LtEq => Some(BinOp::GtEq),
        BinOp::GtEq => Some(BinOp::LtEq),
        BinOp::Eq => Some(BinOp::Eq),
        _ => None,
    }
}

/// Flip the first comparison found in the WHERE clause.
fn flip_comparison(query: &mut Query) -> bool {
    let Some(w) = &mut query.body.where_clause else {
        return false;
    };
    let mut flipped = false;
    visit_exprs_mut(w, &mut |e| {
        if flipped {
            return;
        }
        if let Expr::Binary { op, left, right } = e {
            // don't flip trivially-symmetric literal = literal, and skip
            // subquery comparands (scalar subqueries commute fine but keep
            // the edit simple and obviously safe)
            if let Some(m) = mirror(*op) {
                if !matches!(**left, Expr::Subquery(_)) && !matches!(**right, Expr::Subquery(_))
                {
                    std::mem::swap(left, right);
                    *op = m;
                    flipped = true;
                }
            }
        }
    });
    flipped
}

/// Expand the first BETWEEN in the WHERE clause into two comparisons.
fn expand_between(query: &mut Query) -> bool {
    let Some(w) = &mut query.body.where_clause else {
        return false;
    };
    let mut expanded = false;
    visit_exprs_mut(w, &mut |e| {
        if expanded {
            return;
        }
        if let Expr::Between { expr, negated: false, low, high } = e {
            let ge = Expr::binary(BinOp::GtEq, (**expr).clone(), (**low).clone());
            let le = Expr::binary(BinOp::LtEq, (**expr).clone(), (**high).clone());
            *e = Expr::binary(BinOp::And, ge, le);
            expanded = true;
        }
    });
    expanded
}

/// Replace `COUNT(*)` in the projection with `COUNT(id)` — identical result
/// because generated primary keys are never NULL. Only safe when the core
/// reads from a single table whose PK column is named `id`.
fn count_star_to_pk(query: &mut Query, _rng: &mut StdRng) -> bool {
    let ok = match &query.body.from {
        Some(f) if f.joins.is_empty() => matches!(&f.base, TableRef::Named { .. }),
        _ => false,
    };
    if !ok {
        return false;
    }
    let mut changed = false;
    for item in &mut query.body.items {
        if let SelectItem::Expr { expr, .. } = item {
            if matches!(expr, Expr::AggWildcard(AggFunc::Count)) && !changed {
                *expr = Expr::Agg {
                    func: AggFunc::Count,
                    distinct: false,
                    arg: Box::new(Expr::col("id")),
                };
                changed = true;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sqlkit::{exact_match, parse_query, to_sql};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn qualify_breaks_em() {
        let gold = parse_query("SELECT name FROM singer WHERE age > 20").unwrap();
        let mut pred = gold.clone();
        assert!(qualify_columns(&mut pred));
        assert_eq!(to_sql(&pred), "SELECT singer.name FROM singer WHERE singer.age > 20");
        assert!(!exact_match(&gold, &pred), "qualification must break EM");
    }

    #[test]
    fn qualify_skips_joins_and_subquery_scopes() {
        let mut q =
            parse_query("SELECT a FROM t JOIN u ON t.id = u.tid WHERE b > 1").unwrap();
        assert!(!qualify_columns(&mut q), "joins make qualification ambiguous");
        let mut q2 =
            parse_query("SELECT a FROM t WHERE b IN (SELECT c FROM u)").unwrap();
        assert!(qualify_columns(&mut q2));
        let s = to_sql(&q2);
        assert!(s.contains("t.a") && s.contains("t.b"), "{s}");
        assert!(s.contains("SELECT c FROM u"), "subquery scope untouched: {s}");
    }

    #[test]
    fn flip_comparison_mirrors() {
        let mut q = parse_query("SELECT a FROM t WHERE x > 5").unwrap();
        assert!(flip_comparison(&mut q));
        assert_eq!(to_sql(&q), "SELECT a FROM t WHERE 5 < x");
    }

    #[test]
    fn expand_between_rewrites() {
        let mut q = parse_query("SELECT a FROM t WHERE x BETWEEN 1 AND 9").unwrap();
        assert!(expand_between(&mut q));
        assert_eq!(to_sql(&q), "SELECT a FROM t WHERE x >= 1 AND x <= 9");
    }

    #[test]
    fn count_star_rewrite() {
        let mut q = parse_query("SELECT COUNT(*) FROM singer").unwrap();
        assert!(count_star_to_pk(&mut q, &mut rng()));
        assert_eq!(to_sql(&q), "SELECT COUNT(id) FROM singer");
    }

    #[test]
    fn restyle_preserves_execution_semantics() {
        use minidb::{Database, TableBuilder, Value};
        let mut db = Database::new("d");
        db.add_table(
            TableBuilder::new("singer")
                .column_int("id")
                .column_text("name")
                .column_int("age")
                .primary_key(&["id"])
                .rows((0..20).map(|i| {
                    vec![Value::Int(i + 1), Value::text(format!("s{i}")), Value::Int(18 + i)]
                }))
                .build(),
        )
        .unwrap();
        let sqls = [
            "SELECT name FROM singer WHERE age > 25",
            "SELECT COUNT(*) FROM singer",
            "SELECT name FROM singer WHERE age BETWEEN 20 AND 30",
            "SELECT name, age FROM singer WHERE age < 22 ORDER BY age",
        ];
        for sql in sqls {
            for seed in 0..20u64 {
                let gold = parse_query(sql).unwrap();
                let mut pred = gold.clone();
                let mut r = StdRng::seed_from_u64(seed);
                if restyle(&mut pred, &mut r).is_none() {
                    continue;
                }
                let g = db.run_query(&gold).unwrap();
                let p = db.run_query(&pred).unwrap();
                assert!(
                    minidb::results_equivalent(&g, &p),
                    "restyle changed semantics: `{sql}` -> `{}`",
                    to_sql(&pred)
                );
            }
        }
    }

    #[test]
    fn restyle_usually_breaks_em() {
        let gold = parse_query("SELECT COUNT(*) FROM singer WHERE age > 20").unwrap();
        let mut broke = 0;
        for seed in 0..20u64 {
            let mut pred = gold.clone();
            let mut r = StdRng::seed_from_u64(seed);
            if restyle(&mut pred, &mut r).is_some() && !exact_match(&gold, &pred) {
                broke += 1;
            }
        }
        assert!(broke > 10, "restyles should typically break EM ({broke}/20)");
    }
}
