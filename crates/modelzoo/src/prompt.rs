//! Prompt construction and token accounting for prompt-based methods.
//!
//! Each method style assembles a real prompt string — schema serialization
//! (Figure 10's SQL-style prompt), optional few-shot examples, optional
//! DB-content comments (Figure 15), and per-method instruction blocks — and
//! the token model of Exp-6 (Table 5) is computed from those strings plus
//! the number of API calls the method makes (DIN-SQL's four-stage
//! decomposition, C3's and DAIL-SC's self-consistency sampling).

use crate::economy::count_tokens;
use crate::modules::{match_db_content, schema_link, FewShotIndex};
use crate::taxonomy::{FewShot, ModuleSet, MultiStep, PostProcessing};
use datagen::{GeneratedDb, Sample};
use std::fmt::Write;

/// Token accounting for one NL2SQL task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromptAccounting {
    /// Total prompt tokens across all API calls for the task.
    pub prompt_tokens: u64,
    /// Total completion tokens across all API calls.
    pub completion_tokens: u64,
}

impl PromptAccounting {
    /// Combined token count (the paper's "Avg. Tokens / Query").
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Serialize CREATE TABLE statements for the given schemas, optionally
/// annotated with matched DB content as column comments (BRIDGE v2 /
/// Figure 15 style).
pub fn schema_prompt(
    db: &GeneratedDb,
    schemas: &[&minidb::TableSchema],
    content: &[crate::modules::ContentMatch],
) -> String {
    let _ = db;
    let mut out = String::from("/* Given the following database schema: */\n");
    for s in schemas {
        let mut sql = s.create_table_sql();
        // append content annotations as comments after matching column lines
        for m in content.iter().filter(|m| m.table == s.name) {
            let needle = format!("  {} ", m.column);
            if let Some(pos) = sql.find(&needle) {
                if let Some(eol) = sql[pos..].find('\n') {
                    sql.insert_str(pos + eol, &format!(" -- value examples: '{}'", m.value));
                }
            }
        }
        out.push_str(&sql);
        out.push_str("\n\n");
    }
    out
}

/// Render few-shot examples in DAIL-SQL's question/SQL format.
pub fn few_shot_block(shots: &[&Sample]) -> String {
    let mut out = String::new();
    for s in shots {
        let _ = writeln!(out, "/* Answer the following: {} */", s.question());
        let _ = writeln!(out, "{};", s.sql);
        out.push('\n');
    }
    out
}

/// A synthetic manual few-shot library standing in for DIN-SQL's fixed
/// hand-written exemplars (the original ships ~10 long schema+reasoning
/// examples per stage; this generates an equivalently-sized block).
pub fn manual_exemplar_library(stage: &str, examples: usize) -> String {
    let mut out = format!("/* Stage: {stage} — worked examples */\n");
    for i in 0..examples {
        let _ = writeln!(
            out,
            "/* Example {i}: Schema: CREATE TABLE employee (id int primary key, name text, \
             department text, salary int); CREATE TABLE department (id int primary key, \
             name text, budget int). Question: Which departments have an average salary \
             above the company-wide average salary? Reasoning: the question asks for a \
             grouped aggregate compared against a scalar subquery; first compute the \
             overall average, then group employees by department and filter with HAVING. */"
        );
        let _ = writeln!(
            out,
            "SELECT department FROM employee GROUP BY department \
             HAVING AVG(salary) > (SELECT AVG(salary) FROM employee);"
        );
    }
    out
}

/// Build the prompt text and call-count accounting for a method
/// configuration on one task.
///
/// Returns (representative prompt text of one call, accounting across all
/// calls). The representative text is what an `examples/` binary can print
/// to show users the actual prompt.
pub fn build_prompt(
    method_name: &str,
    modules: &ModuleSet,
    db: &GeneratedDb,
    question: &str,
    few_shot_index: Option<&FewShotIndex<'_>>,
    predicted_sql_len: usize,
) -> (String, PromptAccounting) {
    let _span = obs::span("modelzoo.build_prompt");
    // schema serialization honours the pre-processing modules
    let all_schemas: Vec<&minidb::TableSchema> =
        db.database.tables().map(|t| &t.schema).collect();
    let linked;
    let schemas: &[&minidb::TableSchema] = if modules.schema_linking {
        let _span = obs::span("modelzoo.schema_link");
        linked = schema_link(db, question);
        &linked
    } else {
        &all_schemas
    };
    let content = if modules.db_content {
        let _span = obs::span("modelzoo.db_content");
        match_db_content(db, question, 6)
    } else {
        Vec::new()
    };

    let mut prompt = schema_prompt(db, schemas, &content);

    // few-shot block
    match modules.few_shot {
        FewShot::ZeroShot => {}
        FewShot::Manual => prompt.push_str(&manual_exemplar_library("generation", 8)),
        FewShot::SimilarityBased => {
            if let Some(index) = few_shot_index {
                let _span = obs::span("modelzoo.few_shot");
                let shots = index.select(question, 5);
                prompt.push_str(&few_shot_block(&shots));
            }
        }
    }

    // method-specific standing instructions
    prompt.push_str(method_instructions(method_name));
    let _ = writeln!(prompt, "/* Answer the following: {question} */");

    let per_call_prompt = count_tokens(&prompt);
    let sql_tokens = count_tokens(&"x".repeat(predicted_sql_len.max(8)));

    // call structure
    let calls: u64 = match modules.multi_step {
        MultiStep::Decomposition => 4, // DIN-SQL: classify, decompose, generate, correct
        _ => 1,
    };
    let sc_samples: u64 = match modules.post {
        PostProcessing::SelfConsistency => 8,
        PostProcessing::SelfCorrection => 2,
        _ => 1,
    };
    // Self-consistency resamples completions against one prompt; C3-style
    // zero-shot SC additionally re-sends the prompt per sample.
    let resend_prompt = modules.post == PostProcessing::SelfConsistency
        && modules.few_shot == FewShot::ZeroShot;
    let prompt_tokens =
        per_call_prompt * calls * if resend_prompt { sc_samples } else { 1 };
    let completion_tokens = sql_tokens * calls.max(1) * sc_samples;

    (prompt, PromptAccounting { prompt_tokens, completion_tokens })
}

/// Standing instruction block per method family (sized to reflect each
/// method's published prompt overheads).
fn method_instructions(method_name: &str) -> &'static str {
    const C3_INSTRUCTIONS: &str = "/* You are an expert SQL writer. Follow the clear prompting \
        calibration rules: (1) only select the columns the question asks for; (2) prefer \
        conservative JOIN paths along declared foreign keys; (3) never invent tables or \
        columns; (4) use aggregate functions only when the question asks for counts, sums, \
        averages, minima or maxima; (5) add ORDER BY and LIMIT only when the question asks \
        for extremes or top-k results; (6) return exactly one SQL statement and nothing else. \
        Think about which tables are required, which columns must appear in the projection, \
        which predicates belong in WHERE versus HAVING, and whether the question implies \
        nesting. */\n";
    const DAIL_INSTRUCTIONS: &str =
        "/* Complete the SQL for the final question, consistent with the examples above. */\n";
    const DIN_INSTRUCTIONS: &str = "/* Decomposed in-context pipeline: first classify the \
        question (easy / non-nested complex / nested complex), then produce intermediate \
        sub-questions, then generate the SQL, then self-correct it against the schema. */\n";
    if method_name.starts_with("C3") {
        C3_INSTRUCTIONS
    } else if method_name.starts_with("DIN") {
        DIN_INSTRUCTIONS
    } else {
        DAIL_INSTRUCTIONS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{Decoding, Intermediate};
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};

    fn corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(9))
    }

    fn index(c: &datagen::Corpus) -> FewShotIndex<'_> {
        FewShotIndex::new(&c.train)
    }

    fn modules_dail() -> ModuleSet {
        ModuleSet {
            schema_linking: false,
            db_content: false,
            few_shot: FewShot::SimilarityBased,
            multi_step: MultiStep::None,
            intermediate: Intermediate::None,
            decoding: Decoding::Greedy,
            post: PostProcessing::None,
        }
    }

    fn modules_din() -> ModuleSet {
        ModuleSet {
            schema_linking: true,
            db_content: false,
            few_shot: FewShot::Manual,
            multi_step: MultiStep::Decomposition,
            intermediate: Intermediate::NatSql,
            decoding: Decoding::Greedy,
            post: PostProcessing::SelfCorrection,
        }
    }

    fn modules_c3() -> ModuleSet {
        ModuleSet {
            schema_linking: true,
            db_content: false,
            few_shot: FewShot::ZeroShot,
            multi_step: MultiStep::None,
            intermediate: Intermediate::None,
            decoding: Decoding::Greedy,
            post: PostProcessing::SelfConsistency,
        }
    }

    #[test]
    fn prompt_contains_schema_and_question() {
        let c = corpus();
        let s = &c.dev[0];
        let (text, acc) =
            build_prompt("DAILSQL", &modules_dail(), c.db(s), s.question(), Some(&index(&c)), 60);
        assert!(text.contains("CREATE TABLE"), "{text}");
        assert!(text.contains(s.question()));
        assert!(acc.prompt_tokens > 50);
        assert!(acc.completion_tokens > 0);
    }

    #[test]
    fn few_shot_examples_included() {
        let c = corpus();
        let s = &c.dev[0];
        let (text, _) =
            build_prompt("DAILSQL", &modules_dail(), c.db(s), s.question(), Some(&index(&c)), 60);
        assert!(text.matches("/* Answer the following:").count() >= 2, "shots + question");
        assert!(text.contains("SELECT"), "shots include SQL");
    }

    #[test]
    fn din_multistage_costs_most_tokens() {
        let c = corpus();
        let s = &c.dev[0];
        let (_, din) =
            build_prompt("DINSQL", &modules_din(), c.db(s), s.question(), Some(&index(&c)), 60);
        let (_, dail) =
            build_prompt("DAILSQL", &modules_dail(), c.db(s), s.question(), Some(&index(&c)), 60);
        let (_, c3) =
            build_prompt("C3SQL", &modules_c3(), c.db(s), s.question(), Some(&index(&c)), 60);
        assert!(
            din.total() > c3.total(),
            "DIN {} should exceed C3 {}",
            din.total(),
            c3.total()
        );
        assert!(c3.total() > dail.total(), "C3 {} > DAIL {}", c3.total(), dail.total());
    }

    #[test]
    fn self_consistency_multiplies_completions() {
        let c = corpus();
        let s = &c.dev[0];
        let mut sc = modules_dail();
        sc.post = PostProcessing::SelfConsistency;
        let (_, plain) =
            build_prompt("DAILSQL", &modules_dail(), c.db(s), s.question(), Some(&index(&c)), 60);
        let (_, with_sc) =
            build_prompt("DAILSQL(SC)", &sc, c.db(s), s.question(), Some(&index(&c)), 60);
        assert_eq!(with_sc.completion_tokens, plain.completion_tokens * 8);
        assert_eq!(with_sc.prompt_tokens, plain.prompt_tokens, "few-shot SC reuses prompt");
    }

    #[test]
    fn schema_linking_reduces_prompt_tokens() {
        let c = corpus();
        // pick the db with the most tables to make pruning visible
        let s = c
            .dev
            .iter()
            .max_by_key(|s| c.db(s).database.table_count())
            .unwrap();
        let mut unlinked = modules_dail();
        unlinked.few_shot = FewShot::ZeroShot;
        let mut linked = unlinked;
        linked.schema_linking = true;
        let (_, full) =
            build_prompt("X", &unlinked, c.db(s), s.question(), None, 60);
        let (_, pruned) = build_prompt("X", &linked, c.db(s), s.question(), None, 60);
        assert!(pruned.prompt_tokens <= full.prompt_tokens);
    }

    #[test]
    fn db_content_annotates_columns() {
        let c = corpus();
        // find a sample whose question mentions a cell value
        let hit = c.dev.iter().find(|s| {
            !crate::modules::match_db_content(c.db(s), s.question(), 4).is_empty()
        });
        if let Some(s) = hit {
            let mut m = modules_dail();
            m.db_content = true;
            let (text, _) = build_prompt("SuperSQL", &m, c.db(s), s.question(), None, 60);
            assert!(text.contains("value examples:"), "{text}");
        }
    }

    #[test]
    fn accounting_totals() {
        let acc = PromptAccounting { prompt_tokens: 10, completion_tokens: 5 };
        assert_eq!(acc.total(), 15);
    }
}
