//! The full Table 1 taxonomy catalog.
//!
//! Table 1 of the paper classifies fifteen PLM- and LLM-based methods by
//! backbone and module usage — including methods that the evaluation
//! sections do not re-run (MAC-SQL, the PICARD family, BRIDGE v2, ...).
//! This catalog records every row so the taxonomy table can be regenerated;
//! the subset that the paper's Tables 3–7 evaluate lives in
//! [`crate::registry`] with full capability profiles.

use crate::taxonomy::{
    Decoding, FewShot, Intermediate, MethodClass, ModuleSet, MultiStep, PostProcessing,
};

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct TaxonomyRow {
    /// Method name.
    pub name: &'static str,
    /// LLM- or PLM-based, prompting or fine-tuning.
    pub class: MethodClass,
    /// Backbone model.
    pub backbone: &'static str,
    /// Module usage.
    pub modules: ModuleSet,
    /// Post-processing label as spelled in the paper (more specific than
    /// the enum, e.g. "Refiner" for MAC-SQL).
    pub post_label: &'static str,
    /// Whether the paper's experiment section evaluates this method (i.e.
    /// it also appears in [`crate::registry::all_methods`]).
    pub evaluated: bool,
}

fn m(
    schema_linking: bool,
    db_content: bool,
    few_shot: FewShot,
    multi_step: MultiStep,
    intermediate: Intermediate,
    decoding: Decoding,
    post: PostProcessing,
) -> ModuleSet {
    ModuleSet { schema_linking, db_content, few_shot, multi_step, intermediate, decoding, post }
}

/// All fifteen rows of Table 1, top to bottom.
pub fn table1_rows() -> Vec<TaxonomyRow> {
    use Decoding as D;
    use FewShot as F;
    use Intermediate as I;
    use MethodClass as C;
    use MultiStep as S;
    use PostProcessing as P;
    vec![
        TaxonomyRow {
            name: "DIN-SQL",
            class: C::PromptLlm,
            backbone: "GPT-4",
            modules: m(true, false, F::Manual, S::Decomposition, I::NatSql, D::Greedy, P::SelfCorrection),
            post_label: "Self-Correction",
            evaluated: true,
        },
        TaxonomyRow {
            name: "DAIL-SQL (with Self-Consistency)",
            class: C::PromptLlm,
            backbone: "GPT-4",
            modules: m(false, false, F::SimilarityBased, S::None, I::None, D::Greedy, P::SelfConsistency),
            post_label: "Self-Consistency",
            evaluated: true,
        },
        TaxonomyRow {
            name: "MAC-SQL",
            class: C::PromptLlm,
            backbone: "GPT-4",
            modules: m(true, false, F::ZeroShot, S::Decomposition, I::None, D::Greedy, P::SelfCorrection),
            post_label: "Refiner",
            evaluated: false,
        },
        TaxonomyRow {
            name: "C3-SQL",
            class: C::PromptLlm,
            backbone: "GPT-3.5",
            modules: m(true, false, F::ZeroShot, S::None, I::None, D::Greedy, P::SelfConsistency),
            post_label: "Self-Consistency",
            evaluated: true,
        },
        TaxonomyRow {
            name: "CodeS",
            class: C::FinetunedLlm,
            backbone: "StarCoder",
            modules: m(true, true, F::SimilarityBased, S::None, I::None, D::Beam, P::ExecutionGuided),
            post_label: "Execution-Guided SQL Selector",
            evaluated: false,
        },
        TaxonomyRow {
            name: "SFT CodeS",
            class: C::FinetunedLlm,
            backbone: "StarCoder",
            modules: m(true, true, F::ZeroShot, S::None, I::None, D::Beam, P::ExecutionGuided),
            post_label: "Execution-Guided SQL Selector",
            evaluated: true,
        },
        TaxonomyRow {
            name: "RESDSQL + NatSQL",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(true, true, F::ZeroShot, S::SkeletonParsing, I::NatSql, D::Beam, P::ExecutionGuided),
            post_label: "Execution-Guided SQL Selector",
            evaluated: true,
        },
        TaxonomyRow {
            name: "Graphix + PICARD",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(true, true, F::ZeroShot, S::None, I::None, D::Picard, P::None),
            post_label: "-",
            evaluated: true,
        },
        TaxonomyRow {
            name: "N-best Rerankers + PICARD",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(true, true, F::ZeroShot, S::None, I::None, D::Picard, P::Reranker),
            post_label: "N-best Rerankers",
            evaluated: false,
        },
        TaxonomyRow {
            name: "T5 + NatSQL + Token Preprocessing",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(true, true, F::ZeroShot, S::None, I::NatSql, D::Greedy, P::None),
            post_label: "-",
            evaluated: false,
        },
        TaxonomyRow {
            name: "RASAT + PICARD",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(true, true, F::ZeroShot, S::None, I::None, D::Picard, P::None),
            post_label: "-",
            evaluated: false,
        },
        TaxonomyRow {
            name: "SHiP + PICARD",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(false, true, F::ZeroShot, S::None, I::None, D::Picard, P::None),
            post_label: "-",
            evaluated: false,
        },
        TaxonomyRow {
            name: "T5 + PICARD",
            class: C::FinetunedPlm,
            backbone: "T5",
            modules: m(false, true, F::ZeroShot, S::None, I::None, D::Picard, P::None),
            post_label: "-",
            evaluated: false,
        },
        TaxonomyRow {
            name: "RATSQL + GAP + NatSQL",
            class: C::FinetunedPlm,
            backbone: "BART",
            modules: m(true, true, F::ZeroShot, S::None, I::NatSql, D::Greedy, P::None),
            post_label: "-",
            evaluated: false,
        },
        TaxonomyRow {
            name: "BRIDGE v2",
            class: C::FinetunedPlm,
            backbone: "BERT",
            modules: m(false, true, F::ZeroShot, S::None, I::None, D::Beam, P::None),
            post_label: "Schema-Consistency Guided Decoding",
            evaluated: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_rows_as_in_table1() {
        assert_eq!(table1_rows().len(), 15);
    }

    #[test]
    fn names_unique() {
        let rows = table1_rows();
        let mut names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), rows.len());
    }

    #[test]
    fn every_plm_row_uses_db_content() {
        // the paper highlights that *all* PLM-based methods incorporate
        // database content
        for r in table1_rows() {
            if r.class == MethodClass::FinetunedPlm {
                assert!(r.modules.db_content, "{} should use DB content", r.name);
            }
        }
    }

    #[test]
    fn llm_rows_decode_greedily_plm_rows_use_beam_or_picard() {
        for r in table1_rows() {
            match r.class {
                MethodClass::PromptLlm => {
                    assert_eq!(r.modules.decoding, Decoding::Greedy, "{}", r.name)
                }
                MethodClass::FinetunedPlm => assert!(
                    matches!(r.modules.decoding, Decoding::Beam | Decoding::Picard | Decoding::Greedy),
                    "{}",
                    r.name
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn evaluated_rows_have_registry_counterparts() {
        // spot-check the mapping between Table 1 rows and the runnable zoo
        let evaluated: Vec<&str> =
            table1_rows().iter().filter(|r| r.evaluated).map(|r| r.name).collect();
        assert!(evaluated.contains(&"C3-SQL"));
        assert!(evaluated.contains(&"RESDSQL + NatSQL"));
        assert!(!table1_rows().iter().any(|r| r.name == "MAC-SQL" && r.evaluated));
    }
}
