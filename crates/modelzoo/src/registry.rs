//! The model zoo registry: every method the paper evaluates, with its
//! Table 1 module taxonomy, calibrated capability profile (Tables 3/4),
//! economy parameters (Tables 5/6), and release metadata (Figure 2).
//!
//! The profile numbers are the paper's reported per-subset accuracies; see
//! DESIGN.md ("Substitutions") for how they parameterize the simulated
//! translators. All other behaviour — prompts, token counts, corruption,
//! restyling, metric computation — is executed for real.

use crate::economy::{ApiPricing, LocalServing};
use crate::profiles::CapabilityProfile;
use crate::taxonomy::{
    Decoding, FewShot, Intermediate, MethodClass, ModuleSet, MultiStep, PostProcessing,
};

/// Serving/economy description of a method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Serving {
    /// Commercial API with per-token pricing.
    Api(ApiPricing),
    /// Locally-served model with latency/GPU cost.
    Local(LocalServing),
}

/// One registered method.
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Method name as used in the paper's tables.
    pub name: &'static str,
    /// Method family.
    pub class: MethodClass,
    /// Backbone model name.
    pub backbone: &'static str,
    /// Parameter count in billions, for local models.
    pub params_b: Option<f64>,
    /// (year, month) of release — Figure 2's x-axis.
    pub release: (u16, u8),
    /// Module taxonomy (one row of Table 1).
    pub modules: ModuleSet,
    /// Calibrated capability profile.
    pub profile: CapabilityProfile,
    /// Serving economics.
    pub serving: Serving,
}

fn prompt_llm_profile(
    spider_ex: [f64; 4],
    spider_em: [f64; 4],
    bird_ex: Option<[f64; 3]>,
    gpt4: bool,
) -> CapabilityProfile {
    CapabilityProfile {
        spider_ex,
        spider_em,
        bird_ex,
        // Finding 2: GPT-4 prompting shines on subqueries.
        subquery_delta: if gpt4 { 5.0 } else { 3.0 },
        join_delta: 1.5,
        logical_delta: 2.0,
        orderby_delta_spider: -2.5,
        orderby_delta_bird: 2.0,
        variant_instability: 0.12,
        domain_sensitivity: 0.0,
        domain_bias_scale: 2.5,
        // prompting is fairly robust to content noise but loses linking
        // accuracy on renamed schemas and drifts under paraphrase
        perturb_penalty: [7.0, 9.0, 4.0],
    }
}

fn ft_llm_profile(
    spider_ex: [f64; 4],
    spider_em: [f64; 4],
    bird_ex: Option<[f64; 3]>,
) -> CapabilityProfile {
    CapabilityProfile {
        spider_ex,
        spider_em,
        bird_ex,
        subquery_delta: 1.0,
        join_delta: 1.5,
        logical_delta: 2.0,
        orderby_delta_spider: -1.0,
        orderby_delta_bird: 1.5,
        variant_instability: 0.04,
        domain_sensitivity: 0.6,
        domain_bias_scale: 2.0,
        perturb_penalty: [4.0, 9.0, 4.0],
    }
}

fn plm_profile(
    spider_ex: [f64; 4],
    spider_em: [f64; 4],
    bird_ex: Option<[f64; 3]>,
    natsql: bool,
) -> CapabilityProfile {
    CapabilityProfile {
        spider_ex,
        spider_em,
        bird_ex,
        subquery_delta: -5.0,
        // Finding 4: NatSQL eases JOIN prediction.
        join_delta: if natsql { 2.0 } else { -3.0 },
        logical_delta: -3.0,
        orderby_delta_spider: 3.0,
        orderby_delta_bird: -4.0,
        variant_instability: 0.05,
        domain_sensitivity: 0.6,
        domain_bias_scale: 2.0,
        // PLMs memorize exact schema tokens during fine-tuning — renames
        // hit them hardest (Dr.Spider's headline result)
        perturb_penalty: [6.0, 14.0, 6.0],
    }
}

fn modules_c3() -> ModuleSet {
    ModuleSet {
        schema_linking: true,
        db_content: false,
        few_shot: FewShot::ZeroShot,
        multi_step: MultiStep::None,
        intermediate: Intermediate::None,
        decoding: Decoding::Greedy,
        post: PostProcessing::SelfConsistency,
    }
}

fn modules_din() -> ModuleSet {
    ModuleSet {
        schema_linking: true,
        db_content: false,
        few_shot: FewShot::Manual,
        multi_step: MultiStep::Decomposition,
        intermediate: Intermediate::NatSql,
        decoding: Decoding::Greedy,
        post: PostProcessing::SelfCorrection,
    }
}

fn modules_dail(sc: bool) -> ModuleSet {
    ModuleSet {
        schema_linking: false,
        db_content: false,
        few_shot: FewShot::SimilarityBased,
        multi_step: MultiStep::None,
        intermediate: Intermediate::None,
        decoding: Decoding::Greedy,
        post: if sc { PostProcessing::SelfConsistency } else { PostProcessing::None },
    }
}

fn modules_codes() -> ModuleSet {
    ModuleSet {
        schema_linking: true,
        db_content: true,
        few_shot: FewShot::ZeroShot,
        multi_step: MultiStep::None,
        intermediate: Intermediate::None,
        decoding: Decoding::Beam,
        post: PostProcessing::ExecutionGuided,
    }
}

fn modules_resdsql(natsql: bool) -> ModuleSet {
    ModuleSet {
        schema_linking: true,
        db_content: true,
        few_shot: FewShot::ZeroShot,
        multi_step: MultiStep::SkeletonParsing,
        intermediate: if natsql { Intermediate::NatSql } else { Intermediate::None },
        decoding: Decoding::Beam,
        post: PostProcessing::ExecutionGuided,
    }
}

fn modules_graphix() -> ModuleSet {
    ModuleSet {
        schema_linking: true,
        db_content: true,
        few_shot: FewShot::ZeroShot,
        multi_step: MultiStep::None,
        intermediate: Intermediate::None,
        decoding: Decoding::Picard,
        post: PostProcessing::None,
    }
}

/// RESDSQL per-hardness Spider profiles for sizes below 3B are scaled from
/// the 3B row of Table 3 by the overall-EX ratios of Table 6.
fn scale(base: [f64; 4], ratio: f64) -> [f64; 4] {
    [base[0] * ratio, base[1] * ratio, base[2] * ratio, base[3] * ratio]
}

/// Build the full zoo.
pub fn all_methods() -> Vec<MethodSpec> {
    let resdsql3b_ex = [94.8, 87.7, 73.0, 56.0];
    let resdsql3b_em = [94.0, 83.0, 66.7, 53.0];
    let resdsql3b_nat_ex = [94.4, 87.9, 77.0, 66.3];
    let resdsql3b_nat_em = [93.1, 83.0, 70.1, 65.7];

    vec![
        // ---- prompt-based LLMs ----
        MethodSpec {
            name: "C3SQL",
            class: MethodClass::PromptLlm,
            backbone: "GPT-3.5",
            params_b: None,
            release: (2023, 7),
            modules: modules_c3(),
            profile: prompt_llm_profile(
                [92.7, 85.2, 77.6, 62.0],
                [80.2, 43.5, 35.6, 18.1],
                Some([58.9, 38.5, 31.9]),
                false,
            ),
            serving: Serving::Api(ApiPricing::GPT35),
        },
        MethodSpec {
            name: "DINSQL",
            class: MethodClass::PromptLlm,
            backbone: "GPT-4",
            params_b: None,
            release: (2023, 4),
            modules: modules_din(),
            profile: prompt_llm_profile(
                [92.3, 87.4, 76.4, 62.7],
                [82.7, 65.5, 42.0, 30.7],
                None, // paper: not reproduced on BIRD (GPT-4 budget)
                true,
            ),
            serving: Serving::Api(ApiPricing::GPT4),
        },
        MethodSpec {
            name: "DAILSQL",
            class: MethodClass::PromptLlm,
            backbone: "GPT-4",
            params_b: None,
            release: (2023, 8),
            modules: modules_dail(false),
            profile: prompt_llm_profile(
                [91.5, 89.2, 77.0, 60.2],
                [89.5, 74.2, 55.5, 45.2],
                Some([62.5, 43.2, 37.5]),
                true,
            ),
            serving: Serving::Api(ApiPricing::GPT4),
        },
        MethodSpec {
            name: "DAILSQL(SC)",
            class: MethodClass::PromptLlm,
            backbone: "GPT-4",
            params_b: None,
            release: (2023, 8),
            modules: modules_dail(true),
            profile: prompt_llm_profile(
                [91.5, 90.1, 75.3, 62.7],
                [88.3, 73.5, 54.0, 41.6],
                Some([63.0, 45.6, 43.1]),
                true,
            ),
            serving: Serving::Api(ApiPricing::GPT4),
        },
        // ---- fine-tuned LLMs ----
        MethodSpec {
            name: "SFT CodeS-1B",
            class: MethodClass::FinetunedLlm,
            backbone: "StarCoder",
            params_b: Some(1.0),
            release: (2024, 2),
            modules: modules_codes(),
            profile: ft_llm_profile(
                [92.3, 83.6, 70.1, 49.4],
                [91.5, 74.4, 65.5, 41.0],
                Some([58.7, 37.6, 36.8]),
            ),
            serving: Serving::Local(LocalServing::from_params(1.0, false)),
        },
        MethodSpec {
            name: "SFT CodeS-3B",
            class: MethodClass::FinetunedLlm,
            backbone: "StarCoder",
            params_b: Some(3.0),
            release: (2024, 2),
            modules: modules_codes(),
            profile: ft_llm_profile(
                [94.8, 88.3, 75.3, 60.8],
                [94.4, 80.7, 67.8, 49.4],
                Some([62.8, 44.3, 38.2]),
            ),
            serving: Serving::Local(LocalServing::from_params(3.0, false)),
        },
        MethodSpec {
            name: "SFT CodeS-7B",
            class: MethodClass::FinetunedLlm,
            backbone: "StarCoder",
            params_b: Some(7.0),
            release: (2024, 2),
            modules: modules_codes(),
            profile: ft_llm_profile(
                [94.8, 91.0, 75.3, 66.9],
                [92.7, 85.2, 67.8, 56.0],
                Some([64.6, 46.9, 40.3]),
            ),
            serving: Serving::Local(LocalServing::from_params(7.0, false)),
        },
        MethodSpec {
            name: "SFT CodeS-15B",
            class: MethodClass::FinetunedLlm,
            backbone: "StarCoder",
            params_b: Some(15.0),
            release: (2024, 2),
            modules: modules_codes(),
            profile: ft_llm_profile(
                [95.6, 90.4, 78.2, 61.4],
                [93.1, 83.4, 67.2, 54.2],
                Some([65.8, 48.8, 42.4]),
            ),
            serving: Serving::Local(LocalServing::from_params(15.0, false)),
        },
        // ---- fine-tuned PLMs ----
        MethodSpec {
            name: "RESDSQL-Base",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(0.22),
            release: (2023, 2),
            modules: modules_resdsql(false),
            profile: plm_profile(
                scale(resdsql3b_ex, 77.9 / 81.8),
                scale(resdsql3b_em, 77.9 / 81.8),
                Some([42.3, 20.2, 16.0]),
                false,
            ),
            serving: Serving::Local(LocalServing::from_params(0.22, false)),
        },
        MethodSpec {
            name: "RESDSQL-Base + NatSQL",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(0.22),
            release: (2023, 2),
            modules: modules_resdsql(true),
            profile: plm_profile(
                scale(resdsql3b_nat_ex, 80.2 / 84.1),
                scale(resdsql3b_nat_em, 80.2 / 84.1),
                None,
                true,
            ),
            serving: Serving::Local(LocalServing::from_params(0.22, true)),
        },
        MethodSpec {
            name: "RESDSQL-Large",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(0.77),
            release: (2023, 2),
            modules: modules_resdsql(false),
            profile: plm_profile(
                scale(resdsql3b_ex, 80.1 / 81.8),
                scale(resdsql3b_em, 80.1 / 81.8),
                Some([46.5, 27.7, 22.9]),
                false,
            ),
            serving: Serving::Local(LocalServing::from_params(0.77, false)),
        },
        MethodSpec {
            name: "RESDSQL-Large + NatSQL",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(0.77),
            release: (2023, 2),
            modules: modules_resdsql(true),
            profile: plm_profile(
                scale(resdsql3b_nat_ex, 81.9 / 84.1),
                scale(resdsql3b_nat_em, 81.9 / 84.1),
                None,
                true,
            ),
            serving: Serving::Local(LocalServing::from_params(0.77, true)),
        },
        MethodSpec {
            name: "RESDSQL-3B",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(3.0),
            release: (2023, 2),
            modules: modules_resdsql(false),
            profile: plm_profile(
                resdsql3b_ex,
                resdsql3b_em,
                Some([53.5, 33.3, 16.7]),
                false,
            ),
            serving: Serving::Local(LocalServing::from_params(3.0, false)),
        },
        MethodSpec {
            name: "RESDSQL-3B + NatSQL",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(3.0),
            release: (2023, 2),
            modules: modules_resdsql(true),
            profile: plm_profile(resdsql3b_nat_ex, resdsql3b_nat_em, None, true),
            serving: Serving::Local(LocalServing::from_params(3.0, true)),
        },
        MethodSpec {
            name: "Graphix-3B + PICARD",
            class: MethodClass::FinetunedPlm,
            backbone: "T5",
            params_b: Some(3.0),
            release: (2023, 1),
            modules: modules_graphix(),
            profile: {
                let mut p = plm_profile(
                    [92.3, 86.3, 73.6, 57.2],
                    [91.9, 82.3, 65.5, 53.0],
                    None,
                    false,
                );
                p.variant_instability = 0.03; // Finding 6: Graphix tops QVT
                p
            },
            serving: Serving::Local(LocalServing::from_params(3.0, false)),
        },
        // ---- hybrid ----
        MethodSpec {
            name: "SuperSQL",
            class: MethodClass::Hybrid,
            backbone: "GPT-4",
            params_b: None,
            release: (2024, 6),
            modules: ModuleSet::supersql(),
            profile: {
                let mut p = prompt_llm_profile(
                    [94.4, 91.3, 83.3, 68.7],
                    [90.3, 76.7, 61.5, 44.0],
                    Some([66.9, 46.5, 43.8]),
                    true,
                );
                // schema linking + DB content stabilize linking errors a bit
                p.variant_instability = 0.08;
                p
            },
            serving: Serving::Api(ApiPricing::GPT4),
        },
    ]
}

/// Look up a method by exact name.
pub fn method_by_name(name: &str) -> Option<MethodSpec> {
    all_methods().into_iter().find(|m| m.name == name)
}

/// One point of the Figure 2 leaderboard-evolution timeline.
#[derive(Debug, Clone, Copy)]
pub struct TimelinePoint {
    /// Model name as on the Spider leaderboard.
    pub name: &'static str,
    /// (year, month).
    pub date: (u16, u8),
    /// True for LLM-based entries (green dots), false for PLM-based (blue).
    pub llm_based: bool,
    /// Spider test EX (leaderboard).
    pub ex: f64,
}

/// The Figure 2 timeline: PLM- and LLM-based models on the Spider
/// leaderboard over time (values as published on the leaderboard).
pub fn leaderboard_timeline() -> Vec<TimelinePoint> {
    vec![
        TimelinePoint { name: "BRIDGE v2", date: (2020, 12), llm_based: false, ex: 68.3 },
        TimelinePoint { name: "RATSQL+GAP+NatSQL", date: (2021, 5), llm_based: false, ex: 73.3 },
        TimelinePoint { name: "T5-3B+PICARD", date: (2021, 9), llm_based: false, ex: 75.1 },
        TimelinePoint { name: "RASAT+PICARD", date: (2022, 5), llm_based: false, ex: 75.5 },
        TimelinePoint { name: "SHiP+PICARD", date: (2022, 8), llm_based: false, ex: 76.6 },
        TimelinePoint { name: "N-best Rerankers+PICARD", date: (2022, 10), llm_based: false, ex: 77.2 },
        TimelinePoint { name: "Graphix-3B+PICARD", date: (2023, 1), llm_based: false, ex: 77.6 },
        TimelinePoint { name: "RESDSQL-3B+NatSQL", date: (2023, 2), llm_based: false, ex: 79.9 },
        TimelinePoint { name: "T5+NatSQL+Token Prep", date: (2023, 5), llm_based: false, ex: 78.0 },
        TimelinePoint { name: "DIN-SQL+CodeX", date: (2023, 2), llm_based: true, ex: 78.2 },
        TimelinePoint { name: "C3+ChatGPT", date: (2023, 7), llm_based: true, ex: 82.3 },
        TimelinePoint { name: "DIN-SQL+GPT-4", date: (2023, 4), llm_based: true, ex: 85.3 },
        TimelinePoint { name: "DAIL-SQL+GPT-4", date: (2023, 8), llm_based: true, ex: 86.2 },
        TimelinePoint { name: "DAIL-SQL+GPT-4+SC", date: (2023, 8), llm_based: true, ex: 86.6 },
        TimelinePoint { name: "MAC-SQL+GPT-4", date: (2023, 12), llm_based: true, ex: 86.8 },
        TimelinePoint { name: "SFT CodeS-15B", date: (2024, 2), llm_based: true, ex: 85.0 },
        TimelinePoint { name: "SuperSQL", date: (2024, 6), llm_based: true, ex: 87.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_size_matches_paper_tables() {
        let zoo = all_methods();
        // 4 prompt + 4 SFT CodeS + 7 PLM rows + SuperSQL = 16 table rows
        assert_eq!(zoo.len(), 16);
        let prompt = zoo.iter().filter(|m| m.class == MethodClass::PromptLlm).count();
        let ftllm = zoo.iter().filter(|m| m.class == MethodClass::FinetunedLlm).count();
        let plm = zoo.iter().filter(|m| m.class == MethodClass::FinetunedPlm).count();
        assert_eq!((prompt, ftllm, plm), (4, 4, 7));
    }

    #[test]
    fn names_unique() {
        let zoo = all_methods();
        let mut names: Vec<&str> = zoo.iter().map(|m| m.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), zoo.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(method_by_name("SuperSQL").is_some());
        assert!(method_by_name("DAILSQL(SC)").is_some());
        assert!(method_by_name("nope").is_none());
    }

    #[test]
    fn dinsql_has_no_bird_profile() {
        let din = method_by_name("DINSQL").unwrap();
        assert!(din.profile.bird_ex.is_none(), "paper did not run DIN-SQL on BIRD");
    }

    #[test]
    fn supersql_tops_spider_profile() {
        let zoo = all_methods();
        let best_overall = zoo
            .iter()
            .max_by(|a, b| {
                let ma = a.profile.spider_ex.iter().sum::<f64>();
                let mb = b.profile.spider_ex.iter().sum::<f64>();
                ma.partial_cmp(&mb).unwrap()
            })
            .unwrap();
        assert_eq!(best_overall.name, "SuperSQL");
    }

    #[test]
    fn em_targets_below_ex_targets() {
        for m in all_methods() {
            for i in 0..4 {
                assert!(
                    m.profile.spider_em[i] <= m.profile.spider_ex[i] + 0.01,
                    "{}: EM {} > EX {}",
                    m.name,
                    m.profile.spider_em[i],
                    m.profile.spider_ex[i]
                );
            }
        }
    }

    #[test]
    fn prompt_methods_have_api_pricing_locals_have_serving() {
        for m in all_methods() {
            match m.class {
                MethodClass::PromptLlm | MethodClass::Hybrid => {
                    assert!(matches!(m.serving, Serving::Api(_)), "{}", m.name)
                }
                _ => assert!(matches!(m.serving, Serving::Local(_)), "{}", m.name),
            }
        }
    }

    #[test]
    fn timeline_llms_eventually_dominate() {
        let tl = leaderboard_timeline();
        let best_plm = tl.iter().filter(|p| !p.llm_based).map(|p| p.ex).fold(0.0, f64::max);
        let best_llm = tl.iter().filter(|p| p.llm_based).map(|p| p.ex).fold(0.0, f64::max);
        assert!(best_llm > best_plm, "Figure 2: the LLM/PLM gap widened");
    }

    #[test]
    fn natsql_variants_have_positive_join_delta() {
        let with_nat = method_by_name("RESDSQL-3B + NatSQL").unwrap();
        let without = method_by_name("RESDSQL-3B").unwrap();
        assert!(with_nat.profile.join_delta > 0.0);
        assert!(without.profile.join_delta < 0.0);
    }
}
