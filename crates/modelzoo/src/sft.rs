//! Supervised fine-tuning simulation (paper Exp-5 / Exp-9, Figures 11–12).
//!
//! Exp-5 fine-tunes five open-source 7B-class LLMs with the SQL-style
//! zero-shot prompt of Figure 10 and finds post-SFT Spider EX correlates
//! with the base model's HumanEval Pass@1 (Finding 8). Exp-9 retrains
//! methods on Spider subsets of growing size and finds diminishing returns
//! past ~4000 samples (Finding 12).
//!
//! Since we cannot run GPUs, this module provides: the published HumanEval
//! scores, a code-ability → post-SFT-EX mapping reproducing the Figure 11
//! correlation, a saturating learning curve reproducing Figure 12, and a
//! constructor producing ready-to-evaluate [`SimulatedModel`]s whose
//! calibrated profiles are scaled accordingly.

use crate::economy::LocalServing;
use crate::profiles::CapabilityProfile;
use crate::registry::{MethodSpec, Serving};
use crate::taxonomy::{
    Decoding, FewShot, Intermediate, MethodClass, ModuleSet, MultiStep, PostProcessing,
};
use crate::translator::SimulatedModel;

/// One open-source base LLM from Exp-5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseLlm {
    /// Model name.
    pub name: &'static str,
    /// HumanEval Pass@1 of the base model (published).
    pub humaneval: f64,
    /// Whether the pre-training corpus is code-centric.
    pub code_pretrained: bool,
    /// Parameter count (billions).
    pub params_b: f64,
}

/// The five base LLMs compared in Exp-5.
pub const BASE_LLMS: [BaseLlm; 5] = [
    BaseLlm { name: "Llama2-7B", humaneval: 12.8, code_pretrained: false, params_b: 7.0 },
    BaseLlm { name: "StarCoder-7B", humaneval: 28.4, code_pretrained: true, params_b: 7.0 },
    BaseLlm { name: "CodeLlama-7B", humaneval: 33.5, code_pretrained: true, params_b: 7.0 },
    BaseLlm { name: "Deepseek-Coder-7B", humaneval: 47.6, code_pretrained: true, params_b: 7.0 },
    BaseLlm { name: "Llama3-8B", humaneval: 62.2, code_pretrained: false, params_b: 8.0 },
];

/// Look up a base LLM by name.
pub fn base_llm(name: &str) -> Option<BaseLlm> {
    BASE_LLMS.iter().copied().find(|b| b.name == name)
}

/// Post-SFT Spider-dev EX (percent) as a function of the base model's code
/// ability — the Figure 11 regression: a positive linear trend from ~68 to
/// ~79 EX across the HumanEval range.
pub fn post_sft_ex(base: &BaseLlm) -> f64 {
    66.0 + 0.20 * base.humaneval
}

/// Learning curve for EX versus number of SFT samples (Figure 12):
/// saturating exponential reaching ~96% of the asymptote at 4000 samples.
pub fn learning_curve_ex(final_ex: f64, n_train: usize) -> f64 {
    let n = n_train as f64;
    final_ex * (1.0 - 0.55 * (-n / 1500.0).exp())
}

/// Spider-dev hardness mix used to convert overall EX targets into
/// per-hardness profiles (approximate Spider dev proportions).
const HARDNESS_MIX: [f64; 4] = [0.25, 0.43, 0.17, 0.15];

fn overall(per_hardness: [f64; 4]) -> f64 {
    per_hardness.iter().zip(HARDNESS_MIX).map(|(v, w)| v * w).sum()
}

/// Reference per-hardness shape for a fine-tuned LLM (SFT CodeS-7B row of
/// Table 3), rescaled to hit a target overall EX.
fn shaped_profile(target_overall_ex: f64) -> CapabilityProfile {
    let ref_ex = [94.8, 91.0, 75.3, 66.9];
    let ref_em = [92.7, 85.2, 67.8, 56.0];
    let ratio = target_overall_ex / overall(ref_ex);
    let scale = |a: [f64; 4]| {
        [
            (a[0] * ratio).min(99.0),
            (a[1] * ratio).min(99.0),
            (a[2] * ratio).min(99.0),
            (a[3] * ratio).min(99.0),
        ]
    };
    CapabilityProfile {
        spider_ex: scale(ref_ex),
        spider_em: scale(ref_em),
        bird_ex: None,
        subquery_delta: 1.0,
        join_delta: 1.5,
        logical_delta: 2.0,
        orderby_delta_spider: -1.0,
        orderby_delta_bird: 1.5,
        variant_instability: 0.04,
        domain_sensitivity: 0.6,
        domain_bias_scale: 2.0,
        perturb_penalty: [4.0, 9.0, 4.0],
    }
}

/// Zero-shot SQL-style SFT pipeline (Figure 10): no helper modules, greedy
/// decoding.
fn sft_modules() -> ModuleSet {
    ModuleSet {
        schema_linking: false,
        db_content: false,
        few_shot: FewShot::ZeroShot,
        multi_step: MultiStep::None,
        intermediate: Intermediate::None,
        decoding: Decoding::Greedy,
        post: PostProcessing::None,
    }
}

/// Build a runnable fine-tuned model for `base` trained on `n_train`
/// Spider samples. The name encodes both so evaluation logs stay legible.
pub fn sft_model(base: &BaseLlm, n_train: usize) -> SimulatedModel {
    let final_ex = post_sft_ex(base);
    let ex = learning_curve_ex(final_ex, n_train);
    let name: &'static str = Box::leak(format!("SFT {} (n={})", base.name, n_train).into_boxed_str());
    let spec = MethodSpec {
        name,
        class: MethodClass::FinetunedLlm,
        backbone: Box::leak(base.name.to_string().into_boxed_str()),
        params_b: Some(base.params_b),
        release: (2024, 6),
        modules: sft_modules(),
        profile: shaped_profile(ex),
        serving: Serving::Local(LocalServing::from_params(base.params_b, false)),
    };
    SimulatedModel::new(spec)
}

/// The training-set sizes swept in Exp-9 (Figure 12).
pub const TRAINING_SIZES: [usize; 8] = [500, 1000, 2000, 3000, 4000, 5000, 6000, 7000];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::Nl2SqlModel;

    #[test]
    fn five_base_models() {
        assert_eq!(BASE_LLMS.len(), 5);
        assert!(base_llm("Llama2-7B").is_some());
        assert!(base_llm("GPT-4").is_none());
    }

    #[test]
    fn post_sft_ex_correlates_with_humaneval() {
        // Finding 8: positive correlation
        let mut prev = 0.0;
        let mut sorted = BASE_LLMS;
        sorted.sort_by(|a, b| a.humaneval.partial_cmp(&b.humaneval).unwrap());
        for b in sorted {
            let ex = post_sft_ex(&b);
            assert!(ex > prev, "{} should beat weaker-code models", b.name);
            prev = ex;
        }
    }

    #[test]
    fn code_pretrained_7b_models_beat_llama2() {
        let llama2 = post_sft_ex(&base_llm("Llama2-7B").unwrap());
        for name in ["StarCoder-7B", "CodeLlama-7B", "Deepseek-Coder-7B"] {
            assert!(post_sft_ex(&base_llm(name).unwrap()) > llama2, "{name}");
        }
    }

    #[test]
    fn learning_curve_saturates() {
        let f = 80.0;
        let e500 = learning_curve_ex(f, 500);
        let e4000 = learning_curve_ex(f, 4000);
        let e7000 = learning_curve_ex(f, 7000);
        assert!(e500 < e4000 && e4000 < e7000);
        // acceptable by 4000 (Finding 12)
        assert!(e4000 > 0.94 * f, "{e4000}");
        // diminishing returns: the 4000→7000 gain is smaller than 500→1000
        let early_gain = learning_curve_ex(f, 1000) - e500;
        let late_gain = e7000 - e4000;
        assert!(late_gain < early_gain / 2.0);
    }

    #[test]
    fn sft_model_is_runnable_and_scaled() {
        let base = base_llm("Deepseek-Coder-7B").unwrap();
        let small = sft_model(&base, 500);
        let big = sft_model(&base, 7000);
        let o = |m: &SimulatedModel| overall(m.profile().spider_ex);
        assert!(o(&big) > o(&small));
        assert!(small.name().contains("n=500"));
    }

    #[test]
    fn overall_helper() {
        assert!((overall([100.0; 4]) - 100.0).abs() < 1e-9);
    }
}
