//! Method-specific corruption: how each method family gets things wrong.
//!
//! When the calibrated profile decides a prediction is incorrect, the
//! corruption engine applies AST mutations to the gold query using a
//! *method-class-specific palette* reflecting published NL2SQL error
//! analyses: PLMs mis-link schema elements and fumble nesting; prompt-based
//! LLMs perturb values and conditions; fine-tuned LLMs sit in between.

use crate::taxonomy::MethodClass;
use datagen::GeneratedDb;
use rand::rngs::StdRng;
use rand::Rng;
use sqlkit::mutate::{corrupt, MutationKind, Vocab};
use sqlkit::Query;

/// Mutation palette for a method class.
pub fn palette(class: MethodClass) -> Vec<MutationKind> {
    use MutationKind::*;
    match class {
        // prompt LLMs: value/condition slips, occasional structure loss
        MethodClass::PromptLlm | MethodClass::Hybrid => vec![
            PerturbValue,
            PerturbValue,
            SwapColumn,
            SwapComparison,
            DropCondition,
            BreakOrderBy,
            ToggleDistinct,
            SwapConnector,
            PerturbLimit,
        ],
        // fine-tuned LLMs: mostly linking and condition errors
        MethodClass::FinetunedLlm => vec![
            SwapColumn,
            SwapColumn,
            PerturbValue,
            SwapComparison,
            DropCondition,
            SwapAggregate,
            BreakOrderBy,
            PerturbLimit,
        ],
        // PLMs: schema-linking errors, dropped JOINs, flattened subqueries
        MethodClass::FinetunedPlm => vec![
            SwapColumn,
            SwapColumn,
            DropJoin,
            FlattenSubquery,
            FlattenSubquery,
            SwapAggregate,
            DropCondition,
            SwapComparison,
            BreakOrderBy,
        ],
    }
}

/// Column-name vocabulary of a database, for schema-linking mutations.
pub fn db_vocab(db: &GeneratedDb) -> Vocab {
    let mut columns = Vec::new();
    for t in db.database.tables() {
        for c in &t.schema.columns {
            if !columns.contains(&c.name) {
                columns.push(c.name.clone());
            }
        }
    }
    Vocab::new(columns)
}

/// Produce an incorrect prediction by mutating the gold query.
///
/// A mutation can be semantically inert (dropping a predicate every row
/// satisfies, perturbing a value no row is near), which would silently turn
/// an intended-wrong prediction into a correct one and inflate EX above the
/// calibration targets. The engine therefore *verifies* each candidate by
/// executing it: candidates whose results still match the gold results are
/// re-mutated, and a guaranteed-wrong scalar answer is the last resort.
pub fn corrupt_prediction(
    gold: &Query,
    class: MethodClass,
    db: &GeneratedDb,
    rng: &mut StdRng,
) -> Query {
    let vocab = db_vocab(db);
    let pal = palette(class);
    let gold_rs = db.database.run_query(gold).ok();

    let mut pred = gold.clone();
    let n = 1 + usize::from(rng.gen_bool(0.35)) + usize::from(rng.gen_bool(0.15));
    for _ in 0..n {
        corrupt(&mut pred, &pal, &vocab, rng);
    }
    for _ in 0..6 {
        if pred != *gold && !executes_like_gold(db, &pred, gold_rs.as_ref()) {
            return pred;
        }
        corrupt(&mut pred, &pal, &vocab, rng);
    }
    if pred != *gold && !executes_like_gold(db, &pred, gold_rs.as_ref()) {
        return pred;
    }
    // guaranteed-wrong fallback: a scalar that cannot equal any gold result
    // produced by the corpus generators (all gold queries read a table)
    sqlkit::parse_query("SELECT 'prediction_error'").expect("static SQL parses")
}

/// Does `pred` execute successfully to the same result as the gold query?
fn executes_like_gold(
    db: &GeneratedDb,
    pred: &Query,
    gold_rs: Option<&minidb::ResultSet>,
) -> bool {
    let Some(gold_rs) = gold_rs else {
        return false;
    };
    match db.database.run_query(pred) {
        Ok(rs) => minidb::results_equivalent(gold_rs, &rs),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};
    use rand::SeedableRng;

    #[test]
    fn palettes_reflect_class_error_styles() {
        let plm = palette(MethodClass::FinetunedPlm);
        assert!(plm.contains(&MutationKind::DropJoin));
        assert!(plm.contains(&MutationKind::FlattenSubquery));
        let prompt = palette(MethodClass::PromptLlm);
        assert!(!prompt.contains(&MutationKind::DropJoin));
        assert!(prompt.contains(&MutationKind::PerturbValue));
    }

    #[test]
    fn corruption_changes_the_query() {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(3));
        let mut changed = 0;
        let mut total = 0;
        for (i, s) in c.dev.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(i as u64);
            let pred =
                corrupt_prediction(&s.query, MethodClass::FinetunedPlm, c.db(s), &mut rng);
            total += 1;
            if pred != s.query {
                changed += 1;
            }
        }
        assert_eq!(changed, total, "every corruption should alter the AST");
    }

    #[test]
    fn corrupted_queries_mostly_score_wrong_on_ex() {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(4));
        let mut wrong = 0;
        let mut total = 0;
        for (i, s) in c.dev.iter().enumerate().take(40) {
            let mut rng = StdRng::seed_from_u64(1000 + i as u64);
            let pred = corrupt_prediction(&s.query, MethodClass::PromptLlm, c.db(s), &mut rng);
            let gold_rs = c.db(s).database.run_query(&s.query).unwrap();
            total += 1;
            match c.db(s).database.run_query(&pred) {
                Ok(pred_rs) => {
                    if !minidb::results_equivalent(&gold_rs, &pred_rs) {
                        wrong += 1;
                    }
                }
                Err(_) => wrong += 1,
            }
        }
        // a few corruptions may be semantically inert by chance; most must
        // actually change the result
        assert!(wrong * 10 >= total * 6, "only {wrong}/{total} corruptions were wrong");
    }

    #[test]
    fn vocab_collects_all_columns() {
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(5));
        let db = c.databases.values().next().unwrap();
        let v = db_vocab(db);
        assert!(v.columns.len() >= 4);
        assert!(v.columns.iter().any(|c| c == "id"));
    }
}
