//! The modular taxonomy of NL2SQL methods (paper Table 1 / Figure 13).
//!
//! Every method — real ones reproduced from the paper and synthetic ones
//! composed by the AAS search — is described by a [`ModuleSet`]: which
//! pre-processing, prompting, SQL-generation and post-processing modules it
//! uses. The design-space search (paper §5) operates directly over these
//! enums.

use serde::{Deserialize, Serialize};

/// Method family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MethodClass {
    /// Prompt-based LLM (GPT-3.5 / GPT-4 through an API).
    PromptLlm,
    /// Fine-tuned open-source LLM (CodeS, Llama...).
    FinetunedLlm,
    /// Fine-tuned pre-trained LM (T5/BERT-era: RESDSQL, Graphix...).
    FinetunedPlm,
    /// Hybrid composition found by NL2SQL360-AAS (SuperSQL).
    Hybrid,
}

impl MethodClass {
    /// Short label used in reports ("LLM (P)", "LLM (FT)", "PLM (FT)").
    pub fn label(&self) -> &'static str {
        match self {
            MethodClass::PromptLlm => "LLM (P)",
            MethodClass::FinetunedLlm => "LLM (FT)",
            MethodClass::FinetunedPlm => "PLM (FT)",
            MethodClass::Hybrid => "Hybrid",
        }
    }

    /// Is this method LLM-based (prompted or fine-tuned)?
    pub fn is_llm(&self) -> bool {
        matches!(self, MethodClass::PromptLlm | MethodClass::FinetunedLlm)
    }
}

/// Few-shot example selection strategy (Prompting layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FewShot {
    /// Zero-shot prompting.
    ZeroShot,
    /// Hand-written fixed examples (DIN-SQL).
    Manual,
    /// Similarity-based dynamic selection (DAIL-SQL).
    SimilarityBased,
}

/// Multi-step SQL generation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MultiStep {
    /// Single-shot generation.
    None,
    /// Skeleton parsing then filling (RESDSQL).
    SkeletonParsing,
    /// Sub-question decomposition (DIN-SQL, MAC-SQL).
    Decomposition,
}

/// Intermediate representation used between NL and SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intermediate {
    /// Direct SQL generation.
    None,
    /// NatSQL simplified form (omits JOIN keywords, eases schema prediction).
    NatSql,
}

/// Decoding strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decoding {
    /// Greedy decoding (API LLMs).
    Greedy,
    /// Beam search.
    Beam,
    /// PICARD constrained decoding (rejects invalid SQL prefixes).
    Picard,
}

/// Post-processing strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostProcessing {
    /// Emit the first output as-is.
    None,
    /// Self-correction round (DIN-SQL).
    SelfCorrection,
    /// Self-consistency voting over sampled outputs (C3, DAIL-SQL SC).
    SelfConsistency,
    /// Execution-guided selection: first error-free candidate wins (CodeS,
    /// RESDSQL).
    ExecutionGuided,
    /// N-best reranking.
    Reranker,
    /// Schema-aware static repair: run the `sqlcheck` analyzer over the
    /// decoded SQL and fix unresolvable identifiers by nearest-name
    /// matching before execution.
    StaticRepair,
}

/// The full module configuration of one method — one row of Table 1, and
/// one point of the Figure 13 design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModuleSet {
    /// Pre-processing: schema linking (prune schema to relevant elements).
    pub schema_linking: bool,
    /// Pre-processing: DB content matching (enrich columns with values).
    pub db_content: bool,
    /// Prompting strategy.
    pub few_shot: FewShot,
    /// Multi-step generation.
    pub multi_step: MultiStep,
    /// Intermediate representation.
    pub intermediate: Intermediate,
    /// Decoding strategy.
    pub decoding: Decoding,
    /// Post-processing strategy.
    pub post: PostProcessing,
}

impl ModuleSet {
    /// A bare zero-shot greedy pipeline with no helper modules.
    pub fn bare() -> Self {
        Self {
            schema_linking: false,
            db_content: false,
            few_shot: FewShot::ZeroShot,
            multi_step: MultiStep::None,
            intermediate: Intermediate::None,
            decoding: Decoding::Greedy,
            post: PostProcessing::None,
        }
    }

    /// The SuperSQL composition found by NL2SQL360-AAS (paper §5.3):
    /// RESDSQL schema linking + BRIDGE v2 DB content + DAIL-SQL few-shot +
    /// greedy decoding + DAIL-SQL self-consistency.
    pub fn supersql() -> Self {
        Self {
            schema_linking: true,
            db_content: true,
            few_shot: FewShot::SimilarityBased,
            multi_step: MultiStep::None,
            intermediate: Intermediate::None,
            decoding: Decoding::Greedy,
            post: PostProcessing::SelfConsistency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(MethodClass::PromptLlm.label(), "LLM (P)");
        assert!(MethodClass::PromptLlm.is_llm());
        assert!(MethodClass::FinetunedLlm.is_llm());
        assert!(!MethodClass::FinetunedPlm.is_llm());
    }

    #[test]
    fn supersql_composition_matches_paper() {
        let m = ModuleSet::supersql();
        assert!(m.schema_linking && m.db_content);
        assert_eq!(m.few_shot, FewShot::SimilarityBased);
        assert_eq!(m.multi_step, MultiStep::None);
        assert_eq!(m.intermediate, Intermediate::None);
        assert_eq!(m.decoding, Decoding::Greedy);
        assert_eq!(m.post, PostProcessing::SelfConsistency);
    }

    #[test]
    fn bare_has_nothing() {
        let m = ModuleSet::bare();
        assert!(!m.schema_linking && !m.db_content);
        assert_eq!(m.post, PostProcessing::None);
    }
}
