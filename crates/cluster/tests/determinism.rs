//! The cluster's correctness pin: outcomes are byte-identical between
//! the in-process service, a 1-worker cluster, and a 3-worker cluster —
//! and still identical when a worker leaves mid-run and its work is
//! requeued.
//!
//! "Outcome" is the reply with scheduling-dependent fields (latency,
//! cache_hit, batch_size) zeroed; everything the evaluator cares about —
//! ex, em, pred_sql, pred_work, exec_failure — must match byte for byte
//! as serialized JSON.

use cluster::{Scheduler, SchedulerConfig, Worker, WorkerConfig};
use crossbeam::channel;
use datagen::{generate_corpus, CorpusConfig, CorpusKind};
use serve::proto::ClusterClient;
use serve::{QueryReply, QueryRequest, ServeConfig, Service};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const CORPUS_SEED: u64 = 11;
const METHODS: [&str; 2] = ["C3SQL", "DINSQL"];

fn requests() -> Vec<QueryRequest> {
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(CORPUS_SEED));
    let mut out = Vec::new();
    for method in METHODS {
        for sample in &corpus.dev {
            for question in &sample.variants {
                out.push(QueryRequest {
                    method: method.to_string(),
                    db_id: sample.db_id.clone(),
                    question: question.clone(),
                    deadline: None,
                    trace: None,
                });
            }
        }
    }
    out
}

/// Zero the fields that legitimately vary with scheduling or telemetry
/// (latency, cache_hit, batch_size, trace_id), serialize the rest; byte
/// equality of these strings is the test's definition of "identical
/// outcome".
fn normalize(reply: QueryReply) -> String {
    let reply = reply.map(|mut r| {
        r.latency = Duration::ZERO;
        r.cache_hit = false;
        r.batch_size = 0;
        r.trace_id = String::new();
        r
    });
    serde_json::to_string(&reply).expect("reply serializes")
}

fn engine_config(traced: bool) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: 1024,
        admin_addr: None,
        request_tracing: traced,
        ..ServeConfig::default()
    }
}

/// In-process ground truth: the plain serve engine, closed loop.
fn inprocess_outcomes(reqs: &[QueryRequest]) -> Vec<String> {
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(CORPUS_SEED));
    let ctx = nl2sql360::EvalContext::new(&corpus);
    Service::run_with_methods(engine_config(false), &ctx, &METHODS, |handle| {
        reqs.iter().map(|r| normalize(handle.query(r.clone()))).collect()
    })
}

struct EmbeddedWorker {
    stop: channel::Sender<()>,
    join: thread::JoinHandle<()>,
}

fn spawn_worker(worker_id: &str, scheduler: SocketAddr, traced: bool) -> EmbeddedWorker {
    let (stop, stop_rx) = channel::bounded::<()>(1);
    let config = WorkerConfig {
        worker_id: worker_id.to_string(),
        scheduler: scheduler.to_string(),
        corpus_seed: CORPUS_SEED,
        methods: METHODS.iter().map(|m| m.to_string()).collect(),
        serve: engine_config(traced),
        heartbeat: Duration::from_millis(100),
        ..WorkerConfig::default()
    };
    let join = thread::spawn(move || {
        Worker::run(config, |_| {
            let _ = stop_rx.recv();
        })
    });
    EmbeddedWorker { stop, join }
}

fn stop_worker(w: EmbeddedWorker) {
    drop(w.stop);
    w.join.join().expect("worker thread exits cleanly");
}

struct ClusterStats {
    forwarded: u64,
    requeued: u64,
    reaped: u64,
}

/// Drive `reqs` through an embedded cluster with `n_workers`, open loop.
/// When `kill_after` is set, worker 0 is stopped after that many replies
/// have been read, mid-burst. Returns outcomes in request order plus the
/// scheduler's counters.
fn cluster_outcomes(
    reqs: &[QueryRequest],
    n_workers: usize,
    kill_after: Option<usize>,
    traced: bool,
) -> (Vec<String>, ClusterStats) {
    let (addr_tx, addr_rx) = channel::bounded(1);
    let (stop_tx, stop_rx) = channel::bounded::<()>(1);
    let scheduler = thread::spawn(move || {
        let config = SchedulerConfig {
            admin_addr: Some("127.0.0.1:0".parse().expect("loopback literal parses")),
            heartbeat_timeout: Duration::from_secs(2),
            reap_interval: Duration::from_millis(100),
            request_tracing: traced,
            warehouse: traced,
            ..SchedulerConfig::default()
        };
        Scheduler::run(config, |handle| {
            addr_tx
                .send((handle.client_addr(), handle.admin_addr().expect("admin configured")))
                .expect("test thread is waiting");
            let _ = stop_rx.recv();
            ClusterStats {
                forwarded: handle.forwarded_total(),
                requeued: handle.requeued_total(),
                reaped: handle.reaped_total(),
            }
        })
    });
    let (scheduler_addr, admin_addr) = addr_rx.recv().expect("scheduler binds");
    let mut workers: Vec<EmbeddedWorker> = (0..n_workers)
        .map(|i| spawn_worker(&format!("w{i}"), scheduler_addr, traced))
        .collect();
    // the burst only means anything once every worker owns ring arcs:
    // wait until all n registered (registration implies ready)
    let all_ready = cluster::worker::wait_for(Duration::from_secs(30), || {
        match serve::admin::http_get(admin_addr, "/workers") {
            Ok((200, body)) => body.matches("\"worker_id\"").count() == n_workers,
            _ => false,
        }
    });
    assert!(all_ready, "{n_workers} worker(s) never all registered");

    let mut client = ClusterClient::connect(&scheduler_addr.to_string(), Duration::from_secs(5))
        .expect("client connects");
    client.set_reply_timeout(Some(Duration::from_secs(60))).expect("timeout set");
    // submit everything before reading anything: jobs queue on workers
    // (or pend while registration is still in flight), which is exactly
    // the state a mid-burst worker death has to requeue out of
    let mut ids = Vec::with_capacity(reqs.len());
    for req in reqs {
        ids.push(client.submit(req.clone()).expect("submit"));
    }
    let mut by_id: BTreeMap<u64, String> = BTreeMap::new();
    while by_id.len() < reqs.len() {
        let (id, reply) = client.next_reply().expect("reply within timeout");
        let duplicate = by_id.insert(id, normalize(reply));
        assert!(duplicate.is_none(), "request {id} answered twice");
        if let Some(n) = kill_after {
            if by_id.len() == n {
                // take down worker 0 with most of the burst outstanding
                let w0 = workers.remove(0);
                stop_worker(w0);
            }
        }
    }
    let outcomes =
        ids.iter().map(|id| by_id.remove(id).expect("every id answered")).collect();
    // stop the scheduler before the workers: a graceful worker departure
    // is an eviction (control connection closes), which would make the
    // run's reaped/requeued counters reflect the teardown, not the burst
    drop(stop_tx);
    let stats = scheduler.join().expect("scheduler exits cleanly");
    for w in workers {
        stop_worker(w);
    }
    (outcomes, stats)
}

#[test]
fn one_process_and_n_processes_agree_byte_for_byte() {
    let reqs = requests();
    assert!(reqs.len() >= 150, "corpus too small to be interesting: {}", reqs.len());
    let baseline = inprocess_outcomes(&reqs);
    // nothing in the baseline failed, so any Internal/Overloaded leaking
    // out of the cluster path shows up as a diff, not a silent match
    for (r, o) in reqs.iter().zip(&baseline) {
        assert!(o.starts_with("{\"Ok\""), "baseline failure for {r:?}: {o}");
    }

    let (one, stats_one) = cluster_outcomes(&reqs, 1, None, false);
    assert_eq!(baseline, one, "1-worker cluster diverged from in-process serve");
    assert_eq!(stats_one.forwarded, reqs.len() as u64);
    assert_eq!(stats_one.reaped, 0);

    let (three, _stats_three) = cluster_outcomes(&reqs, 3, None, false);
    assert_eq!(baseline, three, "3-worker cluster diverged from in-process serve");
}

/// Tracing + warehouse passivity across process counts: with the
/// scheduler minting trace ids, workers shipping span subtrees on every
/// reply, and the warehouse flusher persisting both, outcomes are still
/// byte-identical to the untraced in-process baseline — for one worker
/// and for two.
#[test]
fn outcomes_identical_with_tracing_and_warehouse_on() {
    let reqs = requests();
    let baseline = inprocess_outcomes(&reqs);
    let (one, _) = cluster_outcomes(&reqs, 1, None, true);
    assert_eq!(baseline, one, "traced 1-worker cluster diverged from untraced baseline");
    let (two, _) = cluster_outcomes(&reqs, 2, None, true);
    assert_eq!(baseline, two, "traced 2-worker cluster diverged from untraced baseline");
}

#[test]
fn outcomes_survive_a_worker_leaving_mid_burst() {
    let reqs = requests();
    let baseline = inprocess_outcomes(&reqs);
    // stop w0 after ~10% of replies: its shard (roughly half the keys) is
    // mostly still queued or in flight and must be requeued to w1
    let kill_after = reqs.len() / 10;
    let (outcomes, stats) = cluster_outcomes(&reqs, 2, Some(kill_after), false);
    assert_eq!(
        baseline, outcomes,
        "outcomes changed after a worker left mid-burst and its work was requeued"
    );
    assert!(stats.reaped >= 1, "the departed worker was never evicted");
    assert!(
        stats.requeued >= 1,
        "eviction requeued nothing — the kill happened too late to mean anything"
    );
}
