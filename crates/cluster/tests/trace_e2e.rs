//! Cross-process span-tree assembly pins: one request through a
//! 1-scheduler / 2-worker cluster produces ONE trace spanning all three
//! participants —
//!
//! * the scheduler's `sched.request` root and `sched.forward` hop;
//! * the executing worker's `request` subtree (queue → execute →
//!   compare), parented under the forward hop and labeled with the
//!   worker's id;
//! * the same tree from `GET /v1/traces/<id>` over admin HTTP, and the
//!   same span count from `SELECT count(*) FROM trace_spans` over the
//!   scheduler's warehouse — live store, HTTP view, and SQL view agree.
//!
//! Assembly is also deterministic: the same request traced twice yields
//! the same tree shape (names, processes, parent edges).

use cluster::{Scheduler, SchedulerConfig, Worker, WorkerConfig};
use crossbeam::channel;
use minidb::Value;
use serve::trace::SpanRecord;
use serve::{QueryRequest, ServeConfig};
use std::collections::BTreeSet;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

const CORPUS_SEED: u64 = 11;
const METHOD: &str = "C3SQL";

/// Everything the test needs to inspect one trace, gathered inside the
/// scheduler's run closure where the handle lives.
struct Inspection {
    spans: Option<Vec<SpanRecord>>,
    sql_count: i64,
    trace_http: (u16, String),
}

enum Cmd {
    Query { request: QueryRequest, reply: channel::Sender<serve::QueryReply> },
    Inspect { trace_id: String, reply: channel::Sender<Inspection> },
}

fn spawn_worker(worker_id: &str, scheduler: SocketAddr) -> (channel::Sender<()>, thread::JoinHandle<()>) {
    let (stop, stop_rx) = channel::bounded::<()>(1);
    let config = WorkerConfig {
        worker_id: worker_id.to_string(),
        scheduler: scheduler.to_string(),
        corpus_seed: CORPUS_SEED,
        methods: vec![METHOD.to_string()],
        serve: ServeConfig {
            workers: 2,
            admin_addr: None,
            request_tracing: true,
            ..ServeConfig::default()
        },
        heartbeat: Duration::from_millis(100),
        ..WorkerConfig::default()
    };
    let join = thread::spawn(move || {
        Worker::run(config, |_| {
            let _ = stop_rx.recv();
        })
    });
    (stop, join)
}

/// Boot a traced 2-worker cluster, run `f` against a command channel into
/// the scheduler's closure, then tear everything down.
fn with_traced_cluster(f: impl FnOnce(&channel::Sender<Cmd>)) {
    let (addr_tx, addr_rx) = channel::bounded(1);
    let (cmd_tx, cmd_rx) = channel::unbounded::<Cmd>();
    let scheduler = thread::spawn(move || {
        let config = SchedulerConfig {
            admin_addr: Some("127.0.0.1:0".parse().expect("loopback literal parses")),
            request_tracing: true,
            warehouse: true,
            ..SchedulerConfig::default()
        };
        Scheduler::run(config, |handle| {
            let admin = handle.admin_addr().expect("admin configured");
            addr_tx.send((handle.client_addr(), admin)).expect("test thread is waiting");
            while let Ok(cmd) = cmd_rx.recv() {
                match cmd {
                    Cmd::Query { request, reply } => {
                        let _ = reply.send(handle.query(request));
                    }
                    Cmd::Inspect { trace_id, reply } => {
                        // force the flush tests would otherwise sleep for
                        handle.flush_warehouse();
                        let sql_count = match handle.store_sql(&format!(
                            "SELECT COUNT(*) FROM trace_spans WHERE trace_id = '{trace_id}'"
                        )) {
                            Some(Ok(rs)) => match rs.rows.first().and_then(|r| r.first()) {
                                Some(Value::Int(n)) => *n,
                                other => panic!("expected integer count, got {other:?}"),
                            },
                            other => panic!("warehouse query failed: {other:?}"),
                        };
                        let trace_http =
                            serve::admin::http_get(admin, &format!("/v1/traces/{trace_id}"))
                                .expect("trace fetch");
                        let _ = reply.send(Inspection {
                            spans: handle.trace_spans(&trace_id),
                            sql_count,
                            trace_http,
                        });
                    }
                }
            }
        })
    });
    let (scheduler_addr, admin_addr) = addr_rx.recv().expect("scheduler binds");
    let workers: Vec<_> =
        (0..2).map(|i| spawn_worker(&format!("w{i}"), scheduler_addr)).collect();
    let both_ready = cluster::worker::wait_for(Duration::from_secs(30), || {
        match serve::admin::http_get(admin_addr, "/workers") {
            Ok((200, body)) => body.matches("\"worker_id\"").count() == 2,
            _ => false,
        }
    });
    assert!(both_ready, "both workers never registered");

    f(&cmd_tx);

    drop(cmd_tx);
    scheduler.join().expect("scheduler exits cleanly");
    for (stop, join) in workers {
        drop(stop);
        join.join().expect("worker thread exits cleanly");
    }
}

fn query(cmd_tx: &channel::Sender<Cmd>, request: QueryRequest) -> serve::QueryResponse {
    let (tx, rx) = channel::bounded(1);
    assert!(cmd_tx.send(Cmd::Query { request, reply: tx }).is_ok(), "scheduler alive");
    rx.recv().expect("reply").expect("request served")
}

fn inspect(cmd_tx: &channel::Sender<Cmd>, trace_id: &str) -> Inspection {
    let (tx, rx) = channel::bounded(1);
    assert!(
        cmd_tx.send(Cmd::Inspect { trace_id: trace_id.to_string(), reply: tx }).is_ok(),
        "scheduler alive"
    );
    rx.recv().expect("inspection")
}

/// The tree shape that must be stable run to run: (name, process,
/// parent-name) edges, sorted.
fn shape(spans: &[SpanRecord]) -> Vec<(String, String, String)> {
    let name_of = |id: u64| {
        spans
            .iter()
            .find(|s| s.span_id == id)
            .map_or_else(|| "<root>".to_string(), |s| s.name.clone())
    };
    let mut out: Vec<_> = spans
        .iter()
        .map(|s| (s.name.clone(), s.process.clone(), name_of(s.parent_id)))
        .collect();
    out.sort();
    out
}

#[test]
fn one_request_assembles_one_tree_across_three_processes() {
    let corpus = datagen::generate_corpus(
        datagen::CorpusKind::Spider,
        &datagen::CorpusConfig::tiny(CORPUS_SEED),
    );
    let sample = &corpus.dev[0];
    let request = QueryRequest {
        method: METHOD.to_string(),
        db_id: sample.db_id.clone(),
        question: sample.variants[0].clone(),
        deadline: None,
        trace: None,
    };
    with_traced_cluster(|cmd_tx| {
        let resp = query(cmd_tx, request.clone());
        assert_eq!(resp.trace_id.len(), 16, "reply must carry the minted trace id");
        let inspection = inspect(cmd_tx, &resp.trace_id);
        let spans = inspection.spans.expect("trace assembled on the scheduler");

        // one root: the scheduler's request span
        let roots: Vec<_> = spans.iter().filter(|s| s.parent_id == 0).collect();
        assert_eq!(roots.len(), 1, "exactly one root: {spans:?}");
        assert_eq!(roots[0].name, "sched.request");
        assert_eq!(roots[0].process, "sched");

        // the forward hop parents the worker's whole subtree
        let forward = spans
            .iter()
            .find(|s| s.name == "sched.forward")
            .expect("forward hop recorded");
        assert_eq!(forward.parent_id, roots[0].span_id);
        let worker_root = spans
            .iter()
            .find(|s| s.name == "request")
            .expect("worker subtree merged");
        assert_eq!(worker_root.parent_id, forward.span_id);
        assert!(
            worker_root.process.starts_with('w'),
            "worker spans must carry the worker id, got {:?}",
            worker_root.process
        );

        // three distinct participants, connected into one tree
        let processes: BTreeSet<&str> = spans.iter().map(|s| s.process.as_str()).collect();
        assert_eq!(processes.len(), 2, "sched + exactly one worker: {processes:?}");
        let ids: BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
        for s in &spans {
            assert!(
                s.parent_id == 0 || ids.contains(&s.parent_id),
                "span {s:?} parents outside the tree"
            );
        }
        for stage in ["queue", "execute", "compare"] {
            assert!(
                spans.iter().any(|s| s.name == stage),
                "worker stage {stage:?} missing from {spans:?}"
            );
        }

        // HTTP view and SQL view agree with the live store
        let (status, body) = inspection.trace_http;
        assert_eq!(status, 200, "{body}");
        assert!(body.contains(&format!("\"span_count\":{}", spans.len())), "{body}");
        assert_eq!(inspection.sql_count as usize, spans.len());

        // determinism: the same request traced again yields the same
        // tree shape (ids and timings differ; structure must not)
        let resp2 = query(cmd_tx, request.clone());
        assert_ne!(resp2.trace_id, resp.trace_id, "each request gets its own trace");
        let spans2 = inspect(cmd_tx, &resp2.trace_id).spans.expect("second trace assembled");
        assert_eq!(shape(&spans), shape(&spans2), "span-tree assembly must be deterministic");
    });
}
