//! The hard version of the requeue pin: real processes, a real SIGKILL.
//!
//! Boots `serve-scheduler` and two `serve-worker` processes, floods the
//! scheduler with a burst, SIGKILLs one worker mid-burst, and requires
//! that every request is answered exactly once anyway — the killed
//! worker's queued and in-flight work requeues to the survivor through
//! eviction (control-connection loss and forward IO errors both fire
//! within milliseconds of the kill; the heartbeat reaper is the backstop).

use serve::admin::http_get;
use serve::proto::ClusterClient;
use serve::QueryRequest;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CORPUS_SEED: u64 = 11;
const METHODS: [&str; 2] = ["C3SQL", "DINSQL"];

/// Kills the child on drop so a failing assert never leaks processes.
struct Proc(Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn a binary, read its first stdout line (the "listening" line).
fn spawn_with_banner(mut cmd: Command) -> (Proc, String) {
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("banner line");
    (Proc(child), line.trim().to_string())
}

/// Pull `key=value` out of a banner line.
fn banner_field(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in banner {line:?}"))
        .to_string()
}

fn requests() -> Vec<QueryRequest> {
    let corpus =
        datagen::generate_corpus(datagen::CorpusKind::Spider, &datagen::CorpusConfig::tiny(CORPUS_SEED));
    let mut out = Vec::new();
    for method in METHODS {
        for sample in &corpus.dev {
            for question in &sample.variants {
                out.push(QueryRequest {
                    method: method.to_string(),
                    db_id: sample.db_id.clone(),
                    question: question.clone(),
                    deadline: None,
                });
            }
        }
    }
    out
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    cond()
}

/// Extract a counter's value from a Prometheus exposition.
fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn sigkilled_workers_requeue_and_every_request_answers_exactly_once() {
    // scheduler first; tight reaper timings keep the heartbeat backstop
    // relevant inside the test budget
    let mut sched_cmd = Command::new(env!("CARGO_BIN_EXE_serve-scheduler"));
    sched_cmd.args([
        "--listen", "127.0.0.1:0",
        "--admin", "127.0.0.1:0",
        "--heartbeat-timeout-ms", "800",
        "--reap-interval-ms", "100",
    ]);
    let (_sched, sched_banner) = spawn_with_banner(sched_cmd);
    let client_addr = banner_field(&sched_banner, "client");
    let admin_addr: SocketAddr =
        banner_field(&sched_banner, "admin").parse().expect("admin addr parses");

    let spawn_worker = |id: &str| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve-worker"));
        cmd.args([
            "--scheduler", &client_addr,
            "--id", id,
            "--corpus-seed", &CORPUS_SEED.to_string(),
            "--methods", &METHODS.join(","),
            "--workers", "2",
            "--queue", "1024",
            "--heartbeat-ms", "150",
        ]);
        spawn_with_banner(cmd)
    };
    let (_w1, w1_banner) = spawn_worker("w1");
    let (w2, w2_banner) = spawn_worker("w2");
    assert!(w1_banner.contains("serve-worker w1"), "{w1_banner}");
    assert!(w2_banner.contains("serve-worker w2"), "{w2_banner}");

    // both workers on the ring before the burst, so both own arcs
    let both_registered = wait_for(Duration::from_secs(30), || {
        matches!(http_get(admin_addr, "/workers"),
            Ok((200, body)) if body.matches("\"worker_id\"").count() == 2)
    });
    assert!(both_registered, "both workers never registered");

    let reqs = requests();
    let mut client =
        ClusterClient::connect(&client_addr, Duration::from_secs(5)).expect("client connects");
    client.set_reply_timeout(Some(Duration::from_secs(60))).expect("timeout set");
    let mut ids = Vec::with_capacity(reqs.len());
    for req in &reqs {
        ids.push(client.submit(req.clone()).expect("submit"));
    }

    // read a sliver of the burst, then SIGKILL w2 with most of its shard
    // still queued or on the wire
    let kill_after = reqs.len() / 10;
    let mut by_id: BTreeMap<u64, bool> = BTreeMap::new();
    let mut victim = Some(w2);
    while by_id.len() < reqs.len() {
        let (id, reply) = client.next_reply().expect("reply within timeout");
        assert!(
            by_id.insert(id, reply.is_ok()).is_none(),
            "request {id} answered twice"
        );
        if by_id.len() >= kill_after {
            if let Some(mut w2) = victim.take() {
                w2.0.kill().expect("SIGKILL w2");
                let _ = w2.0.wait();
            }
        }
    }
    assert!(victim.is_none(), "the kill never happened");
    for id in &ids {
        assert_eq!(by_id.get(id), Some(&true), "request {id} missing or failed");
    }

    // the scheduler noticed: w2 evicted, its work requeued, one member left
    let (status, exposition) = http_get(admin_addr, "/metrics").expect("metrics scrape");
    assert_eq!(status, 200);
    let requeued = metric_value(&exposition, "cluster_requeued_all_total").expect("requeued family");
    let reaped = metric_value(&exposition, "cluster_reaped_workers_all_total").expect("reaped family");
    assert!(requeued >= 1, "SIGKILL requeued nothing:\n{exposition}");
    assert!(reaped >= 1, "w2 was never evicted:\n{exposition}");
    let (status, members) = http_get(admin_addr, "/workers").expect("workers scrape");
    assert_eq!(status, 200);
    assert_eq!(
        members.matches("\"worker_id\"").count(),
        1,
        "member table should hold only the survivor: {members}"
    );
    assert!(members.contains("\"w1\""), "{members}");
}
