//! The hard version of the requeue pin: real processes, a real SIGKILL.
//!
//! Boots `serve-scheduler` and two `serve-worker` processes, floods the
//! scheduler with a burst, SIGKILLs one worker mid-burst, and requires
//! that every request is answered exactly once anyway — the killed
//! worker's queued and in-flight work requeues to the survivor through
//! eviction (control-connection loss and forward IO errors both fire
//! within milliseconds of the kill; the heartbeat reaper is the backstop).

use serve::admin::{http_get, http_post};
use serve::proto::ClusterClient;
use serve::QueryRequest;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CORPUS_SEED: u64 = 11;
const METHODS: [&str; 2] = ["C3SQL", "DINSQL"];

/// Kills the child on drop so a failing assert never leaks processes.
struct Proc(Child);

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawn a binary, read its first stdout line (the "listening" line).
fn spawn_with_banner(mut cmd: Command) -> (Proc, String) {
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("binary spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("banner line");
    (Proc(child), line.trim().to_string())
}

/// Pull `key=value` out of a banner line.
fn banner_field(line: &str, key: &str) -> String {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in banner {line:?}"))
        .to_string()
}

fn requests() -> Vec<QueryRequest> {
    let corpus =
        datagen::generate_corpus(datagen::CorpusKind::Spider, &datagen::CorpusConfig::tiny(CORPUS_SEED));
    let mut out = Vec::new();
    for method in METHODS {
        for sample in &corpus.dev {
            for question in &sample.variants {
                out.push(QueryRequest {
                    method: method.to_string(),
                    db_id: sample.db_id.clone(),
                    question: question.clone(),
                    deadline: None,
                    trace: None,
                });
            }
        }
    }
    out
}

fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let started = Instant::now();
    while started.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    cond()
}

/// Extract a counter's value from a Prometheus exposition.
fn metric_value(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix(' '))
            .and_then(|v| v.trim().parse().ok())
    })
}

#[test]
fn sigkilled_workers_requeue_and_every_request_answers_exactly_once() {
    // scheduler first; tight reaper timings keep the heartbeat backstop
    // relevant inside the test budget
    let mut sched_cmd = Command::new(env!("CARGO_BIN_EXE_serve-scheduler"));
    sched_cmd.args([
        "--listen", "127.0.0.1:0",
        "--admin", "127.0.0.1:0",
        "--heartbeat-timeout-ms", "800",
        "--reap-interval-ms", "100",
        // tracing + warehouse on: the SIGKILL pin below reads the
        // requeue hop back out of the scheduler's own trace tables
        "--warehouse",
    ]);
    let (_sched, sched_banner) = spawn_with_banner(sched_cmd);
    let client_addr = banner_field(&sched_banner, "client");
    let admin_addr: SocketAddr =
        banner_field(&sched_banner, "admin").parse().expect("admin addr parses");

    let spawn_worker = |id: &str| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve-worker"));
        cmd.args([
            "--scheduler", &client_addr,
            "--id", id,
            "--corpus-seed", &CORPUS_SEED.to_string(),
            "--methods", &METHODS.join(","),
            "--workers", "2",
            "--queue", "1024",
            "--heartbeat-ms", "150",
            "--trace",
        ]);
        spawn_with_banner(cmd)
    };
    let (_w1, w1_banner) = spawn_worker("w1");
    let (w2, w2_banner) = spawn_worker("w2");
    assert!(w1_banner.contains("serve-worker w1"), "{w1_banner}");
    assert!(w2_banner.contains("serve-worker w2"), "{w2_banner}");

    // both workers on the ring before the burst, so both own arcs
    let both_registered = wait_for(Duration::from_secs(30), || {
        matches!(http_get(admin_addr, "/workers"),
            Ok((200, body)) if body.matches("\"worker_id\"").count() == 2)
    });
    assert!(both_registered, "both workers never registered");

    let reqs = requests();
    let mut client =
        ClusterClient::connect(&client_addr, Duration::from_secs(5)).expect("client connects");
    client.set_reply_timeout(Some(Duration::from_secs(60))).expect("timeout set");
    let mut ids = Vec::with_capacity(reqs.len());
    for req in &reqs {
        ids.push(client.submit(req.clone()).expect("submit"));
    }

    // read a sliver of the burst, then SIGKILL w2 with most of its shard
    // still queued or on the wire
    let kill_after = reqs.len() / 10;
    let mut by_id: BTreeMap<u64, bool> = BTreeMap::new();
    let mut victim = Some(w2);
    while by_id.len() < reqs.len() {
        let (id, reply) = client.next_reply().expect("reply within timeout");
        assert!(
            by_id.insert(id, reply.is_ok()).is_none(),
            "request {id} answered twice"
        );
        if by_id.len() >= kill_after {
            if let Some(mut w2) = victim.take() {
                w2.0.kill().expect("SIGKILL w2");
                let _ = w2.0.wait();
            }
        }
    }
    assert!(victim.is_none(), "the kill never happened");
    for id in &ids {
        assert_eq!(by_id.get(id), Some(&true), "request {id} missing or failed");
    }

    // the scheduler noticed: w2 evicted, its work requeued, one member left
    let (status, exposition) = http_get(admin_addr, "/metrics").expect("metrics scrape");
    assert_eq!(status, 200);
    let requeued = metric_value(&exposition, "cluster_requeued_all_total").expect("requeued family");
    let reaped = metric_value(&exposition, "cluster_reaped_workers_all_total").expect("reaped family");
    assert!(requeued >= 1, "SIGKILL requeued nothing:\n{exposition}");
    assert!(reaped >= 1, "w2 was never evicted:\n{exposition}");
    let (status, members) = http_get(admin_addr, "/workers").expect("workers scrape");
    assert_eq!(status, 200);
    assert_eq!(
        members.matches("\"worker_id\"").count(),
        1,
        "member table should hold only the survivor: {members}"
    );
    assert!(members.contains("\"w1\""), "{members}");

    // The requeued requests left a paper trail. Wait out the warehouse
    // flusher, then pull one requeued trace id back out over SQL.
    let sql = |query: &str| -> serde::Value {
        let body = format!("{{\"sql\":\"{query}\"}}");
        let (status, reply) = http_post(admin_addr, "/v1/sql", &body).expect("warehouse query");
        assert_eq!(status, 200, "{reply}");
        serde_json::from_str(&reply).expect("warehouse reply parses")
    };
    let first_cell = |v: &serde::Value| -> Option<serde::Value> {
        match v.get("rows") {
            Some(serde::Value::Array(rows)) => match rows.first() {
                Some(serde::Value::Array(cells)) => cells.first().cloned(),
                _ => None,
            },
            _ => None,
        }
    };
    let mut requeued_trace = None;
    wait_for(Duration::from_secs(10), || {
        let v = sql("SELECT trace_id FROM trace_spans WHERE name = 'sched.requeue'");
        match first_cell(&v) {
            Some(serde::Value::Str(hex)) => {
                requeued_trace = Some(hex);
                true
            }
            _ => false,
        }
    });
    let hex = requeued_trace.expect("no requeued trace reached the warehouse");

    // Exactly ONE complete trace: one scheduler root, one successful
    // worker execution subtree — the killed worker's partial attempt
    // died with its connection and never merged.
    let count_where = |cond: &str| -> i64 {
        let v = sql(&format!(
            "SELECT COUNT(*) FROM trace_spans WHERE trace_id = '{hex}' AND {cond}"
        ));
        match first_cell(&v) {
            Some(serde::Value::Int(n)) => n,
            other => panic!("expected a count, got {other:?}"),
        }
    };
    assert_eq!(count_where("name = 'sched.request'"), 1, "one root for trace {hex}");
    assert_eq!(count_where("name = 'request'"), 1, "one worker subtree for trace {hex}");
    assert!(count_where("name = 'sched.requeue'") >= 1, "retry hop missing from {hex}");
    assert_eq!(
        count_where("name = 'request' AND process = 'w1'"),
        1,
        "the surviving worker must own the execution subtree of {hex}"
    );

    // and the assembled tree is served back over the trace endpoint
    let (status, tree) =
        http_get(admin_addr, &format!("/v1/traces/{hex}")).expect("trace fetch");
    assert_eq!(status, 200, "{tree}");
    assert!(tree.contains("sched.requeue"), "retry hop missing from the tree: {tree}");
}
