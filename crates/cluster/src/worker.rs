//! The worker: the unmodified in-process serve engine behind a TCP face.
//!
//! [`Worker::run`] regenerates the corpus from its seed (generation is
//! deterministic, so every worker started with the same seed serves the
//! same question set), starts [`serve::Service`] with the registry's
//! simulated models, and layers two things on top inside the service
//! scope:
//!
//! * an **Execute listener**: each scheduler forwarder connection gets a
//!   thread that reads [`Execute`](Message::Execute) frames and answers
//!   them through the same [`ServiceHandle::query`] an in-process caller
//!   uses — which is the whole byte-identical-outcomes argument: there is
//!   no second serving path to diverge;
//! * a **registration/heartbeat loop**: dial the scheduler, send
//!   [`Register`](Message::Register), then report
//!   [`ServiceHandle::readiness`] (ready flag + `/readyz` failure body),
//!   queue depth, and completed count every interval. A dropped control
//!   connection (scheduler restart, or eviction closing it) triggers
//!   re-registration after a backoff.
//!
//! Everything runs in the service's thread scope, so a worker shuts down
//! exactly like the in-process service: stop flag, drain, join.

use serve::proto::{write_frame, Message};
use serve::{QueryReply, ServeConfig, Service, ServiceHandle};
use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Worker tunables.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Stable identity; re-registering under the same id replaces the
    /// previous incarnation at the scheduler.
    pub worker_id: String,
    /// The scheduler's client/control address to register with.
    pub scheduler: String,
    /// Where to accept Execute connections (loopback; port 0 works).
    pub listen: SocketAddr,
    /// Corpus generation seed — must match the clients' corpus, or every
    /// question is [`UnknownQuestion`](serve::QueryError::UnknownQuestion).
    pub corpus_seed: u64,
    /// Corpus family to generate.
    pub corpus_kind: datagen::CorpusKind,
    /// Override the tiny preset's dev-split size (`None` keeps the
    /// preset). Benchmarks use this to stretch the request stream into a
    /// timing window long enough for stable overhead ratios.
    pub corpus_dev_samples: Option<usize>,
    /// Methods to serve (modelzoo registry names).
    pub methods: Vec<String>,
    /// The embedded in-process engine's config.
    pub serve: ServeConfig,
    /// Heartbeat interval.
    pub heartbeat: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker_id: "w0".to_string(),
            scheduler: "127.0.0.1:4800".to_string(),
            listen: "127.0.0.1:0".parse().expect("loopback literal parses"),
            corpus_seed: 7,
            corpus_kind: datagen::CorpusKind::Spider,
            corpus_dev_samples: None,
            methods: vec![
                "C3SQL".to_string(),
                "DINSQL".to_string(),
                "DAILSQL(SC)".to_string(),
                "SuperSQL".to_string(),
            ],
            serve: ServeConfig::default(),
            heartbeat: Duration::from_millis(500),
        }
    }
}

/// What the run closure sees about its worker.
pub struct WorkerRuntime<'a> {
    /// Bound Execute-listener address (the `serve_addr` sent in Register).
    pub serve_addr: SocketAddr,
    /// The embedded engine's admin endpoint, when configured.
    pub admin_addr: Option<SocketAddr>,
    stop: &'a AtomicBool,
}

impl WorkerRuntime<'_> {
    /// Ask the worker's loops (listener, heartbeat) to wind down without
    /// waiting for the closure to return.
    pub fn begin_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// The worker's scoped-run entry point.
pub struct Worker;

impl Worker {
    /// Run a worker; returns the closure's result. The closure returning
    /// stops the listener and heartbeat, then drains the embedded
    /// service.
    ///
    /// # Panics
    /// Panics when the Execute listener cannot bind, or on an invalid
    /// embedded serve config / unknown method (like [`Service::run`]).
    pub fn run<R>(config: WorkerConfig, f: impl FnOnce(&WorkerRuntime<'_>) -> R) -> R {
        let mut corpus_config = datagen::CorpusConfig::tiny(config.corpus_seed);
        if let Some(n) = config.corpus_dev_samples {
            corpus_config.dev_samples = n;
        }
        let corpus = datagen::generate_corpus(config.corpus_kind, &corpus_config);
        let ctx = nl2sql360::EvalContext::new(&corpus);
        let methods: Vec<&str> = config.methods.iter().map(String::as_str).collect();
        let mut serve_config = config.serve.clone();
        // Spans should say *which* worker executed, and distinct labels
        // keep two workers' span-id ranges disjoint within one trace; only
        // an explicit override beats the worker id.
        if serve_config.trace_process == "serve" {
            serve_config.trace_process = config.worker_id.clone();
        }
        Service::run_with_methods(serve_config, &ctx, &methods, |handle| {
            let listener = TcpListener::bind(config.listen)
                .unwrap_or_else(|e| panic!("bind worker listener {}: {e}", config.listen));
            listener.set_nonblocking(true).expect("worker listener nonblocking");
            let serve_addr = listener.local_addr().expect("worker listener has an addr");
            let stop = AtomicBool::new(false);
            crossbeam::thread::scope(|scope| {
                let stop_ref = &stop;
                let config_ref = &config;
                scope.spawn(move |scope| {
                    // accept loop: one scoped thread per scheduler
                    // forwarder connection, all joined before the service
                    // drains
                    loop {
                        match listener.accept() {
                            Ok((stream, _)) => {
                                scope.spawn(move |_| execute_connection(stream, handle, stop_ref));
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                                if stop_ref.load(Ordering::SeqCst) {
                                    return;
                                }
                                std::thread::sleep(ACCEPT_POLL);
                            }
                            Err(_) => {
                                if stop_ref.load(Ordering::SeqCst) {
                                    return;
                                }
                                std::thread::sleep(ACCEPT_POLL);
                            }
                        }
                    }
                });
                scope.spawn(move |_| heartbeat_loop(config_ref, handle, serve_addr, stop_ref));
                let runtime = WorkerRuntime {
                    serve_addr,
                    admin_addr: handle.admin_addr(),
                    stop: stop_ref,
                };
                let out = f(&runtime);
                stop.store(true, Ordering::SeqCst);
                out
            })
            .expect("worker thread panicked")
        })
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Granularity at which blocked reads re-check the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// One scheduler forwarder stream: serial Execute → query → ExecuteResult.
fn execute_connection(mut stream: TcpStream, handle: &ServiceHandle<'_>, stop: &AtomicBool) {
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_frame_interruptible(&mut stream, stop, &mut buf) {
            Ok(Some(Message::Execute { id, request })) => {
                // The forwarded trace context names the trace this worker's
                // engine adopted; query() completes the trace before
                // replying, so its spans are readable here and ship back on
                // the result frame for the scheduler to merge.
                let trace_hex = request.trace.as_ref().map(|t| t.trace_id.clone());
                let reply: QueryReply = handle.query(request);
                let spans = trace_hex
                    .and_then(|hex| handle.trace_spans(&hex))
                    .unwrap_or_default();
                if write_frame(&mut stream, &Message::ExecuteResult { id, reply, spans }).is_err() {
                    return;
                }
            }
            // wrong frame kind, peer gone, or stop requested: drop the
            // connection; the scheduler treats that as this worker failing
            // and requeues, so never answer garbage with garbage
            Ok(Some(_)) | Ok(None) | Err(_) => return,
        }
    }
}

/// Like [`serve::proto::read_frame`], but interruptible: short read
/// timeouts poll the stop flag *without losing partial bytes* (a plain
/// `read_exact` under a timeout may drop a partial header and desync the
/// stream). `Ok(None)` means stop was requested between frames.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    buf: &mut Vec<u8>,
) -> io::Result<Option<Message>> {
    let mut chunk = [0u8; 4096];
    loop {
        if buf.len() >= 4 {
            let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > serve::proto::MAX_FRAME {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("frame length {len} exceeds MAX_FRAME (desynced stream?)"),
                ));
            }
            if buf.len() >= 4 + len {
                let frame: Vec<u8> = buf.drain(..4 + len).collect();
                let mut reader: &[u8] = &frame;
                return serve::proto::read_frame(&mut reader).map(Some);
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(io::Error::new(ErrorKind::UnexpectedEof, "peer closed"));
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Register, then heartbeat until stopped; reconnect (and re-register)
/// with a backoff when the control connection drops.
fn heartbeat_loop(
    config: &WorkerConfig,
    handle: &ServiceHandle<'_>,
    serve_addr: SocketAddr,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::SeqCst) {
        match register(config, serve_addr) {
            Ok(mut stream) => {
                loop {
                    if !sleep_until(config.heartbeat, stop) {
                        return;
                    }
                    let (ready, reason) = match handle.readiness() {
                        Ok(()) => (true, None),
                        Err(why) => (false, Some(why)),
                    };
                    let beat = Message::Heartbeat {
                        worker_id: config.worker_id.clone(),
                        ready,
                        reason,
                        queue_depth: handle.queue_len() as u64,
                        completed: handle.metrics().completed,
                    };
                    if write_frame(&mut stream, &beat).is_err() {
                        // evicted or scheduler restarted: register afresh
                        break;
                    }
                }
            }
            Err(_) => {
                // scheduler not up (yet): retry after one interval
                if !sleep_until(config.heartbeat, stop) {
                    return;
                }
            }
        }
    }
}

fn register(config: &WorkerConfig, serve_addr: SocketAddr) -> io::Result<TcpStream> {
    let parsed: SocketAddr = config
        .scheduler
        .parse()
        .map_err(|e| io::Error::new(ErrorKind::InvalidInput, format!("{}: {e}", config.scheduler)))?;
    let mut stream = TcpStream::connect_timeout(&parsed, Duration::from_secs(2))?;
    stream.set_nodelay(true)?;
    write_frame(
        &mut stream,
        &Message::Register {
            worker_id: config.worker_id.clone(),
            serve_addr: serve_addr.to_string(),
            methods: config.methods.clone(),
        },
    )?;
    Ok(stream)
}

/// Sleep `d` in small slices, bailing early (returning false) on stop.
fn sleep_until(d: Duration, stop: &AtomicBool) -> bool {
    let slice = Duration::from_millis(50);
    let mut left = d;
    while left > Duration::ZERO {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        let step = left.min(slice);
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
    !stop.load(Ordering::SeqCst)
}

/// Block until a condition holds or a deadline passes; a test helper for
/// "worker registered", "N replies arrived" style waits.
pub fn wait_for(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let started = std::time::Instant::now();
    while started.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cond()
}
