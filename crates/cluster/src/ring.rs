//! Consistent-hash ring over worker ids.
//!
//! Each worker contributes `vnodes` points at
//! `fnv1a64("{worker_id}#{vnode}")`; a key is owned by the first point at
//! or clockwise after its hash (wrapping). The hash is the shared
//! [`serve::hash`] FNV-1a, so ring placement is stable across processes
//! and across scheduler restarts — no process-seeded hasher anywhere in
//! the routing path.
//!
//! Why a ring instead of `hash % n`: when a worker joins or is reaped,
//! only the keys in its arcs move. Every other `(db_id, question)` keeps
//! its owner, which keeps the surviving workers' execution caches hot —
//! the whole point of sharding by key in the first place.

use serve::hash::fnv1a64;

/// Default virtual nodes per worker; enough to keep the largest/smallest
/// arc ratio low at single-digit worker counts.
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64 finalizer. FNV-1a is a fine bucket hash (its low bits mix
/// well, which is all `shard_index` needs) but its high bits barely
/// avalanche for short, similar strings — and ring placement compares
/// *full* 64-bit values, where that skew turns into arcs differing by
/// 10x+. Running both the vnode points and the lookup key through the
/// same finalizer restores uniformity without touching the pinned
/// [`serve::hash`] values.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Immutable consistent-hash ring; rebuild on membership change (member
/// sets are tiny — a rebuild is microseconds, and immutability means the
/// routing lock never covers hashing).
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// `(point, index into ids)`, sorted by point.
    points: Vec<(u64, u32)>,
    ids: Vec<String>,
}

impl Ring {
    /// Build a ring from worker ids (order-insensitive: ids are sorted and
    /// deduped, so any permutation of the same member set yields the same
    /// ring).
    pub fn build<S: AsRef<str>>(worker_ids: &[S], vnodes: usize) -> Ring {
        let mut ids: Vec<String> =
            worker_ids.iter().map(|s| s.as_ref().to_string()).collect();
        ids.sort();
        ids.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(ids.len() * vnodes);
        for (idx, id) in ids.iter().enumerate() {
            for v in 0..vnodes {
                points.push((mix64(fnv1a64(&format!("{id}#{v}"))), idx as u32));
            }
        }
        // Sorting (point, idx) pairs breaks point collisions by sorted-id
        // index, keeping ownership deterministic even on a hash tie.
        points.sort_unstable();
        Ring { points, ids }
    }

    /// Number of distinct workers on the ring.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the ring has no workers.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The worker owning `key` (a [`serve::hash::key_hash`] value), or
    /// `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let key = mix64(key);
        let i = self.points.partition_point(|&(h, _)| h < key);
        let (_, idx) = self.points[if i == self.points.len() { 0 } else { i }];
        Some(&self.ids[idx as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serve::hash::key_hash;

    fn keys(n: usize) -> Vec<u64> {
        (0..n).map(|i| key_hash(&format!("db_{}", i % 7), &format!("question {i}"))).collect()
    }

    #[test]
    fn single_worker_owns_everything() {
        let ring = Ring::build(&["w0"], DEFAULT_VNODES);
        for k in keys(100) {
            assert_eq!(ring.owner(k), Some("w0"));
        }
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::build::<&str>(&[], DEFAULT_VNODES);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }

    #[test]
    fn membership_order_is_irrelevant() {
        let a = Ring::build(&["w2", "w0", "w1"], DEFAULT_VNODES);
        let b = Ring::build(&["w0", "w1", "w2", "w2"], DEFAULT_VNODES);
        for k in keys(1000) {
            assert_eq!(a.owner(k), b.owner(k));
        }
    }

    #[test]
    fn removal_only_moves_the_removed_workers_keys() {
        let full = Ring::build(&["w0", "w1", "w2"], DEFAULT_VNODES);
        let without_w1 = Ring::build(&["w0", "w2"], DEFAULT_VNODES);
        let mut moved = 0usize;
        let ks = keys(2000);
        for &k in &ks {
            let before = full.owner(k).unwrap();
            let after = without_w1.owner(k).unwrap();
            if before == "w1" {
                moved += 1;
                assert_ne!(after, "w1");
            } else {
                // the consistent-hash property: survivors keep their keys
                assert_eq!(before, after);
            }
        }
        assert!(moved > 0, "w1 owned none of {} keys", ks.len());
    }

    #[test]
    fn vnodes_spread_load_roughly_evenly() {
        let ring = Ring::build(&["w0", "w1", "w2"], DEFAULT_VNODES);
        let mut counts = std::collections::HashMap::new();
        let ks = keys(12_000);
        for &k in &ks {
            *counts.entry(ring.owner(k).unwrap().to_string()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for (id, n) in &counts {
            // loose bound: each worker gets at least 10% of a fair share's
            // triple, i.e. no worker is starved or hoards the ring
            assert!(
                *n > ks.len() / 10 && *n < ks.len() * 6 / 10,
                "worker {id} owns {n}/{} keys",
                ks.len()
            );
        }
    }

    #[test]
    fn ring_points_are_pinned_to_the_shared_hash() {
        // routing stability across processes depends on points being
        // exactly mix64(fnv1a64("{id}#{vnode}")); pin one point's placement
        let ring = Ring::build(&["w0"], 1);
        assert_eq!(ring.points.len(), 1);
        assert_eq!(ring.points[0].0, mix64(fnv1a64("w0#0")));
    }

    #[test]
    fn mix64_is_a_bijective_finalizer_with_pinned_values() {
        // pinned so a future "optimization" cannot silently re-shard every
        // key (which would cold every worker cache on upgrade)
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0x5692_161d_100b_05e5);
        assert_eq!(mix64(fnv1a64("w0#0")), mix64(fnv1a64("w0#0")));
        assert_ne!(mix64(fnv1a64("w0#0")), mix64(fnv1a64("w0#1")));
    }
}
