//! The scheduler: client front door, membership, routing, and the reaper.
//!
//! One loopback TCP listener serves both audiences — the first frame on a
//! connection decides its role. A [`Register`] makes it a worker control
//! connection (heartbeats flow in, eviction closes it); a [`Submit`]
//! makes it a client connection (requests flow in, replies flow out,
//! matched by id).
//!
//! Routing: each request hashes to `key_hash(db_id, question)` and the
//! consistent-hash [`Ring`](crate::ring::Ring) over *ready* workers picks
//! the owner. Jobs queue per worker; a small pool of forwarder streams
//! per worker (serial request/reply each) drains the queue over TCP.
//! When no worker is ready, jobs wait in a scheduler-wide pending queue
//! and are re-dispatched the moment a worker registers or turns ready —
//! so clients may connect and submit before any worker exists.
//!
//! Exactly-once replies, structurally: every job the scheduler has
//! accepted lives in exactly one place — a worker queue, a forwarder's
//! in-flight slot (`Option<Job>`), the pending queue, or (terminally) its
//! reply channel. Success takes the job from its slot and answers it; an
//! eviction takes whatever the dead worker held and requeues it through
//! the same dispatch path with a bumped attempt count; bounded retries
//! end in an [`Internal`](QueryError::Internal) reply rather than
//! silence. Two takers can never both win a slot, so the client sees
//! exactly one reply per id no matter how the worker died.
//!
//! Failure detection is layered: a forward IO error or a control-
//! connection EOF evicts immediately (a SIGKILLed worker's sockets close
//! right away), and the reaper sweeps on heartbeat silence (strictly
//! `now - last_heartbeat > timeout`) for workers that wedge without
//! dying. The eviction log line carries the worker's last self-reported
//! `/readyz` reason, so "died while saturated" and "died while draining"
//! are distinguishable post-mortem.

use crate::admin;
use crate::ring::Ring;
use crossbeam::channel;
use obs::registry::{Counter, CounterVec, Gauge, HistogramVec, Registry};
use serde::Serialize;
use serve::proto::{read_frame, write_frame, Message};
use serve::trace::{format_trace_id, SpanRecord, TraceStore};
use serve::{hash, QueryError, QueryRequest, QueryReply, TraceContext};
use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Scheduler tunables; `Default` suits tests and the bin's defaults.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Client + worker-control listener (loopback; port 0 = ephemeral).
    pub listen: SocketAddr,
    /// Admin HTTP endpoint (`/metrics`, `/workers`, ...); `None` = none.
    pub admin_addr: Option<SocketAddr>,
    /// Evict a worker after this much heartbeat silence (strictly more).
    pub heartbeat_timeout: Duration,
    /// How often the reaper sweeps for silent workers.
    pub reap_interval: Duration,
    /// Total forward attempts per request (first try + retries) before
    /// the scheduler gives up with [`QueryError::Internal`].
    pub max_attempts: u32,
    /// Concurrent forwarder connections per worker; each carries one
    /// request at a time, so this bounds scheduler-side in-flight work
    /// per worker (and with it, the worst-case requeue burst).
    pub streams_per_worker: usize,
    /// Virtual nodes per worker on the routing ring.
    pub vnodes: usize,
    /// Read deadline for one forwarded request's reply; a worker that
    /// holds a stream longer is treated as failed on that stream.
    pub forward_timeout: Duration,
    /// Mint a `trace_id` per submitted request, record the scheduler's
    /// own routing spans (`sched.request`/`sched.forward`/`sched.requeue`),
    /// forward the context to workers, and merge the worker-side spans
    /// shipped back on `ExecuteResult` frames into one cross-process tree,
    /// served on the admin `GET /v1/traces/<id>`. Off by default.
    pub request_tracing: bool,
    /// Traces the scheduler's in-memory store retains before evicting.
    pub trace_capacity: usize,
    /// Run the scheduler's telemetry warehouse: completed span trees into
    /// `trace_spans` and periodic cluster-metrics snapshots into
    /// `metrics_history`, queryable through the admin `POST /v1/sql` raw
    /// arm. Off by default.
    pub warehouse: bool,
    /// Warehouse flush interval, milliseconds.
    pub warehouse_flush_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            listen: loopback_any(),
            admin_addr: None,
            heartbeat_timeout: Duration::from_secs(3),
            reap_interval: Duration::from_millis(250),
            max_attempts: 3,
            streams_per_worker: 2,
            vnodes: crate::ring::DEFAULT_VNODES,
            forward_timeout: Duration::from_secs(30),
            request_tracing: false,
            trace_capacity: 1024,
            warehouse: false,
            warehouse_flush_ms: 250,
        }
    }
}

fn loopback_any() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback literal parses")
}

/// One routed request. A job is always owned by exactly one container
/// (worker queue / in-flight slot / pending queue) until it is answered.
struct Job {
    /// The client's id on its connection; echoed in the reply frame.
    client_id: u64,
    request: QueryRequest,
    /// `key_hash(db_id, question)` — computed once at admission.
    shard: u64,
    /// Forward attempts consumed so far.
    attempts: u32,
    /// Where the reply goes: the client connection's writer (TCP) or the
    /// embedded caller's channel.
    reply: channel::Sender<(u64, QueryReply)>,
    /// Trace id minted at admission; 0 when tracing is off.
    trace_id: u64,
    /// The `sched.request` root span every hop of this job parents to.
    root_span: u64,
    /// When the scheduler accepted the job (root span start).
    accepted: Instant,
}

struct WorkerQueueState {
    queue: VecDeque<Job>,
    /// One slot per forwarder stream; `Some` while that stream has a
    /// request on the wire.
    in_flight: Vec<Option<Job>>,
    /// Set by eviction; forwarders drain out and refuse new work.
    dead: bool,
}

struct WorkerQueue {
    state: Mutex<WorkerQueueState>,
    not_empty: Condvar,
}

impl WorkerQueue {
    fn new(streams: usize) -> Arc<WorkerQueue> {
        Arc::new(WorkerQueue {
            state: Mutex::new(WorkerQueueState {
                queue: VecDeque::new(),
                in_flight: (0..streams).map(|_| None).collect(),
                dead: false,
            }),
            not_empty: Condvar::new(),
        })
    }
}

struct Member {
    serve_addr: String,
    /// Monotonic incarnation number; a re-registration under the same
    /// worker id gets a new generation, and evictions/heartbeats against
    /// a stale generation are no-ops (the ABA guard for worker restarts).
    generation: u64,
    /// Milliseconds on the scheduler clock; registration counts as the
    /// first heartbeat.
    last_heartbeat_ms: u64,
    ready: bool,
    /// Last `/readyz` failure body the worker reported, kept after it
    /// turns ready again so eviction can say what the worker last
    /// complained about.
    last_reason: Option<String>,
    queue_depth: u64,
    completed: u64,
    methods: Vec<String>,
    queue: Arc<WorkerQueue>,
}

struct Routing {
    members: HashMap<String, Member>,
    /// Ring over ready members only.
    ring: Ring,
    /// Jobs with no ready owner yet.
    pending: VecDeque<Job>,
    shutdown: bool,
}

/// Labeled + aggregate metric families for the scheduler's own plane.
pub(crate) struct ClusterMetrics {
    pub registry: Registry,
    pub submitted: Counter,
    pub forwarded: CounterVec,
    pub forwarded_all: Counter,
    pub requeued: CounterVec,
    pub requeued_all: Counter,
    pub reaped: CounterVec,
    pub reaped_all: Counter,
    pub retries_exhausted: Counter,
    pub replied: CounterVec,
    pub forward_latency: HistogramVec,
    pub workers_ready: Gauge,
    pub workers_total: Gauge,
    pub pending_depth: Gauge,
}

impl ClusterMetrics {
    fn new() -> ClusterMetrics {
        let registry = Registry::new();
        let submitted = registry
            .counter_vec("cluster_submitted_total", "Requests accepted for routing.", &[])
            .with(&[]);
        let forwarded = registry.counter_vec(
            "cluster_forwarded_total",
            "Requests answered through a worker, by worker id.",
            &["worker"],
        );
        let forwarded_all = registry
            .counter_vec("cluster_forwarded_all_total", "Requests answered through any worker.", &[])
            .with(&[]);
        let requeued = registry.counter_vec(
            "cluster_requeued_total",
            "Jobs taken back from a failed worker and re-dispatched, by worker id.",
            &["worker"],
        );
        let requeued_all = registry
            .counter_vec("cluster_requeued_all_total", "Jobs requeued from any worker.", &[])
            .with(&[]);
        let reaped = registry.counter_vec(
            "cluster_reaped_workers_total",
            "Worker evictions (heartbeat timeout, IO failure, or control-connection loss), by worker id.",
            &["worker"],
        );
        let reaped_all = registry
            .counter_vec("cluster_reaped_workers_all_total", "Worker evictions, any worker.", &[])
            .with(&[]);
        let retries_exhausted = registry
            .counter_vec(
                "cluster_retries_exhausted_total",
                "Jobs answered Internal after exhausting forward attempts.",
                &[],
            )
            .with(&[]);
        let replied = registry.counter_vec(
            "cluster_replied_total",
            "Replies delivered to clients, by outcome.",
            &["outcome"],
        );
        let forward_latency = registry.histogram_vec(
            "cluster_forward_latency_us",
            "Submit-to-reply forward latency through a worker, microseconds, by worker id.",
            &["worker"],
        );
        let workers_ready =
            registry.gauge_vec("cluster_workers_ready", "Registered workers currently ready.", &[]).with(&[]);
        let workers_total =
            registry.gauge_vec("cluster_workers_total", "Registered workers.", &[]).with(&[]);
        let pending_depth = registry
            .gauge_vec("cluster_pending_depth", "Jobs waiting with no ready owner.", &[])
            .with(&[]);
        ClusterMetrics {
            registry,
            submitted,
            forwarded,
            forwarded_all,
            requeued,
            requeued_all,
            reaped,
            reaped_all,
            retries_exhausted,
            replied,
            forward_latency,
            workers_ready,
            workers_total,
            pending_depth,
        }
    }
}

pub(crate) struct Inner {
    config: SchedulerConfig,
    routing: Mutex<Routing>,
    started: Instant,
    next_generation: AtomicU64,
    pub(crate) metrics: ClusterMetrics,
    pub(crate) stop: AtomicBool,
    listen_addr: SocketAddr,
    pub(crate) admin_addr: Option<SocketAddr>,
    /// Span store for the scheduler's own hops plus merged worker spans;
    /// `Some` iff `config.request_tracing`.
    pub(crate) traces: Option<TraceStore>,
    /// The scheduler's telemetry warehouse; `Some` iff `config.warehouse`.
    pub(crate) warehouse: Option<Mutex<nl2sql360::EvalStore>>,
}

/// Point-in-time view of one member, for `/workers` and tests.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerSnapshot {
    /// Worker id as registered.
    pub worker_id: String,
    /// Where the scheduler forwards this worker's work.
    pub serve_addr: String,
    /// Incarnation number of the current registration.
    pub generation: u64,
    /// Whether the worker last reported ready.
    pub ready: bool,
    /// Last `/readyz` failure reason the worker ever reported.
    pub last_reason: Option<String>,
    /// Milliseconds since the last heartbeat, on the scheduler clock.
    pub heartbeat_age_ms: u64,
    /// Scheduler-side jobs queued for this worker.
    pub scheduler_queue: usize,
    /// Scheduler-side jobs currently on the wire to this worker.
    pub in_flight: usize,
    /// The worker's own admission-queue depth, as last reported.
    pub worker_queue_depth: u64,
    /// Requests the worker reports having completed.
    pub completed: u64,
    /// Methods the worker registered with.
    pub methods: Vec<String>,
}

impl Inner {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Admit one request: hash, count, mint its trace, dispatch.
    pub(crate) fn submit_job(
        self: &Arc<Inner>,
        client_id: u64,
        reply: channel::Sender<(u64, QueryReply)>,
        request: QueryRequest,
    ) {
        let shard = hash::key_hash(&request.db_id, &request.question);
        self.metrics.submitted.inc();
        let (trace_id, root_span) = match &self.traces {
            Some(store) => {
                let id = store.mint(&request.db_id, &request.question, &request.method);
                (id, store.next_span_id())
            }
            None => (0, 0),
        };
        self.dispatch(Job {
            client_id,
            request,
            shard,
            attempts: 0,
            reply,
            trace_id,
            root_span,
            accepted: Instant::now(),
        });
    }

    /// Route a job to its ring owner's queue, or park it pending.
    fn dispatch(self: &Arc<Inner>, job: Job) {
        let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
        if routing.shutdown {
            self.answer(&job, Err(QueryError::Overloaded));
            return;
        }
        let owner = routing.ring.owner(job.shard).map(str::to_string);
        match owner.and_then(|id| routing.members.get(&id).map(|m| Arc::clone(&m.queue))) {
            Some(queue) => {
                let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
                if st.dead {
                    // lost a race with an eviction that has not rebuilt the
                    // ring yet; park the job, the next membership change
                    // re-dispatches it
                    drop(st);
                    routing.pending.push_back(job);
                } else {
                    st.queue.push_back(job);
                    drop(st);
                    queue.not_empty.notify_one();
                }
            }
            None => routing.pending.push_back(job),
        }
    }

    /// Deliver the terminal reply for a job, closing its root span first
    /// so a client holding the reply can already read the full trace.
    fn answer(&self, job: &Job, reply: QueryReply) {
        let outcome = if reply.is_ok() { "ok" } else { "error" };
        if let (Some(store), true) = (&self.traces, job.trace_id != 0) {
            store.record(
                job.trace_id,
                SpanRecord {
                    trace_id: format_trace_id(job.trace_id),
                    span_id: job.root_span,
                    parent_id: 0,
                    name: "sched.request".to_string(),
                    process: store.process().to_string(),
                    start_us: store.rel_us(job.accepted),
                    dur_us: job.accepted.elapsed().as_micros() as u64,
                    attrs: format!("outcome={outcome} attempts={}", job.attempts + 1),
                },
            );
            store.complete(job.trace_id);
        }
        self.metrics.replied.with(&[outcome]).inc();
        let _ = job.reply.send((job.client_id, reply));
    }

    /// Re-dispatch a job taken back from a failed worker; a job that has
    /// burned all its attempts is answered `Internal` instead of looping.
    fn requeue(self: &Arc<Inner>, mut job: Job) {
        job.attempts += 1;
        // the retry hop, visible in the trace as an instantaneous span
        if let (Some(store), true) = (&self.traces, job.trace_id != 0) {
            let now = Instant::now();
            store.record(
                job.trace_id,
                SpanRecord {
                    trace_id: format_trace_id(job.trace_id),
                    span_id: store.next_span_id(),
                    parent_id: job.root_span,
                    name: "sched.requeue".to_string(),
                    process: store.process().to_string(),
                    start_us: store.rel_us(now),
                    dur_us: 0,
                    attrs: format!("attempt={}", job.attempts),
                },
            );
        }
        if job.attempts >= self.config.max_attempts {
            self.metrics.retries_exhausted.inc();
            self.answer(&job, Err(QueryError::Internal));
            return;
        }
        self.dispatch(job);
    }

    /// Register (or re-register) a worker at an explicit clock reading.
    /// Returns the new generation. Public wrappers feed the real clock;
    /// tests feed edge-case timestamps.
    fn register_at(
        self: &Arc<Inner>,
        now_ms: u64,
        worker_id: &str,
        serve_addr: &str,
        methods: Vec<String>,
    ) -> u64 {
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed) + 1;
        let queue = WorkerQueue::new(self.config.streams_per_worker.max(1));
        let displaced = {
            let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            let member = Member {
                serve_addr: serve_addr.to_string(),
                generation,
                last_heartbeat_ms: now_ms,
                ready: true,
                last_reason: None,
                queue_depth: 0,
                completed: 0,
                methods,
                queue: Arc::clone(&queue),
            };
            let displaced = routing
                .members
                .insert(worker_id.to_string(), member)
                .map(|old| self.kill_queue(&old.queue));
            self.rebuild_ring(&mut routing);
            let pending: Vec<Job> = routing.pending.drain(..).collect();
            drop(routing);
            // re-dispatch parked work now that the ring changed
            for job in pending {
                self.dispatch(job);
            }
            displaced
        };
        // a replaced incarnation's leftovers retry elsewhere (often on the
        // new incarnation itself)
        if let Some(jobs) = displaced {
            for job in jobs {
                self.metrics.requeued.with(&[worker_id]).inc();
                self.metrics.requeued_all.inc();
                self.requeue(job);
            }
        }
        for slot in 0..self.config.streams_per_worker.max(1) {
            let inner = Arc::clone(self);
            let queue = Arc::clone(&queue);
            let worker_id = worker_id.to_string();
            let serve_addr = serve_addr.to_string();
            std::thread::spawn(move || {
                stream_loop(inner, worker_id, generation, serve_addr, queue, slot)
            });
        }
        generation
    }

    pub(crate) fn register(
        self: &Arc<Inner>,
        worker_id: &str,
        serve_addr: &str,
        methods: Vec<String>,
    ) -> u64 {
        self.register_at(self.now_ms(), worker_id, serve_addr, methods)
    }

    /// Apply a heartbeat at an explicit clock reading. Returns false when
    /// the (worker, generation) is no longer a member — the control
    /// connection should close so the worker re-registers.
    #[allow(clippy::too_many_arguments)]
    fn heartbeat_at(
        self: &Arc<Inner>,
        now_ms: u64,
        worker_id: &str,
        generation: u64,
        ready: bool,
        reason: Option<String>,
        queue_depth: u64,
        completed: u64,
    ) -> bool {
        let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
        let became_ready;
        match routing.members.get_mut(worker_id) {
            Some(m) if m.generation == generation => {
                m.last_heartbeat_ms = now_ms;
                became_ready = ready && !m.ready;
                let flipped = m.ready != ready;
                m.ready = ready;
                if let Some(r) = reason {
                    m.last_reason = Some(r);
                }
                m.queue_depth = queue_depth;
                m.completed = completed;
                if flipped {
                    self.rebuild_ring(&mut routing);
                }
            }
            _ => return false,
        }
        if became_ready {
            let pending: Vec<Job> = routing.pending.drain(..).collect();
            drop(routing);
            for job in pending {
                self.dispatch(job);
            }
        }
        true
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn heartbeat(
        self: &Arc<Inner>,
        worker_id: &str,
        generation: u64,
        ready: bool,
        reason: Option<String>,
        queue_depth: u64,
        completed: u64,
    ) -> bool {
        self.heartbeat_at(self.now_ms(), worker_id, generation, ready, reason, queue_depth, completed)
    }

    /// Mark a queue dead and take every job it still holds (queued and
    /// in-flight). Caller must requeue the returned jobs *after*
    /// releasing the routing lock.
    fn kill_queue(&self, queue: &Arc<WorkerQueue>) -> Vec<Job> {
        let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
        st.dead = true;
        let mut jobs: Vec<Job> = st.queue.drain(..).collect();
        for slot in st.in_flight.iter_mut() {
            if let Some(job) = slot.take() {
                jobs.push(job);
            }
        }
        drop(st);
        queue.not_empty.notify_all();
        jobs
    }

    /// Remove a member (generation-guarded) and requeue everything it
    /// held. Returns the eviction log line when the eviction happened, so
    /// callers print it and tests can assert on it.
    pub(crate) fn evict(self: &Arc<Inner>, worker_id: &str, generation: u64, why: &str) -> Option<String> {
        let (jobs, line) = {
            let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            match routing.members.get(worker_id) {
                Some(m) if m.generation == generation => {}
                _ => return None,
            }
            let member = routing.members.remove(worker_id).expect("member checked above");
            self.rebuild_ring(&mut routing);
            let jobs = self.kill_queue(&member.queue);
            let line = format!(
                "evicting worker {worker_id} (gen {generation}): {why}; requeueing {} job(s); last reported readiness: {}",
                jobs.len(),
                member.last_reason.as_deref().unwrap_or("never unready"),
            );
            (jobs, line)
        };
        self.metrics.reaped.with(&[worker_id]).inc();
        self.metrics.reaped_all.inc();
        for job in jobs {
            self.metrics.requeued.with(&[worker_id]).inc();
            self.metrics.requeued_all.inc();
            self.requeue(job);
        }
        Some(line)
    }

    /// One reaper sweep at an explicit clock reading: evict every member
    /// whose heartbeat silence strictly exceeds the timeout. Returns the
    /// eviction log lines.
    fn reap_at(self: &Arc<Inner>, now_ms: u64) -> Vec<String> {
        let timeout_ms = self.config.heartbeat_timeout.as_millis() as u64;
        let stale: Vec<(String, u64, u64)> = {
            let routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            routing
                .members
                .iter()
                .filter(|(_, m)| now_ms.saturating_sub(m.last_heartbeat_ms) > timeout_ms)
                .map(|(id, m)| (id.clone(), m.generation, now_ms.saturating_sub(m.last_heartbeat_ms)))
                .collect()
        };
        stale
            .into_iter()
            .filter_map(|(id, generation, silence)| {
                self.evict(&id, generation, &format!("heartbeat silence {silence}ms > {timeout_ms}ms"))
            })
            .collect()
    }

    /// Ring over ready members only; call with the routing lock held.
    fn rebuild_ring(&self, routing: &mut Routing) {
        let ready: Vec<&str> =
            routing.members.iter().filter(|(_, m)| m.ready).map(|(id, _)| id.as_str()).collect();
        routing.ring = Ring::build(&ready, self.config.vnodes);
    }

    pub(crate) fn refresh_gauges(&self) {
        let routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
        self.metrics.workers_total.set(routing.members.len() as u64);
        self.metrics.workers_ready.set(routing.members.values().filter(|m| m.ready).count() as u64);
        self.metrics.pending_depth.set(routing.pending.len() as u64);
    }

    pub(crate) fn workers(&self) -> Vec<WorkerSnapshot> {
        let now = self.now_ms();
        let routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<WorkerSnapshot> = routing
            .members
            .iter()
            .map(|(id, m)| {
                let st = m.queue.state.lock().unwrap_or_else(|e| e.into_inner());
                WorkerSnapshot {
                    worker_id: id.clone(),
                    serve_addr: m.serve_addr.clone(),
                    generation: m.generation,
                    ready: m.ready,
                    last_reason: m.last_reason.clone(),
                    heartbeat_age_ms: now.saturating_sub(m.last_heartbeat_ms),
                    scheduler_queue: st.queue.len(),
                    in_flight: st.in_flight.iter().filter(|s| s.is_some()).count(),
                    worker_queue_depth: m.queue_depth,
                    completed: m.completed,
                    methods: m.methods.clone(),
                }
            })
            .collect();
        out.sort_by(|a, b| a.worker_id.cmp(&b.worker_id));
        out
    }

    pub(crate) fn ready_workers(&self) -> usize {
        let routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
        routing.members.values().filter(|m| m.ready).count()
    }

    /// Begin shutdown: refuse new work, fail parked jobs, wake forwarders.
    fn shutdown(self: &Arc<Inner>) {
        self.stop.store(true, Ordering::SeqCst);
        let (pending, queues): (Vec<Job>, Vec<Arc<WorkerQueue>>) = {
            let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            routing.shutdown = true;
            (
                routing.pending.drain(..).collect(),
                routing.members.values().map(|m| Arc::clone(&m.queue)).collect(),
            )
        };
        for job in pending {
            self.answer(&job, Err(QueryError::Overloaded));
        }
        for queue in queues {
            queue.not_empty.notify_all();
        }
    }
}

/// One forwarder stream: serially take a job, put it in this stream's
/// in-flight slot, push it over TCP, then race the evictor for the slot.
fn stream_loop(
    inner: Arc<Inner>,
    worker_id: String,
    generation: u64,
    serve_addr: String,
    queue: Arc<WorkerQueue>,
    slot: usize,
) {
    let mut conn: Option<TcpStream> = None;
    let mut next_id: u64 = 0;
    loop {
        let job = {
            let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.dead {
                    return;
                }
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    // drained: nothing queued, nothing to wait for
                    return;
                }
                let (guard, _) = queue
                    .not_empty
                    .wait_timeout(st, Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        };
        let mut request = job.request.clone();
        let client_id = job.client_id;
        // Thread the trace across the process boundary: the worker's root
        // span parents to this forward hop's span, minted before the wire.
        let trace = (job.trace_id != 0)
            .then(|| inner.traces.as_ref())
            .flatten()
            .map(|store| (job.trace_id, job.root_span, job.attempts, store.next_span_id()));
        if let Some((trace_id, _, _, forward_span)) = &trace {
            request.trace =
                Some(TraceContext { trace_id: format_trace_id(*trace_id), parent_span: *forward_span });
        }
        {
            let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.dead {
                // eviction won the race between our pop and slot placement;
                // hand the job back through the normal retry path
                drop(st);
                inner.metrics.requeued.with(&[&worker_id]).inc();
                inner.metrics.requeued_all.inc();
                inner.requeue(job);
                return;
            }
            st.in_flight[slot] = Some(job);
        }
        let started = Instant::now();
        next_id += 1;
        match forward(&mut conn, &serve_addr, inner.config.forward_timeout, next_id, &request) {
            Ok((reply, worker_spans)) => {
                let taken = {
                    let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.in_flight[slot].take()
                };
                // a None slot means an eviction already took (and requeued)
                // the job; the requeued run answers the client, this result
                // is the duplicate and is dropped (its spans with it)
                if let Some(job) = taken {
                    if let (Some(store), Some((trace_id, root_span, attempts, forward_span))) =
                        (&inner.traces, &trace)
                    {
                        store.record(
                            *trace_id,
                            SpanRecord {
                                trace_id: format_trace_id(*trace_id),
                                span_id: *forward_span,
                                parent_id: *root_span,
                                name: "sched.forward".to_string(),
                                process: store.process().to_string(),
                                start_us: store.rel_us(started),
                                dur_us: started.elapsed().as_micros() as u64,
                                attrs: format!("worker={worker_id} attempt={}", attempts + 1),
                            },
                        );
                        store.merge(*trace_id, worker_spans);
                    }
                    inner.metrics.forwarded.with(&[&worker_id]).inc();
                    inner.metrics.forwarded_all.inc();
                    inner
                        .metrics
                        .forward_latency
                        .with(&[&worker_id])
                        .record(started.elapsed().as_micros() as u64);
                    inner.answer(&job, reply);
                }
            }
            Err(e) => {
                let taken = {
                    let mut st = queue.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.in_flight[slot].take()
                };
                // the failed hop still lands in the trace: this is what a
                // retry storm looks like when queried from the warehouse
                if let (Some(store), Some((trace_id, root_span, attempts, forward_span))) =
                    (&inner.traces, &trace)
                {
                    store.record(
                        *trace_id,
                        SpanRecord {
                            trace_id: format_trace_id(*trace_id),
                            span_id: *forward_span,
                            parent_id: *root_span,
                            name: "sched.forward".to_string(),
                            process: store.process().to_string(),
                            start_us: store.rel_us(started),
                            dur_us: started.elapsed().as_micros() as u64,
                            attrs: format!("worker={worker_id} attempt={} error=1", attempts + 1),
                        },
                    );
                }
                // an IO failure on loopback means the worker is gone;
                // evict it (no-op if another stream already did)
                if let Some(line) = inner.evict(
                    &worker_id,
                    generation,
                    &format!("forward to {serve_addr} failed for client request {client_id}: {e}"),
                ) {
                    eprintln!("serve-scheduler: {line}");
                }
                if let Some(job) = taken {
                    inner.metrics.requeued.with(&[&worker_id]).inc();
                    inner.metrics.requeued_all.inc();
                    inner.requeue(job);
                }
                return;
            }
        }
    }
}

/// Send one `Execute` and block for its `ExecuteResult` (reply plus the
/// worker-side spans to merge), dialing the worker lazily on first use.
fn forward(
    conn: &mut Option<TcpStream>,
    serve_addr: &str,
    timeout: Duration,
    id: u64,
    request: &QueryRequest,
) -> io::Result<(QueryReply, Vec<SpanRecord>)> {
    if conn.is_none() {
        let parsed: SocketAddr = serve_addr
            .parse()
            .map_err(|e| io::Error::new(ErrorKind::InvalidInput, format!("{serve_addr}: {e}")))?;
        let stream = TcpStream::connect_timeout(&parsed, Duration::from_secs(2))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        *conn = Some(stream);
    }
    let stream = conn.as_mut().expect("connection dialed above");
    write_frame(stream, &Message::Execute { id, request: request.clone() })?;
    match read_frame(stream)? {
        Message::ExecuteResult { id: got, reply, spans } if got == id => Ok((reply, spans)),
        other => Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("expected ExecuteResult {id}, got {other:?}"),
        )),
    }
}

/// Handle to a running scheduler, inside [`Scheduler::run`]'s closure.
pub struct SchedulerHandle {
    inner: Arc<Inner>,
}

impl SchedulerHandle {
    /// The bound client/control listener address.
    pub fn client_addr(&self) -> SocketAddr {
        self.inner.listen_addr
    }

    /// The bound admin endpoint, when configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.inner.admin_addr
    }

    /// Embedded closed-loop submit: route a request through the full
    /// scheduler path (ring, worker TCP, retries) and block for the
    /// reply. Tests use this to drive a cluster without a client socket.
    pub fn query(&self, request: QueryRequest) -> QueryReply {
        let (tx, rx) = channel::bounded(1);
        self.inner.submit_job(0, tx, request);
        match rx.recv() {
            Ok((_, reply)) => reply,
            Err(_) => Err(QueryError::Internal),
        }
    }

    /// Current member table.
    pub fn workers(&self) -> Vec<WorkerSnapshot> {
        self.inner.workers()
    }

    /// Registered workers currently ready.
    pub fn ready_workers(&self) -> usize {
        self.inner.ready_workers()
    }

    /// Total requests answered through any worker.
    pub fn forwarded_total(&self) -> u64 {
        self.inner.metrics.forwarded_all.get()
    }

    /// Total jobs taken back from failed workers and re-dispatched.
    pub fn requeued_total(&self) -> u64 {
        self.inner.metrics.requeued_all.get()
    }

    /// Total worker evictions.
    pub fn reaped_total(&self) -> u64 {
        self.inner.metrics.reaped_all.get()
    }

    /// The Prometheus text exposition `/metrics` would serve right now.
    pub fn metrics_text(&self) -> String {
        self.inner.refresh_gauges();
        self.inner.metrics.registry.render_prometheus()
    }

    /// All spans of one trace (external hex id) as held by the
    /// scheduler's store — its own hops plus the merged worker spans.
    /// `None` when tracing is off or the trace is unknown/evicted.
    pub fn trace_spans(&self, trace_id: &str) -> Option<Vec<SpanRecord>> {
        let store = self.inner.traces.as_ref()?;
        store.spans(serve::trace::parse_trace_id(trace_id)?)
    }

    /// Run raw SQL against the scheduler's telemetry warehouse; `None`
    /// when the warehouse is off.
    pub fn store_sql(&self, sql: &str) -> Option<Result<minidb::ResultSet, minidb::ExecError>> {
        self.inner
            .warehouse
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).sql(sql))
    }

    /// Force one warehouse flush right now (tests and scripts use this
    /// instead of sleeping out the flush interval).
    pub fn flush_warehouse(&self) {
        flush_warehouse_tick(&self.inner);
    }
}

/// The scheduler's scoped-run entry point, mirroring [`serve::Service`]:
/// bind, spawn the accept loop + reaper (+ admin), hand the closure a
/// [`SchedulerHandle`], and stop everything when the closure returns.
pub struct Scheduler;

impl Scheduler {
    /// Run a scheduler; returns the closure's result.
    ///
    /// # Panics
    /// Panics when a listener cannot bind.
    pub fn run<R>(config: SchedulerConfig, f: impl FnOnce(&SchedulerHandle) -> R) -> R {
        let listener = TcpListener::bind(config.listen)
            .unwrap_or_else(|e| panic!("bind scheduler listener {}: {e}", config.listen));
        listener.set_nonblocking(true).expect("scheduler listener nonblocking");
        let listen_addr = listener.local_addr().expect("scheduler listener has an addr");
        let admin_listener = config.admin_addr.map(|addr| {
            let l = TcpListener::bind(addr)
                .unwrap_or_else(|e| panic!("bind scheduler admin {addr}: {e}"));
            l.set_nonblocking(true).expect("admin listener nonblocking");
            l
        });
        let admin_addr =
            admin_listener.as_ref().map(|l| l.local_addr().expect("admin listener has an addr"));
        let started = Instant::now();
        let traces = config
            .request_tracing
            .then(|| TraceStore::new("sched", config.trace_capacity.max(1), started));
        let warehouse = config.warehouse.then(|| Mutex::new(nl2sql360::EvalStore::new()));
        let inner = Arc::new(Inner {
            config,
            routing: Mutex::new(Routing {
                members: HashMap::new(),
                ring: Ring::default(),
                pending: VecDeque::new(),
                shutdown: false,
            }),
            started,
            next_generation: AtomicU64::new(0),
            metrics: ClusterMetrics::new(),
            stop: AtomicBool::new(false),
            listen_addr,
            admin_addr,
            traces,
            warehouse,
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(listener, inner))
        };
        let reaper = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || reaper_loop(inner))
        };
        let admin = admin_listener.map(|listener| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || admin::run(listener, inner))
        });
        let flusher = inner.warehouse.is_some().then(|| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || warehouse_flusher(&inner))
        });
        let handle = SchedulerHandle { inner: Arc::clone(&inner) };
        let out = f(&handle);
        inner.shutdown();
        let _ = accept.join();
        let _ = reaper.join();
        if let Some(admin) = admin {
            let _ = admin.join();
        }
        if let Some(flusher) = flusher {
            let _ = flusher.join();
        }
        out
    }
}

const ACCEPT_POLL: Duration = Duration::from_millis(10);

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, inner);
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Warehouse flusher thread, mirroring `serve`'s: every
/// `warehouse_flush_ms` it persists completed cross-process span trees
/// into `trace_spans` and one cluster-metrics snapshot into
/// `metrics_history`, with one final flush on shutdown. Like the serve
/// flusher it is a live-telemetry sink, not a WAL.
fn warehouse_flusher(inner: &Arc<Inner>) {
    let interval = Duration::from_millis(inner.config.warehouse_flush_ms.max(1));
    loop {
        let stopping = inner.stop.load(Ordering::SeqCst);
        flush_warehouse_tick(inner);
        if stopping {
            return;
        }
        let mut slept = Duration::ZERO;
        while slept < interval && !inner.stop.load(Ordering::SeqCst) {
            let step = Duration::from_millis(20).min(interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

/// One scheduler warehouse flush: completed traces, then a snapshot of
/// the cluster metric families.
fn flush_warehouse_tick(inner: &Arc<Inner>) {
    let Some(warehouse) = &inner.warehouse else { return };
    let mut store = warehouse.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(traces) = &inner.traces {
        for spans in traces.drain_completed(usize::MAX) {
            let rows: Vec<nl2sql360::TraceSpanRow> =
                spans.iter().map(serve::trace::span_row).collect();
            if store.insert_trace_spans(&rows).is_err() {
                obs::count("cluster.warehouse.trace_insert_error", 1);
            }
        }
    }
    inner.refresh_gauges();
    let m = &inner.metrics;
    let values = [
        ("submitted", m.submitted.get() as i64),
        ("forwarded", m.forwarded_all.get() as i64),
        ("requeued", m.requeued_all.get() as i64),
        ("reaped_workers", m.reaped_all.get() as i64),
        ("retries_exhausted", m.retries_exhausted.get() as i64),
        ("workers_ready", m.workers_ready.get() as i64),
        ("workers_total", m.workers_total.get() as i64),
        ("pending_depth", m.pending_depth.get() as i64),
    ];
    let at_ms = inner.started.elapsed().as_millis() as i64;
    if store.insert_metrics_snapshot(at_ms, &values).is_err() {
        obs::count("cluster.warehouse.metrics_insert_error", 1);
    }
}

fn reaper_loop(inner: Arc<Inner>) {
    while !inner.stop.load(Ordering::SeqCst) {
        std::thread::sleep(inner.config.reap_interval);
        for line in inner.reap_at(inner.now_ms()) {
            eprintln!("serve-scheduler: reaper: {line}");
        }
    }
}

/// The first frame decides whether a connection is a worker control
/// channel or a client channel.
fn serve_connection(mut stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    stream.set_nodelay(true)?;
    match read_frame(&mut stream)? {
        Message::Register { worker_id, serve_addr, methods } => {
            control_connection(stream, inner, worker_id, serve_addr, methods)
        }
        Message::Submit { id, request } => client_connection(stream, inner, id, request),
        other => Err(io::Error::new(
            ErrorKind::InvalidData,
            format!("expected Register or Submit as first frame, got {other:?}"),
        )),
    }
}

/// Worker control channel: heartbeats in; closing it (either side) means
/// the incarnation is over.
fn control_connection(
    mut stream: TcpStream,
    inner: Arc<Inner>,
    worker_id: String,
    serve_addr: String,
    methods: Vec<String>,
) -> io::Result<()> {
    let generation = inner.register(&worker_id, &serve_addr, methods);
    loop {
        match read_frame(&mut stream) {
            Ok(Message::Heartbeat { worker_id: hb_id, ready, reason, queue_depth, completed }) => {
                if hb_id != worker_id
                    || !inner.heartbeat(&worker_id, generation, ready, reason, queue_depth, completed)
                {
                    // stale generation (a newer incarnation registered):
                    // close so the worker reconnects fresh
                    return Ok(());
                }
            }
            Ok(other) => {
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("expected Heartbeat on control connection, got {other:?}"),
                ));
            }
            Err(e) => {
                // a SIGKILLed worker's control socket closes immediately —
                // evict now instead of waiting out the heartbeat timeout
                if !inner.stop.load(Ordering::SeqCst) {
                    if let Some(line) =
                        inner.evict(&worker_id, generation, &format!("control connection lost: {e}"))
                    {
                        eprintln!("serve-scheduler: {line}");
                    }
                }
                return Ok(());
            }
        }
    }
}

/// Client channel: submits in on this thread, replies out on a writer
/// thread (replies complete out of order; jobs hold the writer's sender).
fn client_connection(
    mut stream: TcpStream,
    inner: Arc<Inner>,
    first_id: u64,
    first_request: QueryRequest,
) -> io::Result<()> {
    let (tx, rx) = channel::unbounded::<(u64, QueryReply)>();
    let mut write_half = stream.try_clone()?;
    let writer = std::thread::spawn(move || {
        while let Ok((id, reply)) = rx.recv() {
            if write_frame(&mut write_half, &Message::SubmitResult { id, reply }).is_err() {
                break;
            }
        }
    });
    inner.submit_job(first_id, tx.clone(), first_request);
    loop {
        match read_frame(&mut stream) {
            Ok(Message::Submit { id, request }) => inner.submit_job(id, tx.clone(), request),
            Ok(other) => {
                drop(tx);
                let _ = writer.join();
                return Err(io::Error::new(
                    ErrorKind::InvalidData,
                    format!("expected Submit on client connection, got {other:?}"),
                ));
            }
            Err(_) => {
                // client done (or gone); the writer drains outstanding
                // replies and exits once the last job's sender drops
                drop(tx);
                let _ = writer.join();
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An Inner with no sockets: register/heartbeat/reap driven by
    /// explicit clock readings. Forwarder threads spawn but idle on empty
    /// queues and die with the queue, so no TCP is ever dialed.
    fn test_inner(heartbeat_timeout_ms: u64) -> Arc<Inner> {
        Arc::new(Inner {
            config: SchedulerConfig {
                heartbeat_timeout: Duration::from_millis(heartbeat_timeout_ms),
                streams_per_worker: 1,
                ..SchedulerConfig::default()
            },
            routing: Mutex::new(Routing {
                members: HashMap::new(),
                ring: Ring::default(),
                pending: VecDeque::new(),
                shutdown: false,
            }),
            started: Instant::now(),
            next_generation: AtomicU64::new(0),
            metrics: ClusterMetrics::new(),
            stop: AtomicBool::new(false),
            listen_addr: "127.0.0.1:1".parse().unwrap(),
            admin_addr: None,
            traces: None,
            warehouse: None,
        })
    }

    fn hb(inner: &Arc<Inner>, now: u64, id: &str, generation: u64, ready: bool, reason: Option<&str>) -> bool {
        inner.heartbeat_at(now, id, generation, ready, reason.map(str::to_string), 0, 0)
    }

    #[test]
    fn reaper_is_strict_at_the_timeout_boundary() {
        let inner = test_inner(400);
        inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        // silence == timeout: not stale yet
        assert!(inner.reap_at(400).is_empty());
        assert_eq!(inner.workers().len(), 1);
        // one past the boundary: reaped
        let lines = inner.reap_at(401);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("heartbeat silence 401ms > 400ms"), "{}", lines[0]);
        assert!(inner.workers().is_empty());
        assert_eq!(inner.metrics.reaped_all.get(), 1);
    }

    #[test]
    fn registration_counts_as_a_heartbeat() {
        let inner = test_inner(400);
        inner.register_at(1000, "w0", "127.0.0.1:1", vec![]);
        // the silence window starts at registration, not at zero
        assert!(inner.reap_at(1400).is_empty());
        assert_eq!(inner.reap_at(1401).len(), 1);
    }

    #[test]
    fn heartbeats_reset_the_silence_window() {
        let inner = test_inner(400);
        let generation = inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        assert!(hb(&inner, 300, "w0", generation, true, None));
        // 0-based silence would be 401 here; the heartbeat moved the clock
        assert!(inner.reap_at(401).is_empty());
        assert!(inner.reap_at(700).is_empty());
        assert_eq!(inner.reap_at(701).len(), 1);
    }

    #[test]
    fn only_stale_members_are_reaped() {
        let inner = test_inner(400);
        let g0 = inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        let g1 = inner.register_at(0, "w1", "127.0.0.1:2", vec![]);
        assert!(hb(&inner, 500, "w1", g1, true, None));
        let lines = inner.reap_at(600);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("w0"), "{}", lines[0]);
        let left = inner.workers();
        assert_eq!(left.len(), 1);
        assert_eq!(left[0].worker_id, "w1");
        let _ = g0;
    }

    #[test]
    fn reregistration_replaces_the_incarnation() {
        let inner = test_inner(400);
        let g1 = inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        let g2 = inner.register_at(10, "w0", "127.0.0.1:9", vec![]);
        assert!(g2 > g1);
        // the old incarnation's heartbeats and evictions are no-ops
        assert!(!hb(&inner, 20, "w0", g1, true, None));
        assert!(inner.evict("w0", g1, "stale").is_none());
        let members = inner.workers();
        assert_eq!(members.len(), 1);
        assert_eq!(members[0].generation, g2);
        assert_eq!(members[0].serve_addr, "127.0.0.1:9");
        // the new incarnation still works
        assert!(hb(&inner, 30, "w0", g2, true, None));
    }

    #[test]
    fn eviction_reports_the_workers_last_reason() {
        let inner = test_inner(400);
        let generation = inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        assert!(hb(&inner, 10, "w0", generation, false, Some("saturated: queue 9/10 >= 90% threshold")));
        // turning ready again keeps the last complaint for the post-mortem
        assert!(hb(&inner, 20, "w0", generation, true, None));
        let lines = inner.reap_at(421);
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("last reported readiness: saturated: queue 9/10 >= 90% threshold"),
            "{}",
            lines[0]
        );
    }

    #[test]
    fn unready_workers_leave_the_ring_but_stay_members() {
        let inner = test_inner(400);
        let g0 = inner.register_at(0, "w0", "127.0.0.1:1", vec![]);
        inner.register_at(0, "w1", "127.0.0.1:2", vec![]);
        assert!(hb(&inner, 10, "w0", g0, false, Some("draining: shutdown in progress, 3 request(s) still queued")));
        assert_eq!(inner.workers().len(), 2);
        assert_eq!(inner.ready_workers(), 1);
        let routing = inner.routing.lock().unwrap();
        // every key lands on the one ready worker
        for i in 0..50u64 {
            assert_eq!(routing.ring.owner(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some("w1"));
        }
    }

    #[test]
    fn retries_are_bounded_and_end_in_internal() {
        let inner = test_inner(400);
        // no members at all: dispatch parks the job pending; requeue burns
        // attempts until the bound answers Internal
        let (tx, rx) = channel::bounded(1);
        let request = QueryRequest {
            method: "C3SQL".into(),
            db_id: "db".into(),
            question: "q".into(),
            deadline: None,
            trace: None,
        };
        let job = Job {
            client_id: 7,
            request,
            shard: 42,
            attempts: inner.config.max_attempts - 1,
            reply: tx,
            trace_id: 0,
            root_span: 0,
            accepted: Instant::now(),
        };
        inner.requeue(job);
        let (id, reply) = rx.recv().expect("terminal reply");
        assert_eq!(id, 7);
        assert_eq!(reply, Err(QueryError::Internal));
        assert_eq!(inner.metrics.retries_exhausted.get(), 1);
    }
}
