//! The scheduler's admin HTTP endpoint: the same minimal loopback
//! HTTP/1.0 responder pattern as `serve::admin`, serving the cluster
//! control plane instead of one engine's telemetry —
//!
//! * `/metrics` — Prometheus text exposition of the cluster families
//!   (per-worker forwarded/requeued/reaped counters, forward latency,
//!   membership gauges);
//! * `/metrics.json` — the same registry as JSON;
//! * `/workers` — the live member table (readiness, last-reported
//!   `/readyz` reason, heartbeat age, queue depths);
//! * `/healthz` — process liveness;
//! * `/readyz` — 200 while at least one worker is ready, 503 otherwise.
//!
//! Scrapable with the same `serve::admin::http_get` client the loadgen
//! and tests already use.

use crate::scheduler::Inner;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const ACCEPT_POLL: Duration = Duration::from_millis(10);
const IO_TIMEOUT: Duration = Duration::from_millis(500);
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Accept-and-respond loop; exits when the scheduler stops.
pub(crate) fn run(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle_connection(stream, &inner);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Arc<Inner>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = respond(method, target, inner);
    write_response(&mut stream, status, content_type, &body)
}

fn respond(method: &str, target: &str, inner: &Arc<Inner>) -> (u16, &'static str, String) {
    if method != "GET" {
        return (405, "text/plain; charset=utf-8", "method not allowed\n".to_string());
    }
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/metrics" => {
            inner.refresh_gauges();
            (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                inner.metrics.registry.render_prometheus(),
            )
        }
        "/metrics.json" => {
            inner.refresh_gauges();
            (200, "application/json", inner.metrics.registry.render_json())
        }
        "/workers" => {
            let workers = inner.workers();
            let json = serde_json::to_string(&workers).unwrap_or_else(|_| "[]".to_string());
            (200, "application/json", json)
        }
        "/healthz" => (200, "text/plain; charset=utf-8", "ok\n".to_string()),
        "/readyz" => {
            let ready = inner.ready_workers();
            if ready > 0 {
                (200, "text/plain; charset=utf-8", format!("ready ({ready} worker(s))\n"))
            } else {
                (503, "text/plain; charset=utf-8", "no ready workers\n".to_string())
            }
        }
        _ => (404, "text/plain; charset=utf-8", "not found\n".to_string()),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
