//! The scheduler's admin HTTP endpoint, built on the same route table and
//! HTTP plumbing as `serve::admin` ([`serve::http`]) —
//!
//! * `GET /metrics` — Prometheus text exposition of the cluster families
//!   (per-worker forwarded/requeued/reaped counters, forward latency,
//!   membership gauges);
//! * `GET /metrics.json` — the same registry as JSON;
//! * `GET /workers` — the live member table (readiness, last-reported
//!   `/readyz` reason, heartbeat age, queue depths);
//! * `GET /healthz` — process liveness;
//! * `GET /readyz` — 200 while at least one worker is ready, 503 otherwise;
//! * `POST /v1/sql` — NL translation forwarded through the full scheduler
//!   path (consistent-hash ring, worker TCP, retries), same request and
//!   refusal shapes as the per-engine `serve` endpoint. Raw-SQL bodies run
//!   against the scheduler's telemetry warehouse when `--warehouse` is on
//!   (`trace_spans`, `metrics_history`); the scheduler holds no corpus
//!   databases, so without a warehouse they are refused;
//! * `GET /v1/traces/<id>` — the assembled cross-process span tree of one
//!   traced request (scheduler hops + merged worker spans), when
//!   `--trace` is on.
//!
//! Scrapable with the same `serve::admin::http_get`/`http_post` clients
//! the loadgen and tests already use.

use crate::scheduler::Inner;
use serve::http::{self, PathSpec, Request, Response, Route, Routed};
use serve::{QueryError, QueryRequest};
use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Largest request body the scheduler endpoint accepts.
const MAX_BODY_BYTES: usize = 64 * 1024;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endpoint {
    Metrics,
    MetricsJson,
    Workers,
    Healthz,
    Readyz,
    Sql,
    Trace,
}

const ROUTES: &[Route<Endpoint>] = &[
    Route { method: "GET", path: PathSpec::Exact("/metrics"), handler: Endpoint::Metrics },
    Route { method: "GET", path: PathSpec::Exact("/metrics.json"), handler: Endpoint::MetricsJson },
    Route { method: "GET", path: PathSpec::Exact("/workers"), handler: Endpoint::Workers },
    Route { method: "GET", path: PathSpec::Exact("/healthz"), handler: Endpoint::Healthz },
    Route { method: "GET", path: PathSpec::Exact("/readyz"), handler: Endpoint::Readyz },
    Route { method: "POST", path: PathSpec::Exact("/v1/sql"), handler: Endpoint::Sql },
    Route { method: "GET", path: PathSpec::Prefix("/v1/traces/"), handler: Endpoint::Trace },
];

/// Accept-and-respond loop; exits when the scheduler stops.
pub(crate) fn run(listener: TcpListener, inner: Arc<Inner>) {
    http::serve_loop(
        listener,
        || inner.stop.load(Ordering::SeqCst),
        MAX_BODY_BYTES,
        |req| respond(req, &inner),
    );
}

fn respond(req: &Request, inner: &Arc<Inner>) -> Response {
    let outcome = http::route(ROUTES, &req.method, &req.path);
    if let Some(refused) = http::refusal(&outcome, &req.path) {
        return refused;
    }
    let Routed::Matched { handler, suffix } = outcome else {
        return Response::json_error(500, "unroutable request");
    };
    match handler {
        Endpoint::Metrics => {
            inner.refresh_gauges();
            Response::prometheus(inner.metrics.registry.render_prometheus())
        }
        Endpoint::MetricsJson => {
            inner.refresh_gauges();
            Response::json(200, inner.metrics.registry.render_json())
        }
        Endpoint::Workers => {
            let workers = inner.workers();
            Response::json(200, serde_json::to_string(&workers).unwrap_or_else(|_| "[]".into()))
        }
        Endpoint::Healthz => Response::text(200, "ok\n"),
        Endpoint::Readyz => {
            let ready = inner.ready_workers();
            if ready > 0 {
                Response::text(200, format!("ready ({ready} worker(s))\n"))
            } else {
                Response::text(503, "no ready workers\n")
            }
        }
        Endpoint::Sql => post_sql(req, inner),
        Endpoint::Trace => get_trace(suffix, inner),
    }
}

/// `GET /v1/traces/<id>`: the assembled cross-process span tree — the
/// scheduler's own hops plus the worker spans merged off `ExecuteResult`
/// frames — in the same JSON shape as the per-engine endpoint.
fn get_trace(suffix: &str, inner: &Arc<Inner>) -> Response {
    let Some(store) = inner.traces.as_ref() else {
        return Response::json_error(404, "request tracing is not enabled on this scheduler");
    };
    let Some(id) = serve::trace::parse_trace_id(suffix) else {
        return Response::json_error(404, &format!("bad trace id: {suffix}"));
    };
    match store.spans(id) {
        Some(spans) => {
            let hex = serve::trace::format_trace_id(id);
            Response::json(
                200,
                serde_json::to_string(&serve::trace::trace_json(&hex, &spans)).unwrap_or_default(),
            )
        }
        None => Response::json_error(404, &format!("no trace with id {suffix} (unknown or evicted)")),
    }
}

/// `POST /v1/sql`: parse the NL form, forward through the scheduler, and
/// answer with the worker's verdict. The scheduler holds no databases, so
/// raw-SQL bodies are redirected to a worker's own endpoint.
fn post_sql(req: &Request, inner: &Arc<Inner>) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json_error(400, "body is not UTF-8");
    };
    if text.is_empty() {
        return Response::json_error(400, "missing JSON body");
    }
    let body: serde::Value = match serde_json::from_str(text) {
        Ok(v) => v,
        Err(e) => return Response::json_error(400, &format!("malformed JSON body: {e}")),
    };
    if let Some(sql) = body.get("sql") {
        // Raw SQL runs against the scheduler's own telemetry warehouse
        // (trace_spans, metrics_history, eval tables) when it has one; the
        // scheduler still holds no corpus databases, so without a
        // warehouse raw SQL belongs on a worker.
        let serde::Value::Str(sql) = sql else {
            return Response::json_error(400, "\"sql\" must be a string");
        };
        let Some(warehouse) = inner.warehouse.as_ref() else {
            return Response::json_error(
                400,
                "the scheduler forwards NL requests only; POST raw SQL to a worker's /v1/sql \
                 (or start the scheduler with --warehouse to query its telemetry tables)",
            );
        };
        let executed = warehouse.lock().unwrap_or_else(|e| e.into_inner()).sql(sql);
        return match executed {
            Ok(rs) => Response::json(
                200,
                serde_json::to_string(&http::result_set_json(&rs)).unwrap_or_default(),
            ),
            Err(e) => Response::json_error(422, &e.to_string()),
        };
    }
    let (Some(question), Some(db_id), Some(method)) =
        (str_field(&body, "question"), str_field(&body, "db_id"), str_field(&body, "method"))
    else {
        return Response::json_error(
            400,
            "NL requests need \"question\", \"db_id\", and \"method\" strings",
        );
    };
    let deadline = match body.get("deadline_ms") {
        None | Some(serde::Value::Null) => None,
        Some(serde::Value::Int(ms)) if *ms >= 0 => Some(Duration::from_millis(*ms as u64)),
        Some(_) => {
            return Response::json_error(400, "\"deadline_ms\" must be a non-negative integer")
        }
    };
    let request = QueryRequest {
        method: method.to_string(),
        db_id: db_id.to_string(),
        question: question.to_string(),
        deadline,
        trace: None,
    };
    let (tx, rx) = crossbeam::channel::bounded(1);
    inner.submit_job(0, tx, request);
    let reply = match rx.recv() {
        Ok((_, reply)) => reply,
        Err(_) => Err(QueryError::Internal),
    };
    match reply {
        Err(e) => Response::json_error(e.http_status(), &e.to_string()),
        Ok(resp) => {
            let mut fields = vec![
                ("ex".to_string(), serde::Value::Bool(resp.ex)),
                ("em".to_string(), serde::Value::Bool(resp.em)),
                ("pred_sql".to_string(), serde::Value::Str(resp.pred_sql.clone())),
                (
                    "exec_failure".to_string(),
                    resp.exec_failure
                        .map_or(serde::Value::Null, |k| serde::Value::Str(k.label().to_string())),
                ),
                ("cache_hit".to_string(), serde::Value::Bool(resp.cache_hit)),
                ("batch_size".to_string(), serde::Value::Int(resp.batch_size as i64)),
                (
                    "latency_us".to_string(),
                    serde::Value::Int(resp.latency.as_micros() as i64),
                ),
            ];
            if !resp.trace_id.is_empty() {
                fields.push(("trace_id".to_string(), serde::Value::Str(resp.trace_id.clone())));
            }
            Response::json(
                200,
                serde_json::to_string(&serde::Value::Map(fields)).unwrap_or_default(),
            )
        }
    }
}

fn str_field<'v>(v: &'v serde::Value, key: &str) -> Option<&'v str> {
    match v.get(key) {
        Some(serde::Value::Str(s)) => Some(s),
        _ => None,
    }
}
