//! `serve-scheduler`: the cluster front door as a process.
//!
//! Binds the client/control listener and the admin endpoint, prints one
//! parseable line with the bound addresses, then runs until killed:
//!
//! ```text
//! serve-scheduler listening client=127.0.0.1:PORT admin=127.0.0.1:PORT
//! ```
//!
//! Workers register themselves (`serve-worker --scheduler <client
//! addr>`); clients are `serve-loadgen --endpoints <client addr>` or any
//! `serve::proto::ClusterClient`.

use cluster::{Scheduler, SchedulerConfig};
use std::io::Write;
use std::net::SocketAddr;
use std::time::Duration;

const USAGE: &str = "serve-scheduler: route NL2SQL requests across serve workers

USAGE:
    serve-scheduler [OPTIONS]

OPTIONS:
    --listen ADDR              client + worker-control listener [default: 127.0.0.1:0]
    --admin ADDR               admin HTTP endpoint; 'none' disables [default: 127.0.0.1:0]
    --heartbeat-timeout-ms N   evict a worker after N ms of silence [default: 3000]
    --reap-interval-ms N       reaper sweep interval [default: 250]
    --max-attempts N           forward attempts per request [default: 3]
    --streams-per-worker N     concurrent forward streams per worker [default: 2]
    --vnodes N                 ring virtual nodes per worker [default: 64]
    --forward-timeout-ms N     per-forward reply deadline [default: 30000]
    --trace                    mint per-request trace ids, merge worker spans,
                               and serve GET /v1/traces/<id> on the admin port
    --warehouse                persist span trees + cluster metric snapshots
                               into the telemetry warehouse (implies --trace);
                               queryable via POST /v1/sql raw-SQL bodies
    -h, --help                 print this help
";

fn parse_args() -> SchedulerConfig {
    let mut config = SchedulerConfig {
        admin_addr: Some("127.0.0.1:0".parse().expect("loopback literal parses")),
        ..SchedulerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--listen" => config.listen = parse_addr(&value("--listen")),
            "--admin" => {
                let v = value("--admin");
                config.admin_addr = if v == "none" { None } else { Some(parse_addr(&v)) };
            }
            "--heartbeat-timeout-ms" => {
                config.heartbeat_timeout =
                    Duration::from_millis(parse_num(&value("--heartbeat-timeout-ms")))
            }
            "--reap-interval-ms" => {
                config.reap_interval = Duration::from_millis(parse_num(&value("--reap-interval-ms")))
            }
            "--max-attempts" => config.max_attempts = parse_num(&value("--max-attempts")) as u32,
            "--streams-per-worker" => {
                config.streams_per_worker = parse_num(&value("--streams-per-worker")) as usize
            }
            "--vnodes" => config.vnodes = parse_num(&value("--vnodes")) as usize,
            "--forward-timeout-ms" => {
                config.forward_timeout =
                    Duration::from_millis(parse_num(&value("--forward-timeout-ms")))
            }
            "--trace" => config.request_tracing = true,
            "--warehouse" => {
                config.request_tracing = true;
                config.warehouse = true;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    config
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad address {s:?}: {e}");
        std::process::exit(2);
    })
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad number {s:?}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let config = parse_args();
    Scheduler::run(config, |handle| {
        let admin = handle
            .admin_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|| "none".to_string());
        println!("serve-scheduler listening client={} admin={admin}", handle.client_addr());
        let _ = std::io::stdout().flush();
        // run until killed; the spawners (check.sh --cluster, the kill
        // test) stop this process with a signal
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    })
}
