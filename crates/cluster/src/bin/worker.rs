//! `serve-worker`: one in-process serve engine as a cluster member.
//!
//! Regenerates its corpus from `--corpus-seed` (deterministic, so every
//! worker and client started with the same seed agrees on the question
//! set), registers with the scheduler, prints one parseable line with the
//! bound addresses, then serves until killed:
//!
//! ```text
//! serve-worker WID serve=127.0.0.1:PORT admin=127.0.0.1:PORT
//! ```

use cluster::{Worker, WorkerConfig};
use serve::ServeConfig;
use std::io::Write;
use std::net::SocketAddr;
use std::time::Duration;

const USAGE: &str = "serve-worker: a serve engine worker for serve-scheduler

USAGE:
    serve-worker --scheduler ADDR [OPTIONS]

OPTIONS:
    --scheduler ADDR      the scheduler's client/control address (required)
    --id WID              worker identity [default: w0]
    --listen ADDR         Execute listener [default: 127.0.0.1:0]
    --admin ADDR          engine admin endpoint; 'none' disables [default: 127.0.0.1:0]
    --corpus-seed N       corpus generation seed [default: 7]
    --corpus KIND         spider | bird [default: spider]
    --methods A,B,C       methods to serve [default: C3SQL,DINSQL,DAILSQL(SC),SuperSQL]
    --workers N           engine worker threads [default: cores]
    --queue N             engine admission-queue capacity [default: 256]
    --heartbeat-ms N      heartbeat interval [default: 500]
    --static-check        enable the sqlcheck admission gate
    --trace               trace requests through this engine so forwarded
                          hops ship their span subtrees back to the scheduler
    -h, --help            print this help
";

fn parse_args() -> WorkerConfig {
    let mut config = WorkerConfig::default();
    let mut serve_config = ServeConfig {
        admin_addr: Some("127.0.0.1:0".parse().expect("loopback literal parses")),
        ..ServeConfig::default()
    };
    let mut scheduler_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scheduler" => {
                config.scheduler = value("--scheduler");
                scheduler_set = true;
            }
            "--id" => config.worker_id = value("--id"),
            "--listen" => config.listen = parse_addr(&value("--listen")),
            "--admin" => {
                let v = value("--admin");
                serve_config.admin_addr = if v == "none" { None } else { Some(parse_addr(&v)) };
            }
            "--corpus-seed" => config.corpus_seed = parse_num(&value("--corpus-seed")),
            "--corpus" => {
                config.corpus_kind = match value("--corpus").as_str() {
                    "spider" => datagen::CorpusKind::Spider,
                    "bird" => datagen::CorpusKind::Bird,
                    other => {
                        eprintln!("unknown corpus kind {other:?} (want spider|bird)");
                        std::process::exit(2);
                    }
                }
            }
            "--methods" => {
                config.methods = value("--methods").split(',').map(str::to_string).collect()
            }
            "--workers" => serve_config.workers = parse_num(&value("--workers")) as usize,
            "--queue" => serve_config.queue_capacity = parse_num(&value("--queue")) as usize,
            "--heartbeat-ms" => {
                config.heartbeat = Duration::from_millis(parse_num(&value("--heartbeat-ms")))
            }
            "--static-check" => serve_config.static_check = true,
            "--trace" => serve_config.request_tracing = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if !scheduler_set {
        eprintln!("--scheduler is required\n\n{USAGE}");
        std::process::exit(2);
    }
    config.serve = serve_config;
    config
}

fn parse_addr(s: &str) -> SocketAddr {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad address {s:?}: {e}");
        std::process::exit(2);
    })
}

fn parse_num(s: &str) -> u64 {
    s.parse().unwrap_or_else(|e| {
        eprintln!("bad number {s:?}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let config = parse_args();
    let worker_id = config.worker_id.clone();
    Worker::run(config, |runtime| {
        let admin = runtime
            .admin_addr
            .map(|a| a.to_string())
            .unwrap_or_else(|| "none".to_string());
        println!("serve-worker {worker_id} serve={} admin={admin}", runtime.serve_addr);
        let _ = std::io::stdout().flush();
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    })
}
