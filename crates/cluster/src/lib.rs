//! Distributed serve: one scheduler process routing NL2SQL requests to N
//! worker processes over loopback TCP.
//!
//! The in-process [`serve`] service answers `(method, db_id, question)`
//! requests from one process. This crate scales that engine across
//! processes without changing a single outcome:
//!
//! * **`serve-scheduler`** accepts client [`Submit`] frames, shards each
//!   request by `(db_id, question)` on a consistent-hash [`ring`] so every
//!   worker owns a stable slice of the key space (and therefore its own
//!   hot execution-cache set), and forwards over the framed protocol in
//!   [`serve::proto`]. It tracks worker heartbeats and runs a reaper that
//!   evicts silent workers and requeues their queued + in-flight work with
//!   bounded retries.
//! * **`serve-worker`** wraps the unmodified in-process engine
//!   ([`serve::Service`]): it registers with the scheduler, serves
//!   [`Execute`] frames by calling the same `ServiceHandle::query` an
//!   in-process caller would, and forwards its `/readyz` admission state
//!   (with the failure reason) in every heartbeat.
//!
//! The correctness pin this crate is built around: **outcomes are
//! byte-identical between 1 process and N processes**, including after a
//! worker is SIGKILLed mid-run — requeued work is answered exactly once.
//! That holds because translation and execution are deterministic per
//! `(method, db_id, question)` (see `serve`'s determinism notes), so
//! re-executing a requeued request on a different worker reproduces the
//! original reply field-for-field; the scheduler only has to guarantee
//! exactly-once *reply* delivery, which it does structurally by keeping
//! every in-flight job in an owned slot that exactly one thread — the
//! forwarder on success, the evictor on failure — can take.
//!
//! The shard key hashes the *question*, not the predicted SQL (the
//! scheduler never translates), but deterministic translation makes the
//! question a faithful proxy: same question ⇒ same SQL ⇒ same cache
//! entries, so each worker's cache still sees a disjoint hot set.
//!
//! [`Submit`]: serve::proto::Message::Submit
//! [`Execute`]: serve::proto::Message::Execute

mod admin;
pub mod ring;
pub mod scheduler;
pub mod worker;

pub use ring::Ring;
pub use scheduler::{Scheduler, SchedulerConfig, SchedulerHandle, WorkerSnapshot};
pub use worker::{Worker, WorkerConfig, WorkerRuntime};
