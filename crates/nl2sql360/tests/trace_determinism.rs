//! Observability must be outcome-neutral: an evaluation with tracing
//! enabled serializes to the byte-identical `EvalLog` as one without, at
//! any worker count — spans and counters observe the run, they never
//! steer it. Lives in its own test binary because the obs recorder is
//! process-global.

use datagen::{generate_corpus, CorpusConfig, CorpusKind};
use modelzoo::method_by_name;
use nl2sql360::{EvalContext, EvalOptions};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

#[test]
fn tracing_on_or_off_yields_byte_identical_eval_logs() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(17));
    let ctx = EvalContext::new(&corpus);
    let model = modelzoo::SimulatedModel::new(method_by_name("DAILSQL").unwrap());

    let mut logs = Vec::new();
    for workers in [1usize, 4] {
        for trace in [false, true] {
            obs::reset();
            let opts = EvalOptions::new().subset(24).workers(workers).trace(trace);
            let log = ctx.evaluate_with(&model, &opts).expect("model runs on Spider");
            let recorded = !obs::snapshot().events.is_empty();
            assert_eq!(recorded, trace, "recorder active iff trace requested");
            logs.push(serde_json::to_string(&log).expect("log serializes"));
        }
    }
    obs::reset();

    let baseline = &logs[0];
    for (i, other) in logs.iter().enumerate().skip(1) {
        assert_eq!(baseline, other, "log {i} diverged from the untraced 1-worker run");
    }
}

/// The `evaluate --emit-metrics` path: run with the recorder on, bridge
/// the snapshot into a registry, and render the exposition — the EvalLog
/// must stay byte-identical to an untelemetered run at any worker count,
/// and the exposition must carry the recorder's families.
#[test]
fn emit_metrics_path_is_outcome_neutral() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(31));
    let ctx = EvalContext::new(&corpus);
    let model = modelzoo::SimulatedModel::new(method_by_name("C3SQL").unwrap());

    obs::reset();
    let baseline = serde_json::to_string(
        &ctx.evaluate_with(&model, &EvalOptions::new().subset(16)).expect("runs"),
    )
    .unwrap();

    for workers in [1usize, 4] {
        obs::reset();
        let guard = obs::enable();
        let log = ctx
            .evaluate_with(&model, &EvalOptions::new().subset(16).workers(workers))
            .expect("runs");
        let exposition = obs::registry::bridge_recorder(&obs::snapshot()).render_prometheus();
        drop(guard);
        obs::reset();
        assert_eq!(
            baseline,
            serde_json::to_string(&log).unwrap(),
            "emit-metrics run diverged at {workers} workers"
        );
        assert!(
            exposition.contains("obs_spans_total{"),
            "bridged exposition must carry recorder span families:\n{exposition}"
        );
    }
}

/// `evaluate_with` is the single entry point (the pre-`EvalOptions` shims
/// are gone): every option combination a shim used to spell must stay
/// byte-equivalent to the canonical builder chain, so callers migrated off
/// the shims keep identical logs.
#[test]
fn option_combinations_are_byte_equivalent_to_the_canonical_chain() {
    let _lock = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(23));
    let ctx = EvalContext::new(&corpus);
    let model = modelzoo::SimulatedModel::new(method_by_name("C3SQL").unwrap());

    let canonical = serde_json::to_string(
        &ctx.evaluate_with(&model, &EvalOptions::new().subset(12)).expect("runs"),
    )
    .unwrap();
    // the spellings the removed evaluate/evaluate_subset[_parallel] shims
    // forwarded to, plus setter-order permutations
    let equivalents = [
        EvalOptions::new().subset(12).workers(1),
        EvalOptions::new().subset(12).workers(3),
        EvalOptions::new().workers(3).subset(12),
        EvalOptions::default().subset(12),
    ];
    for (i, opts) in equivalents.iter().enumerate() {
        let log = serde_json::to_string(&ctx.evaluate_with(&model, opts).expect("runs")).unwrap();
        assert_eq!(canonical, log, "option spelling {i} diverged from the canonical chain");
    }
    // a subset larger than the split clamps instead of erroring, like the
    // old subset shim did
    let clamped = ctx
        .evaluate_with(&model, &EvalOptions::new().subset(corpus.dev.len() + 100))
        .expect("runs");
    assert_eq!(clamped.records.len(), corpus.dev.len());
}
