//! Parallel evaluation must be a pure performance optimization: the logs
//! and search trajectories are required to be byte-identical at any worker
//! count. These tests pin that contract.

use datagen::{generate_corpus, CorpusConfig, CorpusKind};
use modelzoo::{method_by_name, SimulatedModel};
use nl2sql360::pipeline::gpt35;
use nl2sql360::{search_with_workers, AasConfig, EvalContext, EvalOptions};

#[test]
fn evaluate_is_byte_identical_at_any_worker_count() {
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(21));
    let ctx = EvalContext::new(&corpus);
    for method in ["SuperSQL", "C3SQL", "SFT CodeS-7B"] {
        let model = SimulatedModel::new(method_by_name(method).unwrap());
        let sequential = ctx.evaluate_with(&model, &EvalOptions::new().workers(1)).unwrap();
        let baseline = serde_json::to_string(&sequential).unwrap();
        for workers in [2, 3, 8] {
            let parallel = ctx.evaluate_with(&model, &EvalOptions::new().workers(workers)).unwrap();
            assert_eq!(
                baseline,
                serde_json::to_string(&parallel).unwrap(),
                "{method}: EvalLog at {workers} workers diverged from sequential"
            );
        }
    }
}

#[test]
fn evaluate_subset_is_byte_identical_at_any_worker_count() {
    let corpus = generate_corpus(CorpusKind::Bird, &CorpusConfig::tiny(22));
    let ctx = EvalContext::new(&corpus);
    let model = SimulatedModel::new(method_by_name("SuperSQL").unwrap());
    let sequential = ctx.evaluate_with(&model, &EvalOptions::new().subset(12).workers(1)).unwrap();
    let baseline = serde_json::to_string(&sequential).unwrap();
    for workers in [2, 5] {
        let parallel = ctx.evaluate_with(&model, &EvalOptions::new().subset(12).workers(workers)).unwrap();
        assert_eq!(baseline, serde_json::to_string(&parallel).unwrap());
    }
}

#[test]
fn refusing_model_returns_none_at_any_worker_count() {
    // DINSQL refuses BIRD contexts; the parallel path must propagate the
    // refusal exactly like the sequential path
    let corpus = generate_corpus(CorpusKind::Bird, &CorpusConfig::tiny(23));
    let ctx = EvalContext::new(&corpus);
    let model = SimulatedModel::new(method_by_name("DINSQL").unwrap());
    for workers in [1, 2, 8] {
        assert!(ctx.evaluate_with(&model, &EvalOptions::new().workers(workers)).is_none());
    }
}

#[test]
fn aas_trajectory_is_identical_at_any_worker_count() {
    let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(24));
    let ctx = EvalContext::new(&corpus);
    let cfg = AasConfig::tiny(5);
    let base = search_with_workers(&ctx, &gpt35(), &cfg, 1);
    for workers in [2, 4, 8] {
        let run = search_with_workers(&ctx, &gpt35(), &cfg, workers);
        assert_eq!(base.best, run.best, "{workers} workers: champion diverged");
        assert_eq!(base.best_fitness, run.best_fitness);
        assert_eq!(base.evaluations, run.evaluations);
        assert_eq!(base.history.len(), run.history.len());
        for (a, b) in base.history.iter().zip(&run.history) {
            assert_eq!(a.generation, b.generation);
            assert_eq!(a.best, b.best, "gen {} best diverged", a.generation);
            assert_eq!(a.mean, b.mean, "gen {} mean diverged", a.generation);
            assert_eq!(a.worst, b.worst, "gen {} worst diverged", a.generation);
        }
    }
}
