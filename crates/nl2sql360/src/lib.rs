//! # nl2sql360
//!
//! The core of the reproduction: a multi-angle NL2SQL evaluation framework
//! after *"The Dawn of Natural Language to SQL: Are We Fully Ready?"*
//! (VLDB 2024).
//!
//! Components (paper Figure 4):
//!
//! * **Datasets repository** — synthetic Spider-like / BIRD-like corpora
//!   from the `datagen` crate;
//! * **Model zoo** — the simulated methods of the `modelzoo` crate;
//! * **Dataset filter** — [`filter::Filter`], slicing by SQL complexity,
//!   SQL characteristics, data domain, and NL-variant availability;
//! * **Metrics** — [`metrics`]: EX, EM, QVT (Eq. 1), VES, token/cost
//!   economy, latency;
//! * **Executor & logs** — [`executor::EvalContext`] and
//!   [`logs::LogStore`];
//! * **Evaluator** — [`evaluator`]: parallel runs and leaderboards;
//! * **Design-space search** — [`aas`]: the NL2SQL360-AAS genetic
//!   algorithm over the Figure-13 space, with [`pipeline::compose`] turning
//!   module combinations into runnable pipelines (SuperSQL is the shipped
//!   winner).
//!
//! ```
//! use datagen::{generate_corpus, CorpusConfig, CorpusKind};
//! use modelzoo::{method_by_name, SimulatedModel};
//! use nl2sql360::{EvalContext, EvalOptions, Filter, metrics};
//!
//! let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(1));
//! let ctx = EvalContext::new(&corpus);
//! let model = SimulatedModel::new(method_by_name("SuperSQL").unwrap());
//! let log = ctx.evaluate_with(&model, &EvalOptions::new()).unwrap();
//! let overall_ex = metrics::ex(&log, &Filter::all()).unwrap();
//! assert!(overall_ex > 50.0);
//! ```

pub mod aas;
pub mod diagnose;
pub mod evaluator;
pub mod extensions;
pub mod executor;
pub mod filter;
pub mod logs;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod store;

pub use aas::{search, search_with_workers, AasConfig, AasResult};
pub use diagnose::{
    diagnose as diagnose_queries, em_ex_disagreement, error_profile, exec_failure_profile,
    static_failure_profile, EmExDisagreement, Mismatch,
};
pub use extensions::{adaptive_plan, evaluate_with_rewriter, DomainDeficit};
pub use evaluator::{
    evaluate_all, evaluate_all_with_workers, leaderboard, render_accuracy_leaderboard,
    LeaderboardRow,
};
pub use executor::{
    default_workers, EvalContext, EvalLog, EvalOptions, ExecFailureKind, MatchKind, SampleRecord,
    StaticVerdict, VariantRecord,
};
pub use filter::{CountBucket, Filter};
pub use logs::LogStore;
pub use pipeline::{compose, gpt35, gpt4, Backbone};
pub use report::{fmt_opt, fmt_pct, render_series, TextTable};
pub use store::{EvalStore, TraceSpanRow};
