//! High-level evaluation orchestration (paper §3, "Evaluator").
//!
//! Runs many models over a corpus — in parallel across models — and renders
//! leaderboards. This is the entry point the examples and the benchmark
//! harness drive.

use crate::executor::{default_workers, EvalContext, EvalLog, EvalOptions};
use crate::filter::Filter;
use crate::metrics;
use crate::report::{fmt_pct, TextTable};
use modelzoo::SimulatedModel;

/// Evaluate several models over the context with the machine's default
/// worker budget. Models that do not support the dataset are skipped.
pub fn evaluate_all(ctx: &EvalContext<'_>, models: &[SimulatedModel]) -> Vec<EvalLog> {
    evaluate_all_with_workers(ctx, models, default_workers())
}

/// Evaluate several models over the context with an explicit worker budget,
/// split between model-level threads and per-model sample workers so the
/// nested fan-out does not oversubscribe `workers` cores. Logs come back in
/// model order, each byte-identical to a sequential evaluation.
pub fn evaluate_all_with_workers(
    ctx: &EvalContext<'_>,
    models: &[SimulatedModel],
    workers: usize,
) -> Vec<EvalLog> {
    let workers = workers.max(1);
    // samples-per-model workers, after model-level threads are accounted for
    let per_model = (workers / models.len().max(1)).max(1);
    let mut logs: Vec<Option<EvalLog>> = Vec::with_capacity(models.len());
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in models.chunks(models.len().div_ceil(workers).max(1)) {
            handles.push(scope.spawn(move |_| {
                chunk.iter().map(|m| ctx.evaluate_with(m, &EvalOptions::new().workers(per_model))).collect::<Vec<_>>()
            }));
        }
        for h in handles {
            logs.extend(h.join().expect("evaluation thread panicked"));
        }
    })
    .expect("evaluation scope panicked");
    logs.into_iter().flatten().collect()
}

/// A leaderboard row: method name, class, and a metric value.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardRow {
    /// Method name.
    pub method: String,
    /// Class label.
    pub class: String,
    /// Metric value (None when the subset is empty for this method).
    pub value: Option<f64>,
}

/// Build a leaderboard for one metric over a filtered subset, sorted
/// descending by value.
pub fn leaderboard(
    logs: &[EvalLog],
    filter: &Filter,
    metric: impl Fn(&EvalLog, &Filter) -> Option<f64>,
) -> Vec<LeaderboardRow> {
    let mut rows: Vec<LeaderboardRow> = logs
        .iter()
        .map(|log| LeaderboardRow {
            method: log.method.clone(),
            class: log.class_label.clone(),
            value: metric(log, filter),
        })
        .collect();
    rows.sort_by(|a, b| {
        b.value
            .unwrap_or(f64::NEG_INFINITY)
            .partial_cmp(&a.value.unwrap_or(f64::NEG_INFINITY))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Render an EX/EM leaderboard table over a filter.
pub fn render_accuracy_leaderboard(logs: &[EvalLog], filter: &Filter) -> String {
    let mut table = TextTable::new(&["Method", "Class", "EX", "EM"]);
    for row in leaderboard(logs, filter, metrics::ex) {
        let log = logs.iter().find(|l| l.method == row.method).expect("row from logs");
        table.row(vec![
            row.method.clone(),
            row.class.clone(),
            fmt_pct(row.value),
            fmt_pct(metrics::em(log, filter)),
        ]);
    }
    table.render()
}

/// Mean metric value over logs of one class label (used for the grouped
/// views of Figure 5).
pub fn class_mean(
    logs: &[EvalLog],
    class_label: &str,
    filter: &Filter,
    metric: impl Fn(&EvalLog, &Filter) -> Option<f64>,
) -> Option<f64> {
    let values: Vec<f64> = logs
        .iter()
        .filter(|l| l.class_label == class_label)
        .filter_map(|l| metric(l, filter))
        .collect();
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};
    use modelzoo::method_by_name;

    fn models() -> Vec<SimulatedModel> {
        ["C3SQL", "SFT CodeS-7B", "RESDSQL-3B", "SuperSQL"]
            .iter()
            .map(|n| SimulatedModel::new(method_by_name(n).unwrap()))
            .collect()
    }

    #[test]
    fn evaluate_all_runs_in_parallel_and_matches_sequential() {
        let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(99));
        let ctx = EvalContext::new(&corpus);
        let models = models();
        let par = evaluate_all(&ctx, &models);
        assert_eq!(par.len(), 4);
        // parallel result identical to direct evaluation (determinism)
        let seq = ctx.evaluate_with(&models[0], &EvalOptions::new()).unwrap();
        let p0 = par.iter().find(|l| l.method == seq.method).unwrap();
        for (a, b) in seq.records.iter().zip(&p0.records) {
            assert_eq!(a.canonical().ex, b.canonical().ex);
        }
    }

    #[test]
    fn leaderboard_sorted_descending() {
        let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(98));
        let ctx = EvalContext::new(&corpus);
        let logs = evaluate_all(&ctx, &models());
        let lb = leaderboard(&logs, &Filter::all(), metrics::ex);
        for w in lb.windows(2) {
            assert!(w[0].value.unwrap_or(0.0) >= w[1].value.unwrap_or(0.0));
        }
    }

    #[test]
    fn rendered_leaderboard_contains_all_methods() {
        let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(97));
        let ctx = EvalContext::new(&corpus);
        let logs = evaluate_all(&ctx, &models());
        let s = render_accuracy_leaderboard(&logs, &Filter::all());
        for m in ["C3SQL", "SFT CodeS-7B", "RESDSQL-3B", "SuperSQL"] {
            assert!(s.contains(m), "missing {m} in:\n{s}");
        }
    }

    #[test]
    fn class_mean_groups() {
        let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(96));
        let ctx = EvalContext::new(&corpus);
        let logs = evaluate_all(&ctx, &models());
        let m = class_mean(&logs, "LLM (P)", &Filter::all(), metrics::ex);
        assert!(m.is_some());
        assert!(class_mean(&logs, "No Such Class", &Filter::all(), metrics::ex).is_none());
    }
}
