//! The NL2SQL360 command-line testbed — the practitioner surface the paper's
//! Figure 4 describes: configure an evaluation, run methods over benchmarks,
//! inspect logs as leaderboards over filtered subsets.
//!
//! ```text
//! nl2sql360 generate   --kind spider|bird --size tiny|quick|full --seed N --out corpus.json
//! nl2sql360 evaluate   --corpus corpus.json --methods all|"A,B,C" [--parallel N] [--trace out.json]
//!                      [--emit-metrics out.prom] --logs DIR
//! nl2sql360 leaderboard --logs DIR --dataset Spider|BIRD --metric ex|em|qvt|ves|cost|tokens
//!                       [--filter "hardness=extra,subquery=yes,joins=2+"]
//! nl2sql360 methods    # list the model zoo
//! nl2sql360 diagnose   --corpus corpus.json --method NAME [--limit N] [--parallel N] [--trace out.json]
//! ```
//!
//! `--trace FILE` records stage-level spans and counters across the whole
//! stack (modelzoo translation stages, evaluation workers, minidb
//! execution) into a `chrome://tracing` / Perfetto-loadable JSON file and
//! prints a flame summary on stderr when the command finishes.

use datagen::{generate_corpus, Corpus, CorpusConfig, CorpusKind};
use modelzoo::{Nl2SqlModel, SimulatedModel};
use nl2sql360::{
    diagnose, evaluate_all_with_workers, metrics, EvalContext, EvalLog, EvalOptions, Filter,
    LogStore, TextTable,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "leaderboard" => cmd_leaderboard(&opts),
        "methods" => cmd_methods(),
        "dashboard" => cmd_dashboard(&opts),
        "diagnose" => cmd_diagnose(&opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  nl2sql360 generate    --kind spider|bird --size tiny|quick|full [--seed N] --out FILE
  nl2sql360 evaluate    --corpus FILE [--methods all|\"A,B\"] [--parallel N] [--trace OUT.json]
                        [--emit-metrics OUT.prom] --logs DIR
  nl2sql360 leaderboard --logs DIR --dataset Spider|BIRD [--metric ex|em|qvt|ves|cost|tokens] [--filter SPEC]
  nl2sql360 methods
  nl2sql360 dashboard   --logs DIR --dataset Spider|BIRD --method NAME
  nl2sql360 diagnose    --corpus FILE --method NAME [--limit N] [--parallel N] [--trace OUT.json]";

fn parse_opts(rest: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, found `{}`", rest[i]))?;
        let value =
            rest.get(i + 1).ok_or_else(|| format!("--{key} needs a value"))?.clone();
        opts.insert(key.to_string(), value);
        i += 2;
    }
    Ok(opts)
}

fn require<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("--{key} is required"))
}

/// `--parallel N` worker count, defaulting to the machine's available cores.
fn parallel_workers(opts: &HashMap<String, String>) -> Result<usize, String> {
    match opts.get("parallel") {
        None => Ok(nl2sql360::default_workers()),
        Some(s) => match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("bad --parallel `{s}` (want an integer >= 1)")),
        },
    }
}

/// `--trace FILE`: start recording; returns the output path plus the guard
/// keeping the recorder enabled. Pass the result to [`trace_finish`] once
/// the command's work is done.
fn trace_start(opts: &HashMap<String, String>) -> Option<(String, obs::EnableGuard)> {
    opts.get("trace").map(|path| {
        obs::reset();
        (path.clone(), obs::enable())
    })
}

/// Write the chrome-trace JSON and print the flame summary for a recording
/// started by [`trace_start`]. A no-op without `--trace`.
fn trace_finish(trace: Option<(String, obs::EnableGuard)>) -> Result<(), String> {
    let Some((path, guard)) = trace else {
        return Ok(());
    };
    let snap = obs::snapshot();
    drop(guard);
    std::fs::write(&path, obs::export::chrome_trace(&snap))
        .map_err(|e| format!("write {path}: {e}"))?;
    eprintln!("{}", obs::export::flame_summary(&snap));
    eprintln!("trace written to {path} (load in chrome://tracing or ui.perfetto.dev)");
    obs::reset();
    Ok(())
}

fn load_corpus(path: &str) -> Result<Corpus, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parse {path}: {e}"))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let kind = match require(opts, "kind")? {
        "spider" => CorpusKind::Spider,
        "bird" => CorpusKind::Bird,
        other => return Err(format!("--kind must be spider|bird, got `{other}`")),
    };
    let seed: u64 = opts
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed `{s}`")))
        .transpose()?
        .unwrap_or(42);
    let config = match require(opts, "size")? {
        "tiny" => CorpusConfig::tiny(seed),
        "quick" => CorpusConfig {
            train_dbs: 40,
            dev_dbs: 8,
            train_samples: 600,
            dev_samples: 200,
            variant_prob: 0.5,
            seed,
        },
        "full" => match kind {
            CorpusKind::Spider => CorpusConfig::spider(seed),
            CorpusKind::Bird => CorpusConfig::bird(seed),
        },
        other => return Err(format!("--size must be tiny|quick|full, got `{other}`")),
    };
    let out = require(opts, "out")?;
    eprintln!("generating {} corpus (size={}, seed={seed}) ...", kind.name(), require(opts, "size")?);
    let corpus = generate_corpus(kind, &config);
    let json = serde_json::to_string(&corpus).map_err(|e| e.to_string())?;
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {out}: {} databases, {} train / {} dev samples ({} bytes)",
        corpus.databases.len(),
        corpus.train.len(),
        corpus.dev.len(),
        json.len()
    );
    Ok(())
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(require(opts, "corpus")?)?;
    let logs_dir = require(opts, "logs")?;
    let zoo = modelzoo::zoo();
    let selected: Vec<SimulatedModel> = match opts.get("methods").map(String::as_str) {
        None | Some("all") => zoo,
        Some(list) => {
            let names: Vec<&str> = list.split(',').map(str::trim).collect();
            let picked: Vec<SimulatedModel> = zoo
                .into_iter()
                .filter(|m| names.contains(&m.name()))
                .collect();
            if picked.len() != names.len() {
                let known: Vec<&str> =
                    modelzoo::all_methods().iter().map(|m| m.name).collect();
                return Err(format!(
                    "unknown method in `{list}`; known methods: {known:?}"
                ));
            }
            picked
        }
    };
    let workers = parallel_workers(opts)?;
    eprintln!(
        "evaluating {} methods on {} ({} dev samples, {workers} workers) ...",
        selected.len(),
        corpus.kind.name(),
        corpus.dev.len()
    );
    let ctx = EvalContext::new(&corpus);
    let trace = trace_start(opts);
    // --emit-metrics needs the recorder too; enable it ourselves only
    // when --trace has not already done so.
    let metrics_out = opts.get("emit-metrics").cloned();
    let metrics_guard = (metrics_out.is_some() && trace.is_none()).then(|| {
        obs::reset();
        obs::enable()
    });
    let logs = evaluate_all_with_workers(&ctx, &selected, workers);
    if let Some(path) = &metrics_out {
        let exposition =
            obs::registry::bridge_recorder(&obs::snapshot()).render_prometheus();
        std::fs::write(path, exposition).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("prometheus exposition written to {path}");
    }
    if let Some(guard) = metrics_guard {
        drop(guard);
        obs::reset();
    }
    trace_finish(trace)?;
    let store = LogStore::open(logs_dir).map_err(|e| e.to_string())?;
    for log in &logs {
        let path = store.save(log).map_err(|e| e.to_string())?;
        println!(
            "{:<24} EX={} -> {}",
            log.method,
            metrics::ex(log, &Filter::all()).map(|v| format!("{v:.1}")).unwrap_or_default(),
            path.display()
        );
    }
    Ok(())
}

fn cmd_leaderboard(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = LogStore::open(require(opts, "logs")?).map_err(|e| e.to_string())?;
    let dataset = require(opts, "dataset")?;
    let filter = match opts.get("filter") {
        Some(spec) => Filter::parse(spec)?,
        None => Filter::all(),
    };
    let metric_name = opts.get("metric").map(String::as_str).unwrap_or("ex");
    let metric: fn(&EvalLog, &Filter) -> Option<f64> = match metric_name {
        "ex" => metrics::ex,
        "em" => metrics::em,
        "qvt" => metrics::qvt,
        "ves" => metrics::ves,
        "cost" => metrics::avg_cost,
        "tokens" => metrics::avg_tokens,
        other => return Err(format!("unknown metric `{other}`")),
    };

    let mut logs = Vec::new();
    for (ds, method) in store.list().map_err(|e| e.to_string())? {
        if ds.eq_ignore_ascii_case(dataset) {
            logs.push(store.load(&ds, &method).map_err(|e| e.to_string())?);
        }
    }
    if logs.is_empty() {
        return Err(format!("no logs for dataset `{dataset}` under {:?}", store.root()));
    }
    let subset = metrics::subset_size(&logs[0], &filter);
    let mut rows: Vec<(String, String, Option<f64>)> = logs
        .iter()
        .map(|l| (l.method.clone(), l.class_label.clone(), metric(l, &filter)))
        .collect();
    rows.sort_by(|a, b| {
        b.2.unwrap_or(f64::NEG_INFINITY)
            .partial_cmp(&a.2.unwrap_or(f64::NEG_INFINITY))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut table = TextTable::new(&["#", "Method", "Class", metric_name]);
    for (i, (m, c, v)) in rows.iter().enumerate() {
        table.row(vec![
            (i + 1).to_string(),
            m.clone(),
            c.clone(),
            v.map(|v| format!("{v:.4}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{dataset} leaderboard, metric={metric_name}, subset size={subset}");
    println!("{}", table.render());
    Ok(())
}

fn cmd_methods() -> Result<(), String> {
    let mut table = TextTable::new(&["Method", "Class", "Backbone", "Params", "Release"]);
    for m in modelzoo::all_methods() {
        table.row(vec![
            m.name.to_string(),
            m.class.label().to_string(),
            m.backbone.to_string(),
            m.params_b.map(|p| format!("{p}B")).unwrap_or_else(|| "-".into()),
            format!("{:04}-{:02}", m.release.0, m.release.1),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

/// Multi-panel text dashboard for one method against the field — the
/// "dashboard for interactive analysis" of the paper's Evaluator component.
fn cmd_dashboard(opts: &HashMap<String, String>) -> Result<(), String> {
    let store = LogStore::open(require(opts, "logs")?).map_err(|e| e.to_string())?;
    let dataset = require(opts, "dataset")?;
    let method = require(opts, "method")?;

    let mut logs = Vec::new();
    for (ds, m) in store.list().map_err(|e| e.to_string())? {
        if ds.eq_ignore_ascii_case(dataset) {
            logs.push(store.load(&ds, &m).map_err(|e| e.to_string())?);
        }
    }
    let log = logs
        .iter()
        .find(|l| l.method == method)
        .ok_or_else(|| format!("no log for `{method}` on {dataset}"))?;

    let field_best = |f: &Filter| -> Option<f64> {
        logs.iter().filter_map(|l| metrics::ex(l, f)).fold(None, |acc, v| {
            Some(acc.map_or(v, |a: f64| a.max(v)))
        })
    };
    let bar = |v: Option<f64>| -> String {
        v.map(|v| "#".repeat((v / 2.5) as usize)).unwrap_or_default()
    };

    println!("=== {method} on {dataset} ({} dev samples) ===\n", log.records.len());

    println!("-- accuracy panel --");
    let all = Filter::all();
    println!(
        "EX  {:>5}  {}",
        metrics::ex(log, &all).map(|v| format!("{v:.1}")).unwrap_or_default(),
        bar(metrics::ex(log, &all))
    );
    println!(
        "EM  {:>5}  {}",
        metrics::em(log, &all).map(|v| format!("{v:.1}")).unwrap_or_default(),
        bar(metrics::em(log, &all))
    );
    println!(
        "QVT {:>5}  {}",
        metrics::qvt(log, &all).map(|v| format!("{v:.1}")).unwrap_or_default(),
        bar(metrics::qvt(log, &all))
    );
    println!(
        "VES {:>5}  {}",
        metrics::ves(log, &all).map(|v| format!("{v:.1}")).unwrap_or_default(),
        bar(metrics::ves(log, &all))
    );

    println!("\n-- complexity panel (EX vs field best) --");
    for h in sqlkit::Hardness::ALL {
        let f = Filter::all().hardness(h);
        let mine = metrics::ex(log, &f);
        let best = field_best(&f);
        println!(
            "{:<8} {:>5} / best {:>5}   {}",
            h.label(),
            mine.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            best.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            bar(mine)
        );
    }

    println!("\n-- characteristics panel (EX) --");
    for (label, f) in [
        ("w/ subquery", Filter::all().subquery(true)),
        ("w/ JOIN", Filter::all().joins(nl2sql360::CountBucket::Any)),
        ("w/ logical", Filter::all().logical(nl2sql360::CountBucket::Any)),
        ("w/ ORDER BY", Filter::all().order_by(true)),
    ] {
        let mine = metrics::ex(log, &f);
        println!(
            "{:<12} {:>5}  {} (n={})",
            label,
            mine.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
            bar(mine),
            metrics::subset_size(log, &f)
        );
    }
    Ok(())
}

fn cmd_diagnose(opts: &HashMap<String, String>) -> Result<(), String> {
    let corpus = load_corpus(require(opts, "corpus")?)?;
    let method = require(opts, "method")?;
    let limit: usize = opts
        .get("limit")
        .map(|s| s.parse().map_err(|_| format!("bad --limit `{s}`")))
        .transpose()?
        .unwrap_or(usize::MAX);
    let workers = parallel_workers(opts)?;
    let spec = modelzoo::method_by_name(method)
        .ok_or_else(|| format!("unknown method `{method}`"))?;
    let model = SimulatedModel::new(spec);
    let ctx = EvalContext::new(&corpus);
    let trace = trace_start(opts);
    let log = ctx
        .evaluate_with(&model, &EvalOptions::new().workers(workers).match_kind(true))
        .ok_or_else(|| format!("{method} does not run on {}", corpus.kind.name()))?;
    trace_finish(trace)?;

    // error profile over the EX-wrong canonical predictions
    let mut pairs = Vec::new();
    for (i, r) in log.records.iter().enumerate().take(limit) {
        if !r.canonical().ex {
            let pred = sqlkit::parse_query(&r.canonical().pred_sql)
                .map_err(|e| format!("stored prediction unparseable: {e}"))?;
            pairs.push((corpus.dev[i].query.clone(), pred));
        }
    }
    println!(
        "{method} on {}: {} wrong predictions diagnosed",
        corpus.kind.name(),
        pairs.len()
    );
    let profile = diagnose::error_profile(pairs.iter().map(|(g, p)| (g, p)));
    let mut table = TextTable::new(&["Mismatch", "Count"]);
    for (m, n) in profile {
        table.row(vec![m.label().to_string(), n.to_string()]);
    }
    println!("{}", table.render());

    // execution failures (predictions that did not run at all), by kind
    let failures = nl2sql360::exec_failure_profile(&log);
    if !failures.is_empty() {
        let mut table = TextTable::new(&["Execution failure", "Count"]);
        for (kind, n) in failures {
            table.row(vec![kind.label().to_string(), n.to_string()]);
        }
        println!("{}", table.render());
    }

    // EM-vs-EX disagreement: semantically-right predictions the exact
    // matcher rejects, and how many the canonicalizer proves equivalent
    println!("-- EM-vs-EX disagreement (canonical variant) --");
    let mut table = TextTable::new(&[
        "Subset",
        "EX-pass",
        "EM-fail",
        "Disagree%",
        "Equiv-proven",
        "Explained%",
    ]);
    let mut subsets = vec![("all".to_string(), Filter::all())];
    for h in sqlkit::Hardness::ALL {
        subsets.push((h.label().to_string(), Filter::all().hardness(h)));
    }
    for (label, f) in subsets {
        let d = nl2sql360::em_ex_disagreement(&log, &f);
        table.row(vec![
            label,
            d.ex_pass.to_string(),
            d.ex_pass_em_fail.to_string(),
            nl2sql360::fmt_opt(d.disagreement_rate(), 1),
            d.equiv_explained.to_string(),
            nl2sql360::fmt_opt(d.explained_share(), 1),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}
