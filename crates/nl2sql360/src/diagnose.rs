//! NL2SQL debugger (paper §6, "Interpret NL2SQL Solution").
//!
//! The paper proposes a *NL2SQL Debugger* that "can detect incorrect SQL
//! queries and allows users to step through the SQL generation process,
//! identify errors or mismatches". This module implements the detection
//! half: a clause-level structural diff between a gold and a predicted
//! query, classifying each mismatch (missing JOIN, wrong column, flipped
//! comparison, lost subquery, ...) so an error analysis can aggregate
//! failure modes per method.

use serde::{Deserialize, Serialize};
use sqlkit::ast::*;
use sqlkit::normalize::normalize;
use sqlkit::SqlFeatures;

/// One detected mismatch between gold and predicted SQL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mismatch {
    /// Different projection (columns/aggregates selected).
    Projection,
    /// DISTINCT presence differs.
    Distinct,
    /// Different table set in FROM.
    Tables,
    /// Different number of JOIN steps (missing/excess join).
    JoinCount,
    /// WHERE predicates differ.
    Where,
    /// GROUP BY keys differ.
    GroupBy,
    /// HAVING predicates differ.
    Having,
    /// ORDER BY keys or directions differ.
    OrderBy,
    /// LIMIT clauses differ.
    Limit,
    /// Set-operation structure differs.
    SetOps,
    /// Subquery usage differs (nesting lost or invented).
    Nesting,
}

impl Mismatch {
    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Mismatch::Projection => "projection",
            Mismatch::Distinct => "DISTINCT",
            Mismatch::Tables => "tables",
            Mismatch::JoinCount => "join count",
            Mismatch::Where => "WHERE",
            Mismatch::GroupBy => "GROUP BY",
            Mismatch::Having => "HAVING",
            Mismatch::OrderBy => "ORDER BY",
            Mismatch::Limit => "LIMIT",
            Mismatch::SetOps => "set operations",
            Mismatch::Nesting => "nesting",
        }
    }
}

/// Diff a gold and a predicted query into a sorted list of clause-level
/// mismatches. An empty result means the queries are structurally
/// equivalent under normalization (they may still differ in literal
/// values — compare with [`sqlkit::exact_match::exact_match_with`] for that).
pub fn diagnose(gold: &Query, pred: &Query) -> Vec<Mismatch> {
    let g = normalize(gold);
    let p = normalize(pred);
    let mut out = Vec::new();

    if g.set_ops.len() != p.set_ops.len()
        || g.set_ops.iter().zip(&p.set_ops).any(|((a, _), (b, _))| a != b)
    {
        out.push(Mismatch::SetOps);
    }
    diagnose_core(&g.body, &p.body, &mut out);

    let gf = SqlFeatures::of(&g);
    let pf = SqlFeatures::of(&p);
    if gf.subquery_count != pf.subquery_count {
        out.push(Mismatch::Nesting);
    }
    if g.order_by.len() != p.order_by.len()
        || g.order_by
            .iter()
            .zip(&p.order_by)
            .any(|(a, b)| a.desc != b.desc || expr_key(&a.expr) != expr_key(&b.expr))
    {
        out.push(Mismatch::OrderBy);
    }
    match (&g.limit, &p.limit) {
        (None, None) => {}
        (Some(a), Some(b)) if a == b => {}
        _ => out.push(Mismatch::Limit),
    }

    out.sort();
    out.dedup();
    out
}

fn diagnose_core(g: &SelectCore, p: &SelectCore, out: &mut Vec<Mismatch>) {
    if g.distinct != p.distinct {
        out.push(Mismatch::Distinct);
    }
    if key_multiset(g.items.iter().map(item_key)) != key_multiset(p.items.iter().map(item_key)) {
        out.push(Mismatch::Projection);
    }
    let tables = |c: &SelectCore| -> Vec<String> {
        let mut t: Vec<String> = c
            .from
            .iter()
            .flat_map(|f| f.tables())
            .map(|t| match t {
                TableRef::Named { name, .. } => name.clone(),
                TableRef::Subquery { .. } => "<subquery>".into(),
            })
            .collect();
        t.sort();
        t
    };
    if tables(g) != tables(p) {
        out.push(Mismatch::Tables);
    }
    let joins = |c: &SelectCore| c.from.as_ref().map(|f| f.joins.len()).unwrap_or(0);
    if joins(g) != joins(p) {
        out.push(Mismatch::JoinCount);
    }
    if pred_key(&g.where_clause) != pred_key(&p.where_clause) {
        out.push(Mismatch::Where);
    }
    if key_multiset(g.group_by.iter().map(expr_key))
        != key_multiset(p.group_by.iter().map(expr_key))
    {
        out.push(Mismatch::GroupBy);
    }
    if pred_key(&g.having) != pred_key(&p.having) {
        out.push(Mismatch::Having);
    }
}

fn expr_key(e: &Expr) -> String {
    sqlkit::to_sql(&Query::simple(SelectCore::new(vec![SelectItem::expr(e.clone())])))
}

fn item_key(i: &SelectItem) -> String {
    match i {
        SelectItem::Wildcard => "*".into(),
        SelectItem::QualifiedWildcard(t) => format!("{t}.*"),
        SelectItem::Expr { expr, .. } => expr_key(expr),
    }
}

fn pred_key(e: &Option<Expr>) -> Vec<String> {
    fn conjuncts(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Binary { op: BinOp::And, left, right } => {
                conjuncts(left, out);
                conjuncts(right, out);
            }
            other => out.push(expr_key(other)),
        }
    }
    let mut keys = Vec::new();
    if let Some(e) = e {
        conjuncts(e, &mut keys);
    }
    keys.sort();
    keys
}

fn key_multiset(keys: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = keys.collect();
    v.sort();
    v
}

/// Aggregate mismatch counts over (gold, pred) pairs — the per-method error
/// profile an error analysis reports.
pub fn error_profile<'a>(
    pairs: impl Iterator<Item = (&'a Query, &'a Query)>,
) -> Vec<(Mismatch, usize)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<Mismatch, usize> = BTreeMap::new();
    for (gold, pred) in pairs {
        for m in diagnose(gold, pred) {
            *counts.entry(m).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Aggregate *execution-failure* kinds over an evaluation log: how often
/// predictions failed to run at all, split by error kind. Complements
/// [`error_profile`], which diffs queries that did parse — together they
/// separate "wrong SQL" from "broken SQL" per method.
pub fn exec_failure_profile(log: &crate::EvalLog) -> Vec<(crate::ExecFailureKind, usize)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<crate::ExecFailureKind, usize> = BTreeMap::new();
    for record in &log.records {
        for variant in &record.variants {
            if let Some(kind) = variant.exec_failure {
                *counts.entry(kind).or_insert(0) += 1;
            }
        }
    }
    counts.into_iter().collect()
}

/// Cross-tabulate static diagnostics against dynamic execution outcomes
/// over a log evaluated with [`crate::EvalOptions::static_check`]: for
/// every rule that fired, how often the same prediction then failed at
/// execution (and with which [`crate::ExecFailureKind`]) versus executed
/// anyway. `None` in the second column means the flagged query ran — the
/// silent-failure band a static analyzer exists to expose (e.g. a bad
/// column in SELECT masked by a WHERE that matched zero rows).
///
/// Returns `(rule_id, exec_failure, count)` triples sorted by rule then
/// failure kind. Empty when the log carries no verdicts.
pub fn static_failure_profile(
    log: &crate::EvalLog,
) -> Vec<(String, Option<crate::ExecFailureKind>, usize)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<(String, Option<crate::ExecFailureKind>), usize> = BTreeMap::new();
    for record in &log.records {
        for variant in &record.variants {
            let Some(verdict) = &variant.static_verdict else { continue };
            for rule in &verdict.rules {
                *counts.entry((rule.clone(), variant.exec_failure)).or_insert(0) += 1;
            }
        }
    }
    counts.into_iter().map(|((rule, kind), n)| (rule, kind, n)).collect()
}

/// EM-vs-EX disagreement counts over one filtered subset of a log
/// (canonical variants). The paper's headline tension, quantified: EX
/// passes while EM fails exactly when the prediction is semantically
/// right but syntactically different — or when the execution match is a
/// coincidence. The `equiv`-explained slice separates the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmExDisagreement {
    /// Samples in the subset.
    pub samples: usize,
    /// Samples whose prediction passed execution accuracy.
    pub ex_pass: usize,
    /// EX-pass samples the exact matcher nevertheless rejected.
    pub ex_pass_em_fail: usize,
    /// Of those, how many [`sqlcheck::equiv`] proves equivalent by
    /// canonical form — EM false negatives with a rewrite-rule proof.
    pub equiv_explained: usize,
}

impl EmExDisagreement {
    /// EX-pass-but-EM-fail rate in percent of EX passes (`None` when no
    /// prediction passed EX).
    pub fn disagreement_rate(&self) -> Option<f64> {
        (self.ex_pass > 0)
            .then(|| self.ex_pass_em_fail as f64 / self.ex_pass as f64 * 100.0)
    }

    /// Share of the disagreement the canonicalizer explains, in percent
    /// (`None` when EM and EX never disagreed).
    pub fn explained_share(&self) -> Option<f64> {
        (self.ex_pass_em_fail > 0)
            .then(|| self.equiv_explained as f64 / self.ex_pass_em_fail as f64 * 100.0)
    }
}

/// Cross-tabulate EM against EX over the filtered subset of a log
/// (canonical variants). Uses the recorded [`crate::MatchKind`] when the
/// run stored one ([`crate::EvalOptions::match_kind`]); for older logs it
/// falls back to re-parsing the stored SQL and canonicalizing catalog-free,
/// so the profile stays total over any log.
pub fn em_ex_disagreement(log: &crate::EvalLog, filter: &crate::Filter) -> EmExDisagreement {
    let mut out = EmExDisagreement::default();
    for record in log.records.iter().filter(|r| filter.matches(r)) {
        out.samples += 1;
        let v = record.canonical();
        if !v.ex {
            continue;
        }
        out.ex_pass += 1;
        if v.em {
            continue;
        }
        out.ex_pass_em_fail += 1;
        let explained = match v.match_kind {
            Some(kind) => kind == crate::MatchKind::Canonical,
            None => matches!(
                (sqlkit::parse_query(&record.gold_sql), sqlkit::parse_query(&v.pred_sql)),
                (Ok(gold), Ok(pred)) if sqlcheck::equiv::canonically_equal(&gold, &pred, None)
            ),
        };
        if explained {
            out.equiv_explained += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::parse_query;

    fn diag(gold: &str, pred: &str) -> Vec<Mismatch> {
        diagnose(&parse_query(gold).unwrap(), &parse_query(pred).unwrap())
    }

    #[test]
    fn identical_queries_have_no_mismatch() {
        assert!(diag("SELECT a FROM t WHERE b > 1", "SELECT a FROM t WHERE b > 1").is_empty());
    }

    #[test]
    fn alias_differences_are_not_mismatches() {
        assert!(diag(
            "SELECT T1.a FROM t AS T1 WHERE T1.b > 1",
            "SELECT t.a FROM t WHERE t.b > 1"
        )
        .is_empty());
    }

    #[test]
    fn wrong_column_is_projection() {
        assert_eq!(diag("SELECT a FROM t", "SELECT b FROM t"), vec![Mismatch::Projection]);
    }

    #[test]
    fn missing_join_detected() {
        let d = diag(
            "SELECT t.a FROM t JOIN u ON t.id = u.tid",
            "SELECT t.a FROM t",
        );
        assert!(d.contains(&Mismatch::JoinCount), "{d:?}");
        assert!(d.contains(&Mismatch::Tables), "{d:?}");
    }

    #[test]
    fn dropped_condition_is_where() {
        assert_eq!(
            diag("SELECT a FROM t WHERE b > 1 AND c = 2", "SELECT a FROM t WHERE b > 1"),
            vec![Mismatch::Where]
        );
    }

    #[test]
    fn conjunct_order_is_not_a_mismatch() {
        assert!(diag(
            "SELECT a FROM t WHERE b > 1 AND c = 2",
            "SELECT a FROM t WHERE c = 2 AND b > 1"
        )
        .is_empty());
    }

    #[test]
    fn flattened_subquery_is_nesting_and_where() {
        let d = diag(
            "SELECT a FROM t WHERE b IN (SELECT c FROM u)",
            "SELECT a FROM t WHERE b = 1",
        );
        assert!(d.contains(&Mismatch::Nesting), "{d:?}");
        assert!(d.contains(&Mismatch::Where), "{d:?}");
    }

    #[test]
    fn order_and_limit_mismatches() {
        assert_eq!(
            diag("SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC"),
            vec![Mismatch::OrderBy]
        );
        assert_eq!(
            diag("SELECT a FROM t LIMIT 3", "SELECT a FROM t LIMIT 5"),
            vec![Mismatch::Limit]
        );
    }

    #[test]
    fn group_and_having_mismatches() {
        let d = diag(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
            "SELECT a, COUNT(*) FROM t GROUP BY a",
        );
        assert_eq!(d, vec![Mismatch::Having]);
    }

    #[test]
    fn set_op_mismatch() {
        let d = diag(
            "SELECT a FROM t UNION SELECT a FROM u",
            "SELECT a FROM t EXCEPT SELECT a FROM u",
        );
        assert!(d.contains(&Mismatch::SetOps), "{d:?}");
    }

    #[test]
    fn error_profile_aggregates() {
        let gold = parse_query("SELECT a FROM t WHERE b > 1").unwrap();
        let p1 = parse_query("SELECT a FROM t").unwrap();
        let p2 = parse_query("SELECT c FROM t WHERE b > 1").unwrap();
        let pairs = vec![(&gold, &p1), (&gold, &p2)];
        let profile = error_profile(pairs.into_iter());
        assert!(profile.contains(&(Mismatch::Where, 1)));
        assert!(profile.contains(&(Mismatch::Projection, 1)));
    }

    #[test]
    fn static_failure_profile_cross_tabulates_rules_with_exec_outcomes() {
        use crate::{EvalContext, EvalOptions};
        use datagen::{generate_corpus, CorpusConfig, CorpusKind};
        use modelzoo::SimulatedModel;
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(31));
        let ctx = EvalContext::new(&c);
        let m = SimulatedModel::new(modelzoo::method_by_name("C3SQL").unwrap());

        // no verdicts recorded → empty profile
        let plain = ctx.evaluate_with(&m, &EvalOptions::new().subset(40)).unwrap();
        assert!(static_failure_profile(&plain).is_empty());

        let log =
            ctx.evaluate_with(&m, &EvalOptions::new().subset(40).static_check(true)).unwrap();
        let profile = static_failure_profile(&log);
        assert!(!profile.is_empty(), "corrupted predictions must fire rules");
        for (rule, _, n) in &profile {
            assert!(sqlcheck::Rule::from_id(rule).is_some(), "unstable rule id {rule}");
            assert!(*n > 0);
        }
        // the profile totals must match a direct walk over the log
        let direct: usize = log
            .records
            .iter()
            .flat_map(|r| &r.variants)
            .filter_map(|v| v.static_verdict.as_ref())
            .map(|s| s.rules.len())
            .sum();
        let total: usize = profile.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, direct);
    }

    #[test]
    fn em_ex_disagreement_counts_and_explains() {
        use crate::executor::{MatchKind, SampleRecord, VariantRecord};
        use crate::{EvalLog, Filter};
        use sqlkit::hardness::{BirdDifficulty, Hardness};

        fn variant(ex: bool, em: bool, kind: Option<MatchKind>, pred: &str) -> VariantRecord {
            VariantRecord {
                ex,
                em,
                pred_sql: pred.to_string(),
                pred_work: Some(1),
                exec_failure: None,
                static_verdict: None,
                match_kind: kind,
                prompt_tokens: 0,
                completion_tokens: 0,
                cost_usd: 0.0,
                latency_s: 0.0,
            }
        }
        fn record(id: usize, gold: &str, v: VariantRecord) -> SampleRecord {
            SampleRecord {
                sample_id: id,
                db_id: "d".into(),
                domain: "College".into(),
                hardness: Hardness::Easy,
                bird_difficulty: BirdDifficulty::Simple,
                features: sqlkit::SqlFeatures::default(),
                gold_sql: gold.to_string(),
                gold_work: 1,
                variants: vec![v],
            }
        }
        let gold = "SELECT a FROM t WHERE 5 < a";
        let log = EvalLog {
            method: "M".into(),
            class_label: "LLM (P)".into(),
            dataset: "Spider".into(),
            records: vec![
                // EX+EM agree → no disagreement
                record(0, gold, variant(true, true, Some(MatchKind::Syntactic), gold)),
                // recorded kind explains the disagreement
                record(
                    1,
                    gold,
                    variant(true, false, Some(MatchKind::Canonical), "SELECT a FROM t WHERE a > 5"),
                ),
                // recorded kind says coincidental EX
                record(2, gold, variant(true, false, Some(MatchKind::Unmatched), "SELECT a FROM x")),
                // no recorded kind → fallback re-parses and proves this one
                record(3, gold, variant(true, false, None, "SELECT a FROM t WHERE a > 5")),
                // EX fail never enters the disagreement set
                record(4, gold, variant(false, false, None, "SELECT a FROM t")),
            ],
        };
        let d = em_ex_disagreement(&log, &Filter::all());
        assert_eq!(d.samples, 5);
        assert_eq!(d.ex_pass, 4);
        assert_eq!(d.ex_pass_em_fail, 3);
        assert_eq!(d.equiv_explained, 2);
        assert_eq!(d.disagreement_rate(), Some(75.0));
        let share = d.explained_share().unwrap();
        assert!((share - 200.0 / 3.0).abs() < 1e-9, "{share}");
        // empty subset → rates are None
        let none = em_ex_disagreement(&log, &Filter::all().hardness(Hardness::Extra));
        assert_eq!(none.disagreement_rate(), None);
        assert_eq!(none.explained_share(), None);
    }

    #[test]
    fn real_corruptions_get_diagnosed() {
        use datagen::{generate_corpus, CorpusConfig, CorpusKind};
        use rand::SeedableRng;
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(31));
        let mut diagnosed = 0;
        for (i, s) in c.dev.iter().enumerate().take(30) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(i as u64);
            let pred = modelzoo::corruption::corrupt_prediction(
                &s.query,
                modelzoo::MethodClass::FinetunedPlm,
                c.db(s),
                &mut rng,
            );
            if !diagnose(&s.query, &pred).is_empty() {
                diagnosed += 1;
            }
        }
        assert!(diagnosed >= 25, "most corruptions must be diagnosable: {diagnosed}/30");
    }
}
