//! Working prototypes of the paper's §6 research opportunities.
//!
//! * **Query rewriter** ("Make NL2SQL Methods Trustworthy"): detect that an
//!   incoming question is a paraphrase of a canonical phrasing and rewrite
//!   it before translation — [`evaluate_with_rewriter`] measures the QVT
//!   gain this buys.
//! * **Adaptive training-data generation**: read per-domain accuracy from
//!   evaluation logs, rank the weakest domains, and synthesize extra
//!   in-domain training data for them — [`adaptive_plan`] +
//!   [`datagen::augment_corpus`].
//!
//! (The third opportunity, the NL2SQL debugger, lives in
//! [`crate::diagnose`].)

use crate::executor::{EvalContext, EvalLog, EvalOptions};
use crate::filter::Filter;
use crate::metrics;
use datagen::nl::paraphrase_key;
use modelzoo::Nl2SqlModel;
use serde::{Deserialize, Serialize};

/// Evaluate a model with a *query rewriter* in front of it: every NL
/// variant whose paraphrase key matches the canonical question is rewritten
/// to the canonical question before translation, so the model never sees
/// the paraphrase at all. Compare QVT against [`EvalContext::evaluate`] to
/// measure the rewriter's stabilization effect.
pub fn evaluate_with_rewriter(
    ctx: &EvalContext<'_>,
    model: &dyn Nl2SqlModel,
) -> Option<EvalLog> {
    let mut log = ctx.evaluate_with(model, &EvalOptions::new())?;
    // Re-translate the variants the rewriter can canonicalize: the model
    // receives variant 0 (the canonical question) instead.
    for (i, sample) in ctx.corpus.dev.iter().enumerate() {
        if sample.variants.len() < 2 {
            continue;
        }
        let canonical_key = paraphrase_key(sample.question());
        let canonical_task = ctx.task(sample, 0);
        for (v, text) in sample.variants.iter().enumerate().skip(1) {
            if paraphrase_key(text) == canonical_key {
                // rewriter fires: translate the canonical question
                let pred = model.translate(&canonical_task)?;
                let gold_rs = ctx.gold_result(i);
                let (ex, pred_work) = match ctx.corpus.db(sample).database.run_query(&pred.query)
                {
                    Ok(rs) => (minidb::results_equivalent(gold_rs, &rs), Some(rs.work)),
                    Err(_) => (false, None),
                };
                let em = sqlkit::exact_match(&sample.query, &pred.query);
                let rec = &mut log.records[i].variants[v];
                rec.ex = ex;
                rec.em = em;
                rec.pred_sql = pred.sql;
                rec.pred_work = pred_work;
            }
        }
    }
    Some(log)
}

/// One entry of an adaptive data-generation plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainDeficit {
    /// Domain name.
    pub domain: String,
    /// Measured EX of the method in this domain.
    pub ex: f64,
    /// Number of training databases currently available for the domain.
    pub train_dbs: usize,
    /// Suggested number of extra training databases to synthesize.
    pub suggested_extra_dbs: usize,
}

/// Rank the dev-split domains by measured EX (worst first) and propose how
/// much extra in-domain training data to synthesize — the feedback loop of
/// §6's "Adaptive Training Data Generation".
pub fn adaptive_plan(ctx: &EvalContext<'_>, log: &EvalLog, max_extra_dbs: usize) -> Vec<DomainDeficit> {
    let mut domains: Vec<String> = log.records.iter().map(|r| r.domain.clone()).collect();
    domains.sort();
    domains.dedup();

    let overall = metrics::ex(log, &Filter::all()).unwrap_or(0.0);
    let mut plan: Vec<DomainDeficit> = domains
        .into_iter()
        .filter_map(|domain| {
            let f = Filter::all().domain(domain.clone());
            let ex = metrics::ex(log, &f)?;
            let train_dbs = ctx
                .corpus
                .train_db_ids
                .iter()
                .filter(|id| {
                    ctx.corpus.databases[*id].domain.spec().name.eq_ignore_ascii_case(&domain)
                })
                .count();
            // deficit-proportional suggestion: the further below the
            // overall EX, the more data the domain gets
            let deficit = (overall - ex).max(0.0);
            let suggested = ((deficit / 5.0).ceil() as usize).min(max_extra_dbs);
            Some(DomainDeficit { domain, ex, train_dbs, suggested_extra_dbs: suggested })
        })
        .collect();
    plan.sort_by(|a, b| a.ex.partial_cmp(&b.ex).unwrap_or(std::cmp::Ordering::Equal));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{augment_corpus, domain_by_name, generate_corpus, CorpusConfig, CorpusKind};
    use modelzoo::{method_by_name, SimulatedModel};

    fn corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(314))
    }

    #[test]
    fn rewriter_improves_qvt_for_unstable_methods() {
        let corpus = corpus();
        let ctx = EvalContext::new(&corpus);
        // prompt-based methods are the least stable under paraphrase
        let model = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let plain = ctx.evaluate_with(&model, &EvalOptions::new()).unwrap();
        let rewritten = evaluate_with_rewriter(&ctx, &model).unwrap();
        let q_plain = metrics::qvt(&plain, &Filter::all()).unwrap();
        let q_rew = metrics::qvt(&rewritten, &Filter::all()).unwrap();
        assert!(
            q_rew >= q_plain,
            "rewriter must not hurt QVT: {q_rew:.1} vs {q_plain:.1}"
        );
        assert!(q_rew > 99.0, "canonicalizable variants collapse to the canonical outcome: {q_rew:.1}");
    }

    #[test]
    fn rewriter_does_not_change_canonical_ex() {
        let corpus = corpus();
        let ctx = EvalContext::new(&corpus);
        let model = SimulatedModel::new(method_by_name("DAILSQL").unwrap());
        let plain = ctx.evaluate_with(&model, &EvalOptions::new()).unwrap();
        let rewritten = evaluate_with_rewriter(&ctx, &model).unwrap();
        assert_eq!(
            metrics::ex(&plain, &Filter::all()),
            metrics::ex(&rewritten, &Filter::all()),
            "variant 0 is untouched"
        );
    }

    #[test]
    fn adaptive_plan_ranks_weak_domains_first() {
        let corpus = corpus();
        let ctx = EvalContext::new(&corpus);
        let model = SimulatedModel::new(method_by_name("SFT CodeS-7B").unwrap());
        let log = ctx.evaluate_with(&model, &EvalOptions::new()).unwrap();
        let plan = adaptive_plan(&ctx, &log, 5);
        assert!(!plan.is_empty());
        for w in plan.windows(2) {
            assert!(w[0].ex <= w[1].ex, "plan must be sorted worst-first");
        }
        for d in &plan {
            assert!(d.suggested_extra_dbs <= 5);
        }
    }

    #[test]
    fn closing_the_loop_augmentation_raises_in_domain_ex() {
        // End-to-end §6 loop: evaluate → find weak domain → synthesize
        // in-domain training data → re-evaluate → in-domain EX rises (the
        // domain-adaptation mechanism of Finding 7).
        let corpus = corpus();
        let ctx = EvalContext::new(&corpus);
        let model = SimulatedModel::new(method_by_name("SFT CodeS-7B").unwrap());
        let log = ctx.evaluate_with(&model, &EvalOptions::new()).unwrap();
        let plan = adaptive_plan(&ctx, &log, 6);
        let target = plan.first().expect("at least one domain").clone();
        let domain = domain_by_name(&target.domain).expect("plan names real domains");

        let augmented = augment_corpus(&corpus, domain, 6, 5, 77);
        let ctx2 = EvalContext::new(&augmented);
        let log2 = ctx2.evaluate_with(&model, &EvalOptions::new()).unwrap();
        let f = Filter::all().domain(target.domain.clone());
        let before = metrics::ex(&log, &f).expect("domain present");
        let after = metrics::ex(&log2, &f).expect("domain present");
        assert!(
            after >= before,
            "in-domain data must not hurt {}: {after:.1} vs {before:.1}",
            target.domain
        );
    }
}
