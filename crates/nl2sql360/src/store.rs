//! Eval runs as queryable `minidb` tables.
//!
//! The paper's leaderboards and diagnose cross-tabs are views over
//! evaluation logs; this module gives those logs a storage substrate the
//! engine itself can query. Every completed [`EvalLog`] becomes one row in
//! `eval_runs` plus one row per (sample, variant) in `eval_results`, and
//! the report paths that used to walk `EvalLog` structs become plain SQL
//! executed by `minidb` — the same engine the evaluations score. The serve
//! crate exposes the store over `POST /v1/sql`, so a run launched through
//! `POST /v1/evals/<corpus>` is immediately queryable over HTTP.
//!
//! Determinism: the schema deliberately carries no wall-clock columns.
//! Everything stored is derived from the `EvalLog` alone, which is
//! byte-identical at any worker count — so whole-table dumps are stable
//! across runs and concurrency, which is what the serve crate's
//! eval-vs-traffic isolation pin compares.

use crate::executor::{EvalLog, ExecFailureKind};
use crate::filter::Filter;
use crate::metrics;
use crate::report::{fmt_pct, TextTable};
use minidb::{Database, ExecError, ExecResult, ResultSet, TableBuilder, Value};

/// Name of the per-run summary table.
pub const RUNS_TABLE: &str = "eval_runs";
/// Name of the per-(sample, variant) outcome table.
pub const RESULTS_TABLE: &str = "eval_results";
/// Name of the distributed-tracing span table: one row per completed
/// span, flushed from the serving layer's trace store.
pub const TRACE_TABLE: &str = "trace_spans";
/// Name of the periodic service-metrics history table: one row per
/// (snapshot, metric) pair, flushed on the warehouse tick.
pub const METRICS_TABLE: &str = "metrics_history";

/// One completed span bound for the `trace_spans` table. Mirrors the
/// serving layer's span record without depending on it — the store stays
/// the bottom of the dependency stack.
///
/// `trace_id` is the external 16-hex-char form (a raw `u64` id can exceed
/// `i64`, and TEXT keeps `WHERE trace_id = '<id>'` copy-pasteable from
/// API responses). Timestamps are process-relative microseconds — the
/// schema deliberately carries no wall-clock columns (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanRow {
    /// External (hex) trace id.
    pub trace_id: String,
    /// Span id, unique within the trace across processes.
    pub span_id: i64,
    /// Parent span id; 0 for the trace root.
    pub parent_id: i64,
    /// Stage name.
    pub name: String,
    /// Process that recorded the span.
    pub process: String,
    /// Process-relative start, microseconds.
    pub start_us: i64,
    /// Duration, microseconds.
    pub dur_us: i64,
    /// Space-separated `key=value` attributes.
    pub attrs: String,
}

/// A `minidb` database holding evaluation runs as queryable tables.
///
/// Run ids are assigned sequentially starting at 1, in insertion order —
/// which is what lets SQL reproduce the legacy leaderboard's stable tie
/// order (`ORDER BY ... DESC, run_id`).
pub struct EvalStore {
    db: Database,
    next_run_id: i64,
    next_snapshot_id: i64,
}

impl Default for EvalStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalStore {
    /// An empty store with both tables created.
    pub fn new() -> Self {
        let mut db = Database::new("evals");
        db.add_table(
            TableBuilder::new(RUNS_TABLE)
                .column_int("run_id")
                .column_text("method")
                .column_text("class")
                .column_text("dataset")
                .column_text("corpus")
                .column_int("samples")
                .column_int("variants")
                .column_real("ex")
                .column_real("em")
                .column_real("qvt")
                .column_real("ves")
                .column_real("avg_latency_s")
                .column_real("avg_cost_usd")
                .build(),
        )
        .expect("eval_runs schema is valid");
        db.add_table(
            TableBuilder::new(RESULTS_TABLE)
                .column_int("run_id")
                .column_int("sample_id")
                .column_int("variant")
                .column_text("db_id")
                .column_text("hardness")
                .column_text("difficulty")
                .column_int("ex")
                .column_int("em")
                .column_text("pred_sql")
                .column_int("gold_work")
                .column_int("pred_work")
                .column_int("exec_failure")
                .column_text("exec_failure_label")
                .column_int("static_clean")
                .column_text("static_rules")
                .column_int("prompt_tokens")
                .column_int("completion_tokens")
                .column_real("cost_usd")
                .column_real("latency_s")
                .build(),
        )
        .expect("eval_results schema is valid");
        db.add_table(
            TableBuilder::new(TRACE_TABLE)
                .column_text("trace_id")
                .column_int("span_id")
                .column_int("parent_id")
                .column_text("name")
                .column_text("process")
                .column_int("start_us")
                .column_int("dur_us")
                .column_text("attrs")
                .build(),
        )
        .expect("trace_spans schema is valid");
        db.add_table(
            TableBuilder::new(METRICS_TABLE)
                .column_int("snapshot_id")
                .column_int("at_ms")
                .column_text("name")
                .column_int("value")
                .build(),
        )
        .expect("metrics_history schema is valid");
        EvalStore { db, next_run_id: 1, next_snapshot_id: 1 }
    }

    /// Persist completed spans into `trace_spans`. A trace is flushed as a
    /// unit by the serving layer, so a `WHERE trace_id = ...` query either
    /// sees the whole tree (per contributing process) or nothing.
    pub fn insert_trace_spans(&mut self, spans: &[TraceSpanRow]) -> ExecResult<()> {
        if spans.is_empty() {
            return Ok(());
        }
        let rows = spans
            .iter()
            .map(|s| {
                vec![
                    Value::text(&s.trace_id),
                    Value::Int(s.span_id),
                    Value::Int(s.parent_id),
                    Value::text(&s.name),
                    Value::text(&s.process),
                    Value::Int(s.start_us),
                    Value::Int(s.dur_us),
                    Value::text(&s.attrs),
                ]
            })
            .collect();
        self.db.insert(TRACE_TABLE, rows)
    }

    /// Persist one named-counter snapshot into `metrics_history` under a
    /// fresh snapshot id (monotonic from 1, so `GROUP BY snapshot_id`
    /// reconstructs each scrape and `MAX(snapshot_id)` is "latest").
    /// `at_ms` is service-relative milliseconds. Returns the id.
    pub fn insert_metrics_snapshot(
        &mut self,
        at_ms: i64,
        values: &[(&str, i64)],
    ) -> ExecResult<i64> {
        let snapshot_id = self.next_snapshot_id;
        let rows = values
            .iter()
            .map(|&(name, value)| {
                vec![
                    Value::Int(snapshot_id),
                    Value::Int(at_ms),
                    Value::text(name),
                    Value::Int(value),
                ]
            })
            .collect();
        self.db.insert(METRICS_TABLE, rows)?;
        self.next_snapshot_id += 1;
        Ok(snapshot_id)
    }

    /// Persist one completed run under `corpus_label` (what the API caller
    /// named the corpus, e.g. "spider"). Returns the assigned run id.
    ///
    /// `exec_failure` is stored as the kind's declaration index
    /// (`kind as i64`), so `ORDER BY exec_failure` reproduces the
    /// `BTreeMap<ExecFailureKind>` iteration order the legacy diagnose
    /// profile uses; `exec_failure_label` carries the human label
    /// alongside for ad-hoc queries.
    pub fn insert_run(&mut self, log: &EvalLog, corpus_label: &str) -> ExecResult<i64> {
        let run_id = self.next_run_id;
        let filter = Filter::all();
        let mut result_rows = Vec::new();
        for rec in &log.records {
            for (v_idx, v) in rec.variants.iter().enumerate() {
                let verdict = v.static_verdict.as_ref();
                result_rows.push(vec![
                    Value::Int(run_id),
                    Value::Int(rec.sample_id as i64),
                    Value::Int(v_idx as i64),
                    Value::text(&rec.db_id),
                    Value::text(rec.hardness.label()),
                    Value::text(rec.bird_difficulty.label()),
                    Value::Int(v.ex as i64),
                    Value::Int(v.em as i64),
                    Value::text(&v.pred_sql),
                    Value::Int(rec.gold_work as i64),
                    v.pred_work.map_or(Value::Null, |w| Value::Int(w as i64)),
                    v.exec_failure.map_or(Value::Null, |k| Value::Int(k as i64)),
                    v.exec_failure.map_or(Value::Null, |k| Value::text(k.label())),
                    verdict.map_or(Value::Null, |s| Value::Int(s.clean as i64)),
                    verdict.map_or(Value::Null, |s| Value::text(s.rules.join(","))),
                    Value::Int(v.prompt_tokens as i64),
                    Value::Int(v.completion_tokens as i64),
                    Value::Real(v.cost_usd),
                    Value::Real(v.latency_s),
                ]);
            }
        }
        let variants: i64 = log.records.iter().map(|r| r.variants.len() as i64).sum();
        let run_row = vec![
            Value::Int(run_id),
            Value::text(&log.method),
            Value::text(&log.class_label),
            Value::text(&log.dataset),
            Value::text(corpus_label),
            Value::Int(log.records.len() as i64),
            Value::Int(variants),
            opt_real(metrics::ex(log, &filter)),
            opt_real(metrics::em(log, &filter)),
            opt_real(metrics::qvt(log, &filter)),
            opt_real(metrics::ves(log, &filter)),
            opt_real(metrics::avg_latency(log, &filter)),
            opt_real(metrics::avg_cost(log, &filter)),
        ];
        // Results first, summary last: the eval_runs row is the commit
        // marker, so a query joining through it never sees a partial run.
        self.db.insert(RESULTS_TABLE, result_rows)?;
        self.db.insert(RUNS_TABLE, vec![run_row])?;
        self.next_run_id += 1;
        Ok(run_id)
    }

    /// Run raw SQL against the store.
    pub fn sql(&self, sql: &str) -> ExecResult<ResultSet> {
        self.db.run(sql)
    }

    /// The underlying database (for catalogs and schema dumps).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Number of persisted runs.
    pub fn run_count(&self) -> usize {
        (self.next_run_id - 1) as usize
    }

    /// The accuracy leaderboard as a SQL aggregation over the stored
    /// tables, rendered byte-identical to
    /// [`crate::evaluator::render_accuracy_leaderboard`] over the same
    /// logs with [`Filter::all`] (test-pinned): EX/EM are recomputed by
    /// the engine from per-sample rows (`AVG(ex) * 100` over canonical
    /// variants — the same float expression the metrics module evaluates),
    /// and ties keep insertion order via the `run_id` sort key, matching
    /// the legacy stable sort.
    pub fn sql_accuracy_leaderboard(&self, dataset: &str) -> ExecResult<String> {
        if dataset.contains('\'') {
            return Err(ExecError::Unsupported(format!("bad dataset label: {dataset}")));
        }
        let rs = self.db.run(&format!(
            "SELECT r.method, r.class, AVG(s.ex) * 100, AVG(s.em) * 100 \
             FROM {RUNS_TABLE} AS r JOIN {RESULTS_TABLE} AS s ON r.run_id = s.run_id \
             WHERE s.variant = 0 AND r.dataset = '{dataset}' \
             GROUP BY r.run_id, r.method, r.class \
             ORDER BY AVG(s.ex) * 100 DESC, r.run_id"
        ))?;
        let mut table = TextTable::new(&["Method", "Class", "EX", "EM"]);
        for row in &rs.rows {
            table.row(vec![
                text_cell(&row[0]),
                text_cell(&row[1]),
                fmt_pct(row[2].as_f64()),
                fmt_pct(row[3].as_f64()),
            ]);
        }
        Ok(table.render())
    }

    /// Execution-failure profile of one run as a SQL aggregation,
    /// identical to [`crate::diagnose::exec_failure_profile`] over the
    /// log the run was persisted from (test-pinned). `GROUP BY` + `ORDER
    /// BY` the stored kind index reproduces the legacy `BTreeMap`
    /// declaration-order iteration.
    pub fn sql_exec_failure_profile(
        &self,
        run_id: i64,
    ) -> ExecResult<Vec<(ExecFailureKind, usize)>> {
        let rs = self.db.run(&format!(
            "SELECT exec_failure, COUNT(*) FROM {RESULTS_TABLE} \
             WHERE run_id = {run_id} AND exec_failure IS NOT NULL \
             GROUP BY exec_failure ORDER BY exec_failure"
        ))?;
        rs.rows
            .iter()
            .map(|row| {
                let idx = match row[0] {
                    Value::Int(i) if (i as usize) < ExecFailureKind::ALL.len() => i as usize,
                    ref other => {
                        return Err(ExecError::Type(format!(
                            "exec_failure index out of range: {other:?}"
                        )))
                    }
                };
                let n = match row[1] {
                    Value::Int(n) => n as usize,
                    ref other => {
                        return Err(ExecError::Type(format!("COUNT(*) not an int: {other:?}")))
                    }
                };
                Ok((ExecFailureKind::ALL[idx], n))
            })
            .collect()
    }
}

fn opt_real(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Real)
}

fn text_cell(v: &Value) -> String {
    match v {
        Value::Text(s) => s.clone(),
        other => format!("{other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::exec_failure_profile;
    use crate::evaluator::render_accuracy_leaderboard;
    use crate::executor::{EvalContext, EvalOptions};
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};
    use modelzoo::{method_by_name, SimulatedModel};

    fn logs_for(names: &[&str], seed: u64) -> (Vec<EvalLog>, EvalStore) {
        let corpus = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(seed));
        let ctx = EvalContext::new(&corpus);
        let mut store = EvalStore::new();
        let mut logs = Vec::new();
        for name in names {
            let m = SimulatedModel::new(method_by_name(name).expect("registered"));
            let log = ctx
                .evaluate_with(&m, &EvalOptions::new().subset(40).static_check(true))
                .expect("model runs on Spider");
            store.insert_run(&log, "spider").expect("insert");
            logs.push(log);
        }
        (logs, store)
    }

    #[test]
    fn runs_and_results_row_counts_match_the_log() {
        let (logs, store) = logs_for(&["C3SQL"], 41);
        let runs = store.sql("SELECT COUNT(*) FROM eval_runs").unwrap();
        assert_eq!(runs.rows[0][0], Value::Int(1));
        let expected: i64 = logs[0].records.iter().map(|r| r.variants.len() as i64).sum();
        let results = store.sql("SELECT COUNT(*) FROM eval_results").unwrap();
        assert_eq!(results.rows[0][0], Value::Int(expected));
        assert_eq!(store.run_count(), 1);
    }

    #[test]
    fn run_summary_row_matches_the_metrics_module() {
        let (logs, store) = logs_for(&["DAILSQL"], 43);
        let rs = store
            .sql("SELECT ex, em, ves, samples FROM eval_runs WHERE run_id = 1")
            .unwrap();
        let row = &rs.rows[0];
        let filter = Filter::all();
        assert_eq!(row[0], Value::Real(metrics::ex(&logs[0], &filter).unwrap()));
        assert_eq!(row[1], Value::Real(metrics::em(&logs[0], &filter).unwrap()));
        assert_eq!(row[2], Value::Real(metrics::ves(&logs[0], &filter).unwrap()));
        assert_eq!(row[3], Value::Int(logs[0].records.len() as i64));
    }

    #[test]
    fn sql_leaderboard_is_byte_identical_to_the_legacy_report() {
        let (logs, store) = logs_for(&["C3SQL", "DAILSQL", "SFT CodeS-7B", "SuperSQL"], 47);
        let legacy = render_accuracy_leaderboard(&logs, &Filter::all());
        let via_sql = store.sql_accuracy_leaderboard("Spider").unwrap();
        assert_eq!(legacy, via_sql, "SQL-backed leaderboard diverged from report.rs");
    }

    #[test]
    fn sql_exec_failure_profile_is_identical_to_diagnose() {
        let (logs, store) = logs_for(&["C3SQL", "RESDSQL-3B"], 53);
        for (i, log) in logs.iter().enumerate() {
            let legacy = exec_failure_profile(log);
            assert!(!legacy.is_empty(), "corpus 53 must produce some exec failures");
            let via_sql = store.sql_exec_failure_profile(i as i64 + 1).unwrap();
            assert_eq!(legacy, via_sql, "run {} profile diverged from diagnose.rs", i + 1);
        }
    }

    #[test]
    fn static_verdicts_and_failure_kinds_round_trip_through_sql() {
        let (logs, store) = logs_for(&["C3SQL"], 59);
        // every stored failure index maps back to its label
        let rs = store
            .sql(
                "SELECT exec_failure, exec_failure_label FROM eval_results \
                 WHERE exec_failure IS NOT NULL",
            )
            .unwrap();
        assert!(!rs.rows.is_empty());
        for row in &rs.rows {
            let (Value::Int(idx), Value::Text(label)) = (&row[0], &row[1]) else {
                panic!("unexpected row shape: {row:?}");
            };
            assert_eq!(ExecFailureKind::ALL[*idx as usize].label(), label);
        }
        // static_clean aggregates match a direct walk over the log
        let clean_sql = store
            .sql("SELECT COUNT(*) FROM eval_results WHERE static_clean = 1")
            .unwrap();
        let clean_direct = logs[0]
            .records
            .iter()
            .flat_map(|r| &r.variants)
            .filter(|v| v.static_verdict.as_ref().is_some_and(|s| s.clean))
            .count() as i64;
        assert_eq!(clean_sql.rows[0][0], Value::Int(clean_direct));
    }

    #[test]
    fn trace_spans_persist_and_answer_sql() {
        let mut store = EvalStore::new();
        let span = |trace: &str, span_id: i64, parent: i64, name: &str, dur: i64| TraceSpanRow {
            trace_id: trace.to_string(),
            span_id,
            parent_id: parent,
            name: name.to_string(),
            process: "serve".to_string(),
            start_us: 0,
            dur_us: dur,
            attrs: "outcome=ok".to_string(),
        };
        store
            .insert_trace_spans(&[
                span("00000000000000ab", 1, 0, "request", 100),
                span("00000000000000ab", 2, 1, "execute", 60),
                span("00000000000000cd", 3, 0, "request", 40),
            ])
            .expect("insert spans");
        store.insert_trace_spans(&[]).expect("empty insert is a no-op");
        let rs = store
            .sql("SELECT COUNT(*) FROM trace_spans WHERE trace_id = '00000000000000ab'")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        // stage-level latency attribution is plain SQL
        let rs = store
            .sql("SELECT name, MAX(dur_us) FROM trace_spans GROUP BY name ORDER BY name")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[1][0], Value::text("request"));
        assert_eq!(rs.rows[1][1], Value::Int(100));
    }

    #[test]
    fn metrics_snapshots_get_monotonic_ids() {
        let mut store = EvalStore::new();
        let a = store.insert_metrics_snapshot(10, &[("completed", 5), ("failed", 1)]).unwrap();
        let b = store.insert_metrics_snapshot(20, &[("completed", 9), ("failed", 1)]).unwrap();
        assert_eq!((a, b), (1, 2));
        let rs = store
            .sql("SELECT value FROM metrics_history WHERE name = 'completed' ORDER BY snapshot_id")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(5)], vec![Value::Int(9)]]);
        // latest snapshot is MAX(snapshot_id)
        let rs = store.sql("SELECT MAX(at_ms) FROM metrics_history").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(20));
    }

    #[test]
    fn leaderboard_rejects_unescapable_dataset_labels() {
        let store = EvalStore::new();
        assert!(store.sql_accuracy_leaderboard("x' OR '1'='1").is_err());
        // empty store renders an empty (header-only) table
        let rendered = store.sql_accuracy_leaderboard("Spider").unwrap();
        assert!(rendered.starts_with("Method"));
    }
}
