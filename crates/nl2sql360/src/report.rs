//! Plain-text table and series rendering for leaderboards and experiment
//! reports (paper §3, "Evaluator": tables, leaderboards, dashboards).

use std::fmt::Write;

/// A fixed-width text table builder.
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                if i == 0 {
                    // left-align the first column (names)
                    out.push_str(cell);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(cell);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Format an optional percentage with one decimal, `-` when absent.
pub fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "-".to_string(),
    }
}

/// Format an optional value with `digits` decimals, `-` when absent.
pub fn fmt_opt(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(v) => format!("{v:.digits$}"),
        None => "-".to_string(),
    }
}

/// Render a (label, value) series as an aligned two-column list — the text
/// stand-in for the paper's line/scatter figures.
pub fn render_series(title: &str, points: &[(String, f64)]) -> String {
    let mut out = format!("{title}\n");
    let w = points.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    for (label, value) in points {
        let _ = writeln!(out, "  {label:<w$}  {value:>8.2}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Method", "EX", "EM"]);
        t.row(vec!["DAILSQL".into(), "83.1".into(), "70.0".into()]);
        t.row(vec!["SuperSQL".into(), "87.0".into(), "72.1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("SuperSQL"));
        // numeric columns right-aligned: both EX cells end at same offset
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_pct(Some(83.14)), "83.1");
        assert_eq!(fmt_pct(None), "-");
        assert_eq!(fmt_opt(Some(0.0288), 4), "0.0288");
    }

    #[test]
    fn series_rendering() {
        let s = render_series(
            "EX vs size",
            &[("500".to_string(), 61.2), ("7000".to_string(), 79.8)],
        );
        assert!(s.contains("EX vs size"));
        assert!(s.contains("61.20"));
        assert!(s.contains("7000"));
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new(&["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains('x'));
    }
}
