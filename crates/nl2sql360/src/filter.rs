//! The dataset filter (paper §3, Scenarios 1–4).
//!
//! NL2SQL360's central idea is slicing benchmarks into focused subsets:
//! by SQL complexity (Scenario 1), by SQL characteristics like subqueries /
//! JOIN counts / logical connectors / ORDER BY (Scenario 2), by data domain
//! (Scenario 3), and by NL-variant availability for query-variance testing
//! (Scenario 4). A [`Filter`] is a conjunction of such criteria applied to
//! evaluation records.

use crate::executor::SampleRecord;
use serde::{Deserialize, Serialize};
use sqlkit::hardness::{BirdDifficulty, Hardness};

/// Bucketing for counted characteristics (#JOINs, #logical connectors),
/// matching the y-axis rows of the paper's Figures 6–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CountBucket {
    /// Exactly zero.
    Zero,
    /// Exactly one.
    One,
    /// Two or more.
    TwoPlus,
    /// One or more (the "w/" rows of Figure 5).
    Any,
}

impl CountBucket {
    /// Does `n` fall into this bucket?
    pub fn matches(&self, n: usize) -> bool {
        match self {
            CountBucket::Zero => n == 0,
            CountBucket::One => n == 1,
            CountBucket::TwoPlus => n >= 2,
            CountBucket::Any => n >= 1,
        }
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CountBucket::Zero => "0",
            CountBucket::One => "1",
            CountBucket::TwoPlus => ">=2",
            CountBucket::Any => ">=1",
        }
    }
}

/// A conjunctive filter over evaluation records. `Default` matches all.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// Scenario 1: Spider hardness bucket.
    pub hardness: Option<Hardness>,
    /// Scenario 1 (BIRD): difficulty bucket.
    pub bird_difficulty: Option<BirdDifficulty>,
    /// Scenario 2: presence of subqueries.
    pub has_subquery: Option<bool>,
    /// Scenario 2: JOIN-count bucket.
    pub join_bucket: Option<CountBucket>,
    /// Scenario 2: logical-connector-count bucket.
    pub logical_bucket: Option<CountBucket>,
    /// Scenario 2: presence of ORDER BY.
    pub has_order_by: Option<bool>,
    /// Scenario 3: domain name.
    pub domain: Option<String>,
    /// Scenario 4: minimum number of NL variants (QVT uses ≥ 2).
    pub min_variants: Option<usize>,
}

impl Filter {
    /// Match-all filter.
    pub fn all() -> Self {
        Self::default()
    }

    /// Restrict to one hardness bucket.
    pub fn hardness(mut self, h: Hardness) -> Self {
        self.hardness = Some(h);
        self
    }

    /// Restrict to one BIRD difficulty bucket.
    pub fn bird_difficulty(mut self, d: BirdDifficulty) -> Self {
        self.bird_difficulty = Some(d);
        self
    }

    /// Restrict by subquery presence.
    pub fn subquery(mut self, present: bool) -> Self {
        self.has_subquery = Some(present);
        self
    }

    /// Restrict by JOIN-count bucket.
    pub fn joins(mut self, bucket: CountBucket) -> Self {
        self.join_bucket = Some(bucket);
        self
    }

    /// Restrict by logical-connector bucket.
    pub fn logical(mut self, bucket: CountBucket) -> Self {
        self.logical_bucket = Some(bucket);
        self
    }

    /// Restrict by ORDER BY presence.
    pub fn order_by(mut self, present: bool) -> Self {
        self.has_order_by = Some(present);
        self
    }

    /// Restrict to a domain (case-insensitive).
    pub fn domain(mut self, name: impl Into<String>) -> Self {
        self.domain = Some(name.into());
        self
    }

    /// Restrict to samples with at least `n` NL variants.
    pub fn min_variants(mut self, n: usize) -> Self {
        self.min_variants = Some(n);
        self
    }

    /// Parse a comma-separated filter specification, the CLI surface of the
    /// dataset filter:
    ///
    /// ```text
    /// hardness=easy|medium|hard|extra
    /// difficulty=simple|moderate|challenging
    /// subquery=yes|no        orderby=yes|no
    /// joins=0|1|2+|1+        logical=0|1|2+|1+
    /// domain=<name>          variants=<min>
    /// ```
    ///
    /// ```
    /// use nl2sql360::Filter;
    /// let f = Filter::parse("hardness=extra,subquery=yes,joins=2+").unwrap();
    /// assert!(f.has_subquery == Some(true));
    /// ```
    pub fn parse(spec: &str) -> Result<Filter, String> {
        let mut f = Filter::all();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("`{part}` is not a key=value pair"))?;
            let value = value.trim();
            match key.trim().to_lowercase().as_str() {
                "hardness" => {
                    f.hardness = Some(match value.to_lowercase().as_str() {
                        "easy" => Hardness::Easy,
                        "medium" | "med" => Hardness::Medium,
                        "hard" => Hardness::Hard,
                        "extra" => Hardness::Extra,
                        other => return Err(format!("unknown hardness `{other}`")),
                    })
                }
                "difficulty" => {
                    f.bird_difficulty = Some(match value.to_lowercase().as_str() {
                        "simple" => BirdDifficulty::Simple,
                        "moderate" => BirdDifficulty::Moderate,
                        "challenging" => BirdDifficulty::Challenging,
                        other => return Err(format!("unknown difficulty `{other}`")),
                    })
                }
                "subquery" => f.has_subquery = Some(parse_bool(value)?),
                "orderby" | "order_by" => f.has_order_by = Some(parse_bool(value)?),
                "joins" => f.join_bucket = Some(parse_bucket(value)?),
                "logical" => f.logical_bucket = Some(parse_bucket(value)?),
                "domain" => f.domain = Some(value.to_string()),
                "variants" => {
                    f.min_variants = Some(
                        value.parse().map_err(|_| format!("`{value}` is not a count"))?,
                    )
                }
                other => return Err(format!("unknown filter key `{other}`")),
            }
        }
        Ok(f)
    }

    /// Does a record pass all criteria?
    pub fn matches(&self, r: &SampleRecord) -> bool {
        if let Some(h) = self.hardness {
            if r.hardness != h {
                return false;
            }
        }
        if let Some(d) = self.bird_difficulty {
            if r.bird_difficulty != d {
                return false;
            }
        }
        if let Some(sub) = self.has_subquery {
            if r.features.has_subquery() != sub {
                return false;
            }
        }
        if let Some(b) = self.join_bucket {
            if !b.matches(r.features.join_count) {
                return false;
            }
        }
        if let Some(b) = self.logical_bucket {
            if !b.matches(r.features.logical_connector_count) {
                return false;
            }
        }
        if let Some(ob) = self.has_order_by {
            if r.features.has_order_by() != ob {
                return false;
            }
        }
        if let Some(d) = &self.domain {
            if !r.domain.eq_ignore_ascii_case(d) {
                return false;
            }
        }
        if let Some(n) = self.min_variants {
            if r.variants.len() < n {
                return false;
            }
        }
        true
    }
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v.to_lowercase().as_str() {
        "yes" | "true" | "1" | "with" => Ok(true),
        "no" | "false" | "0" | "without" => Ok(false),
        other => Err(format!("`{other}` is not yes/no")),
    }
}

fn parse_bucket(v: &str) -> Result<CountBucket, String> {
    match v {
        "0" => Ok(CountBucket::Zero),
        "1" => Ok(CountBucket::One),
        "2+" => Ok(CountBucket::TwoPlus),
        "1+" | "any" => Ok(CountBucket::Any),
        other => Err(format!("`{other}` is not 0/1/2+/1+")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkit::SqlFeatures;

    #[test]
    fn parse_full_spec() {
        let f = Filter::parse("hardness=extra, subquery=yes, joins=2+, orderby=no, domain=College, variants=2").unwrap();
        assert_eq!(f.hardness, Some(Hardness::Extra));
        assert_eq!(f.has_subquery, Some(true));
        assert_eq!(f.join_bucket, Some(CountBucket::TwoPlus));
        assert_eq!(f.has_order_by, Some(false));
        assert_eq!(f.domain.as_deref(), Some("College"));
        assert_eq!(f.min_variants, Some(2));
    }

    #[test]
    fn parse_empty_is_match_all() {
        assert_eq!(Filter::parse("").unwrap(), Filter::all());
        assert_eq!(Filter::parse(" , ").unwrap(), Filter::all());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(Filter::parse("hardness=ultra").is_err());
        assert!(Filter::parse("joins=3").is_err());
        assert!(Filter::parse("nonsense").is_err());
        assert!(Filter::parse("color=red").is_err());
        assert!(Filter::parse("subquery=maybe").is_err());
    }

    #[test]
    fn parse_difficulty_and_logical() {
        let f = Filter::parse("difficulty=challenging,logical=1+").unwrap();
        assert_eq!(f.bird_difficulty, Some(BirdDifficulty::Challenging));
        assert_eq!(f.logical_bucket, Some(CountBucket::Any));
    }

    fn record(join_count: usize, subq: usize, order: usize) -> SampleRecord {
        let features = SqlFeatures {
            join_count,
            subquery_count: subq,
            order_by_count: order,
            logical_connector_count: join_count, // arbitrary
            ..SqlFeatures::default()
        };
        SampleRecord {
            sample_id: 0,
            db_id: "d".into(),
            domain: "College".into(),
            hardness: Hardness::Medium,
            bird_difficulty: BirdDifficulty::Simple,
            features,
            gold_sql: "SELECT 1".into(),
            gold_work: 1,
            variants: vec![],
        }
    }

    #[test]
    fn default_matches_everything() {
        assert!(Filter::all().matches(&record(0, 0, 0)));
        assert!(Filter::all().matches(&record(3, 2, 1)));
    }

    #[test]
    fn hardness_filter() {
        let f = Filter::all().hardness(Hardness::Medium);
        assert!(f.matches(&record(0, 0, 0)));
        let f = Filter::all().hardness(Hardness::Extra);
        assert!(!f.matches(&record(0, 0, 0)));
    }

    #[test]
    fn characteristic_filters() {
        let r = record(2, 1, 0);
        assert!(Filter::all().subquery(true).matches(&r));
        assert!(!Filter::all().subquery(false).matches(&r));
        assert!(Filter::all().joins(CountBucket::TwoPlus).matches(&r));
        assert!(!Filter::all().joins(CountBucket::One).matches(&r));
        assert!(Filter::all().order_by(false).matches(&r));
    }

    #[test]
    fn count_buckets() {
        assert!(CountBucket::Zero.matches(0));
        assert!(!CountBucket::Zero.matches(1));
        assert!(CountBucket::One.matches(1));
        assert!(CountBucket::TwoPlus.matches(5));
        assert!(CountBucket::Any.matches(1));
        assert!(!CountBucket::Any.matches(0));
        assert_eq!(CountBucket::TwoPlus.label(), ">=2");
    }

    #[test]
    fn domain_filter_case_insensitive() {
        let r = record(0, 0, 0);
        assert!(Filter::all().domain("college").matches(&r));
        assert!(!Filter::all().domain("Music").matches(&r));
    }

    #[test]
    fn conjunction() {
        let r = record(1, 0, 1);
        let f = Filter::all().joins(CountBucket::One).subquery(false).order_by(true);
        assert!(f.matches(&r));
        let f2 = f.clone().hardness(Hardness::Extra);
        assert!(!f2.matches(&r));
    }
}
