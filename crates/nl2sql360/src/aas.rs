//! NL2SQL360-AAS: automated architecture search over the NL2SQL design
//! space (paper §5.2, Figure 14).
//!
//! A standard genetic algorithm over [`ModuleSet`] individuals:
//!
//! 1. **Initialization** — N random module combinations;
//! 2. **Individual selection** — Russian-roulette (fitness-proportional)
//!    sampling that consistently eliminates the worst performer;
//! 3. **Module swap** — selected pairs exchange whole layers with
//!    probability `p_swap` per layer;
//! 4. **Module mutation** — each layer re-randomizes with probability
//!    `p_mutation`.
//!
//! Fitness is the *measured* Execution Accuracy of the composed pipeline on
//! the target dataset, evaluated through the same executor as every other
//! experiment. The paper's case study uses N=10, T=20, p_s=0.5, p_m=0.2
//! with GPT-3.5 as the search backbone, then re-bases the winner on GPT-4 —
//! which yields the SuperSQL composition.

use crate::executor::EvalContext;
use crate::pipeline::{compose, Backbone};
use modelzoo::{Decoding, FewShot, Intermediate, ModuleSet, MultiStep, PostProcessing};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// GA hyper-parameters; `default_paper` matches the §5.3 case study.
#[derive(Debug, Clone, Copy)]
pub struct AasConfig {
    /// Population size N.
    pub population: usize,
    /// Number of generations T.
    pub generations: usize,
    /// Per-layer module swap probability p_s.
    pub p_swap: f64,
    /// Per-layer module mutation probability p_m.
    pub p_mutation: f64,
    /// Dev samples used per fitness evaluation.
    pub fitness_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl AasConfig {
    /// The paper's case-study settings: N=10, T=20, p_s=0.5, p_m=0.2.
    pub fn paper(seed: u64) -> Self {
        Self {
            population: 10,
            generations: 20,
            p_swap: 0.5,
            p_mutation: 0.2,
            fitness_samples: 200,
            seed,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            population: 6,
            generations: 4,
            p_swap: 0.5,
            p_mutation: 0.2,
            fitness_samples: 40,
            seed,
        }
    }
}

/// Statistics of one generation.
#[derive(Debug, Clone, Copy)]
pub struct GenerationStats {
    /// Generation index (0-based).
    pub generation: usize,
    /// Best fitness in the population.
    pub best: f64,
    /// Mean fitness.
    pub mean: f64,
    /// Worst fitness.
    pub worst: f64,
}

/// Result of a search run.
#[derive(Debug, Clone)]
pub struct AasResult {
    /// The best module combination found.
    pub best: ModuleSet,
    /// Its fitness (EX percent on the fitness subset).
    pub best_fitness: f64,
    /// Per-generation statistics (convergence curve).
    pub history: Vec<GenerationStats>,
    /// Number of distinct pipelines evaluated.
    pub evaluations: usize,
}

fn random_modules(rng: &mut StdRng) -> ModuleSet {
    ModuleSet {
        schema_linking: rng.gen_bool(0.5),
        db_content: rng.gen_bool(0.5),
        few_shot: *pick(rng, &[FewShot::ZeroShot, FewShot::Manual, FewShot::SimilarityBased]),
        multi_step: *pick(
            rng,
            &[MultiStep::None, MultiStep::SkeletonParsing, MultiStep::Decomposition],
        ),
        intermediate: *pick(rng, &[Intermediate::None, Intermediate::NatSql]),
        // the case study fixes decoding to Greedy (API backbones expose no
        // decoder control)
        decoding: Decoding::Greedy,
        post: *pick(
            rng,
            &[
                PostProcessing::None,
                PostProcessing::SelfCorrection,
                PostProcessing::SelfConsistency,
                PostProcessing::ExecutionGuided,
                PostProcessing::Reranker,
                PostProcessing::StaticRepair,
            ],
        ),
    }
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

fn mutate_layer(m: &mut ModuleSet, layer: usize, rng: &mut StdRng) {
    match layer {
        0 => m.schema_linking = !m.schema_linking,
        1 => m.db_content = !m.db_content,
        2 => {
            m.few_shot =
                *pick(rng, &[FewShot::ZeroShot, FewShot::Manual, FewShot::SimilarityBased])
        }
        3 => {
            m.multi_step = *pick(
                rng,
                &[MultiStep::None, MultiStep::SkeletonParsing, MultiStep::Decomposition],
            )
        }
        4 => m.intermediate = *pick(rng, &[Intermediate::None, Intermediate::NatSql]),
        _ => {
            m.post = *pick(
                rng,
                &[
                    PostProcessing::None,
                    PostProcessing::SelfCorrection,
                    PostProcessing::SelfConsistency,
                    PostProcessing::ExecutionGuided,
                    PostProcessing::Reranker,
                    PostProcessing::StaticRepair,
                ],
            )
        }
    }
}

fn swap_layers(a: &mut ModuleSet, b: &mut ModuleSet, p_swap: f64, rng: &mut StdRng) {
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.schema_linking, &mut b.schema_linking);
    }
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.db_content, &mut b.db_content);
    }
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.few_shot, &mut b.few_shot);
    }
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.multi_step, &mut b.multi_step);
    }
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.intermediate, &mut b.intermediate);
    }
    if rng.gen_bool(p_swap) {
        std::mem::swap(&mut a.post, &mut b.post);
    }
}

/// Evaluate every not-yet-cached individual of a population, fanning the
/// fitness evaluations over `workers` scoped threads.
///
/// The search trajectory must not depend on the worker count, and composed
/// pipeline names salt the simulated models' prediction noise — so names
/// are assigned *before* the parallel fan-out, in the population's
/// first-occurrence order (`aas-{cache.len()+k}`), exactly the order the
/// sequential loop would have composed them in. Results then enter the
/// cache in that same order, keeping `evaluations` and every subsequent
/// roulette draw identical at any worker count.
fn evaluate_pending(
    ctx: &EvalContext<'_>,
    backbone: &Backbone,
    cfg: &AasConfig,
    workers: usize,
    population: &[ModuleSet],
    cache: &mut HashMap<ModuleSet, f64>,
    evaluations: &mut usize,
) {
    let mut pending: Vec<ModuleSet> = Vec::new();
    for m in population {
        if !cache.contains_key(m) && !pending.contains(m) {
            pending.push(*m);
        }
    }
    if pending.is_empty() {
        return;
    }
    let base = cache.len();
    let results: Vec<f64> = if workers <= 1 || pending.len() < 2 {
        pending
            .iter()
            .enumerate()
            .map(|(k, m)| {
                let model = compose(format!("aas-{}", base + k), backbone, *m);
                ctx.fitness_ex(&model, cfg.fitness_samples)
                    .expect("composed pipelines run on every dataset")
            })
            .collect()
    } else {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<f64>>> =
            (0..pending.len()).map(|_| Mutex::new(None)).collect();
        let pending = &pending;
        crossbeam::thread::scope(|s| {
            for _ in 0..workers.min(pending.len()) {
                s.spawn(|_| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= pending.len() {
                        break;
                    }
                    let model = compose(format!("aas-{}", base + k), backbone, pending[k]);
                    let f = ctx
                        .fitness_ex(&model, cfg.fitness_samples)
                        .expect("composed pipelines run on every dataset");
                    *slots[k].lock().expect("slot poisoned") = Some(f);
                });
            }
        })
        .expect("fitness worker panicked");
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot poisoned").expect("all slots evaluated"))
            .collect()
    };
    for (m, f) in pending.iter().zip(results) {
        cache.insert(*m, f);
        *evaluations += 1;
    }
}

/// Run the genetic search. Fitness = measured EX of the composed pipeline
/// over `cfg.fitness_samples` dev samples of `ctx`. Fitness evaluations run
/// on the default worker pool; the search trajectory is identical at any
/// worker count.
pub fn search(ctx: &EvalContext<'_>, backbone: &Backbone, cfg: &AasConfig) -> AasResult {
    search_with_workers(ctx, backbone, cfg, crate::executor::default_workers())
}

/// [`search`] with an explicit fitness worker count.
pub fn search_with_workers(
    ctx: &EvalContext<'_>,
    backbone: &Backbone,
    cfg: &AasConfig,
    workers: usize,
) -> AasResult {
    assert!(cfg.population >= 2, "population must hold at least two individuals");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut cache: HashMap<ModuleSet, f64> = HashMap::new();
    let mut evaluations = 0usize;

    let mut population: Vec<ModuleSet> =
        (0..cfg.population).map(|_| random_modules(&mut rng)).collect();
    let mut history = Vec::with_capacity(cfg.generations);
    let mut best = population[0];
    let mut best_fitness = f64::NEG_INFINITY;

    for generation in 0..cfg.generations {
        evaluate_pending(ctx, backbone, cfg, workers, &population, &mut cache, &mut evaluations);
        let scores: Vec<f64> = population.iter().map(|m| cache[m]).collect();

        // track the champion
        for (m, &f) in population.iter().zip(&scores) {
            if f > best_fitness {
                best_fitness = f;
                best = *m;
            }
        }
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let worst = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        history.push(GenerationStats {
            generation,
            best: scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            mean,
            worst,
        });

        // Russian-roulette selection: drop the worst performer, then sample
        // parents proportional to fitness.
        let worst_idx = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .expect("non-empty population");
        let pool: Vec<(ModuleSet, f64)> = population
            .iter()
            .zip(&scores)
            .enumerate()
            .filter(|(i, _)| *i != worst_idx)
            .map(|(_, (m, f))| (*m, f.max(1.0)))
            .collect();
        let total: f64 = pool.iter().map(|(_, f)| f).sum();
        let roulette = |rng: &mut StdRng| -> ModuleSet {
            let mut roll = rng.gen_range(0.0..total);
            for (m, f) in &pool {
                if roll < *f {
                    return *m;
                }
                roll -= f;
            }
            pool.last().expect("non-empty pool").0
        };

        // breed the next generation (elitism: keep the champion)
        let mut next = vec![best];
        while next.len() < cfg.population {
            let mut a = roulette(&mut rng);
            let mut b = roulette(&mut rng);
            swap_layers(&mut a, &mut b, cfg.p_swap, &mut rng);
            for child in [&mut a, &mut b] {
                for layer in 0..6 {
                    if rng.gen_bool(cfg.p_mutation) {
                        mutate_layer(child, layer, &mut rng);
                    }
                }
            }
            next.push(a);
            if next.len() < cfg.population {
                next.push(b);
            }
        }
        population = next;
    }

    // final evaluation pass over the last generation
    evaluate_pending(ctx, backbone, cfg, workers, &population, &mut cache, &mut evaluations);
    for m in &population {
        let f = cache[m];
        if f > best_fitness {
            best_fitness = f;
            best = *m;
        }
    }

    AasResult { best, best_fitness, history, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::gpt35;
    use datagen::{generate_corpus, CorpusConfig, CorpusKind};
    use modelzoo::modules::module_ex_bonus;

    fn ctx_corpus() -> datagen::Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(55))
    }

    #[test]
    fn search_is_deterministic() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let a = search(&ctx, &gpt35(), &AasConfig::tiny(3));
        let b = search(&ctx, &gpt35(), &AasConfig::tiny(3));
        assert_eq!(a.best, b.best);
        assert_eq!(a.best_fitness, b.best_fitness);
    }

    #[test]
    fn search_improves_over_generations() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let r = search(&ctx, &gpt35(), &AasConfig::tiny(7));
        let first = r.history.first().unwrap().best;
        let last = r.history.last().unwrap().best;
        assert!(last >= first, "GA should not regress the champion");
        assert!(r.evaluations > 0);
    }

    #[test]
    fn found_configuration_has_helpful_modules() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let mut cfg = AasConfig::tiny(11);
        cfg.generations = 8;
        cfg.population = 8;
        let r = search(&ctx, &gpt35(), &cfg);
        // the winner should carry a meaningfully positive module bonus —
        // randomly-initialized bare pipelines lose to module-rich ones
        assert!(
            module_ex_bonus(&r.best) >= 2.0,
            "winner {:?} has bonus {}",
            r.best,
            module_ex_bonus(&r.best)
        );
    }

    #[test]
    fn history_length_matches_generations() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let cfg = AasConfig::tiny(1);
        let r = search(&ctx, &gpt35(), &cfg);
        assert_eq!(r.history.len(), cfg.generations);
        for w in r.history.windows(1) {
            assert!(w[0].worst <= w[0].best + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "population must hold at least two")]
    fn tiny_population_rejected() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let mut cfg = AasConfig::tiny(1);
        cfg.population = 1;
        let _ = search(&ctx, &gpt35(), &cfg);
    }
}
