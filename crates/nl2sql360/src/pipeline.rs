//! Composed NL2SQL pipelines over the Figure-13 design space.
//!
//! The AAS search (paper §5.2) explores combinations of modules around a
//! backbone LLM. [`compose`] turns (backbone, [`ModuleSet`]) into a
//! runnable [`SimulatedModel`] whose capability profile is the backbone's
//! bare zero-shot profile plus the per-module accuracy contributions of
//! `modelzoo::modules` — so the GA's fitness landscape reflects real module
//! interactions measured through the full evaluation stack.

use modelzoo::modules::{module_ex_bonus, module_join_bonus, module_subquery_bonus};
use modelzoo::{
    ApiPricing, CapabilityProfile, MethodClass, MethodSpec, ModuleSet, Serving, SimulatedModel,
};

/// A backbone LLM with its bare zero-shot capability.
#[derive(Debug, Clone, Copy)]
pub struct Backbone {
    /// Backbone name.
    pub name: &'static str,
    /// Bare zero-shot Spider EX per hardness (no helper modules).
    pub base_spider_ex: [f64; 4],
    /// Bare zero-shot BIRD EX per difficulty.
    pub base_bird_ex: [f64; 3],
    /// Baseline EM/EX style alignment of the backbone.
    pub em_ratio: f64,
    /// Subquery delta of the backbone (reasoning ability).
    pub subquery_delta: f64,
    /// API pricing.
    pub pricing: ApiPricing,
}

/// GPT-4 backbone: strong zero-shot SQL, strong nesting.
pub fn gpt4() -> Backbone {
    Backbone {
        name: "GPT-4",
        base_spider_ex: [86.5, 83.4, 75.4, 60.8],
        base_bird_ex: [59.0, 39.5, 36.5],
        em_ratio: 0.80,
        subquery_delta: 5.0,
        pricing: ApiPricing::GPT4,
    }
}

/// GPT-3.5-turbo backbone: cheaper, weaker zero-shot.
pub fn gpt35() -> Backbone {
    Backbone {
        name: "GPT-3.5",
        base_spider_ex: [81.0, 73.5, 60.0, 45.0],
        base_bird_ex: [50.0, 30.0, 24.0],
        em_ratio: 0.60,
        subquery_delta: 3.0,
        pricing: ApiPricing::GPT35,
    }
}

/// Compose a runnable pipeline from a backbone and a module configuration.
pub fn compose(name: String, backbone: &Backbone, modules: ModuleSet) -> SimulatedModel {
    let bonus = module_ex_bonus(&modules);
    let add = |a: [f64; 4]| {
        [
            (a[0] + bonus).min(98.0),
            (a[1] + bonus).min(98.0),
            (a[2] + bonus * 1.2).min(98.0), // modules help harder queries a bit more
            (a[3] + bonus * 1.2).min(98.0),
        ]
    };
    let spider_ex = add(backbone.base_spider_ex);
    let spider_em = [
        spider_ex[0] * backbone.em_ratio,
        spider_ex[1] * backbone.em_ratio,
        spider_ex[2] * backbone.em_ratio * 0.85,
        spider_ex[3] * backbone.em_ratio * 0.7,
    ];
    let b = backbone.base_bird_ex;
    let bird_ex =
        [(b[0] + bonus).min(98.0), (b[1] + bonus).min(98.0), (b[2] + bonus).min(98.0)];
    let profile = CapabilityProfile {
        spider_ex,
        spider_em,
        bird_ex: Some(bird_ex),
        subquery_delta: backbone.subquery_delta + module_subquery_bonus(&modules),
        join_delta: 1.5 + module_join_bonus(&modules),
        logical_delta: 2.0,
        orderby_delta_spider: -2.0,
        orderby_delta_bird: 2.0,
        variant_instability: if modules.schema_linking { 0.08 } else { 0.12 },
        domain_sensitivity: 0.0,
        domain_bias_scale: 2.5,
        // schema linking re-ranks against the live schema and DB-content
        // matching re-anchors values, both of which soften perturbations
        perturb_penalty: [
            7.0,
            if modules.schema_linking { 7.0 } else { 9.0 },
            if modules.db_content { 2.5 } else { 4.0 },
        ],
    };
    let spec = MethodSpec {
        name: Box::leak(name.into_boxed_str()),
        class: MethodClass::Hybrid,
        backbone: backbone.name,
        params_b: None,
        release: (2024, 6),
        modules,
        profile,
        serving: Serving::Api(backbone.pricing),
    };
    SimulatedModel::new(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modelzoo::Nl2SqlModel;

    #[test]
    fn supersql_composition_beats_bare_backbone() {
        let bare = compose("bare".into(), &gpt4(), ModuleSet::bare());
        let full = compose("full".into(), &gpt4(), ModuleSet::supersql());
        for i in 0..4 {
            assert!(full.profile().spider_ex[i] > bare.profile().spider_ex[i]);
        }
    }

    #[test]
    fn supersql_on_gpt4_lands_near_table3() {
        let m = compose("SuperSQL*".into(), &gpt4(), ModuleSet::supersql());
        let paper = [94.4, 91.3, 83.3, 68.7];
        for (got, want) in m.profile().spider_ex.iter().zip(paper) {
            assert!(
                (got - want).abs() < 4.0,
                "composed SuperSQL {got} too far from paper {want}"
            );
        }
    }

    #[test]
    fn gpt35_backbone_weaker_than_gpt4() {
        let a = compose("a".into(), &gpt35(), ModuleSet::supersql());
        let b = compose("b".into(), &gpt4(), ModuleSet::supersql());
        assert!(b.profile().spider_ex[3] > a.profile().spider_ex[3]);
    }

    #[test]
    fn composed_model_is_runnable() {
        use crate::executor::EvalOptions;
        use datagen::{generate_corpus, CorpusConfig, CorpusKind};
        let c = generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(11));
        let ctx = crate::executor::EvalContext::new(&c);
        let m = compose("probe".into(), &gpt4(), ModuleSet::supersql());
        let log = ctx.evaluate_with(&m, &EvalOptions::new().subset(20)).unwrap();
        assert_eq!(log.records.len(), 20);
        assert_eq!(m.name(), "probe");
    }

    #[test]
    fn em_profile_stays_below_ex() {
        let m = compose("x".into(), &gpt4(), ModuleSet::supersql());
        for i in 0..4 {
            assert!(m.profile().spider_em[i] <= m.profile().spider_ex[i]);
        }
    }
}
