//! Log persistence (paper §3, "Executor and Logs").
//!
//! Evaluation logs serialize to JSON so experiments can be re-analyzed
//! without re-running models — the same role the original NL2SQL360
//! artifact's log store plays. A [`LogStore`] is a directory of
//! `<dataset>/<method>.json` files.

use crate::executor::EvalLog;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory-backed store of evaluation logs.
#[derive(Debug, Clone)]
pub struct LogStore {
    root: PathBuf,
}

impl LogStore {
    /// Open (creating if needed) a log store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, dataset: &str, method: &str) -> PathBuf {
        let safe: String = method
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '-' || c == '.' { c } else { '_' })
            .collect();
        self.root.join(dataset).join(format!("{safe}.json"))
    }

    /// Persist one log.
    pub fn save(&self, log: &EvalLog) -> io::Result<PathBuf> {
        let path = self.path_for(&log.dataset, &log.method);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let json = serde_json::to_string(log)?;
        fs::write(&path, json)?;
        Ok(path)
    }

    /// Load one log back.
    pub fn load(&self, dataset: &str, method: &str) -> io::Result<EvalLog> {
        let path = self.path_for(dataset, method);
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// List stored (dataset, method) pairs.
    pub fn list(&self) -> io::Result<Vec<(String, String)>> {
        let mut out = Vec::new();
        for ds_entry in fs::read_dir(&self.root)? {
            let ds_entry = ds_entry?;
            if !ds_entry.file_type()?.is_dir() {
                continue;
            }
            let dataset = ds_entry.file_name().to_string_lossy().to_string();
            for f in fs::read_dir(ds_entry.path())? {
                let f = f?;
                let name = f.file_name().to_string_lossy().to_string();
                if let Some(stem) = name.strip_suffix(".json") {
                    out.push((dataset.clone(), stem.to_string()));
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SampleRecord, VariantRecord};
    use sqlkit::hardness::{BirdDifficulty, Hardness};
    use sqlkit::SqlFeatures;

    fn sample_log() -> EvalLog {
        EvalLog {
            method: "DAILSQL(SC)".into(),
            class_label: "LLM (P)".into(),
            dataset: "Spider".into(),
            records: vec![SampleRecord {
                sample_id: 0,
                db_id: "db".into(),
                domain: "College".into(),
                hardness: Hardness::Easy,
                bird_difficulty: BirdDifficulty::Simple,
                features: SqlFeatures::default(),
                gold_sql: "SELECT 1".into(),
                gold_work: 3,
                variants: vec![VariantRecord {
                    ex: true,
                    em: false,
                    pred_sql: "SELECT 1".into(),
                    pred_work: Some(3),
                    exec_failure: None,
                    static_verdict: None,
                    match_kind: None,
                    prompt_tokens: 10,
                    completion_tokens: 2,
                    cost_usd: 0.001,
                    latency_s: 0.5,
                }],
            }],
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("nl2sql360-logs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_load_roundtrip() {
        let store = LogStore::open(tmpdir("roundtrip")).unwrap();
        let log = sample_log();
        store.save(&log).unwrap();
        let loaded = store.load("Spider", "DAILSQL(SC)").unwrap();
        assert_eq!(loaded.method, log.method);
        assert_eq!(loaded.records.len(), 1);
        assert!(loaded.records[0].canonical().ex);
        assert!(!loaded.records[0].canonical().em);
    }

    #[test]
    fn special_characters_in_method_names() {
        let store = LogStore::open(tmpdir("special")).unwrap();
        let mut log = sample_log();
        log.method = "RESDSQL-3B + NatSQL".into();
        let path = store.save(&log).unwrap();
        assert!(path.to_string_lossy().contains("RESDSQL-3B___NatSQL"));
        assert!(store.load("Spider", "RESDSQL-3B + NatSQL").is_ok());
    }

    #[test]
    fn list_enumerates_saved_logs() {
        let store = LogStore::open(tmpdir("list")).unwrap();
        let mut a = sample_log();
        a.method = "m1".into();
        let mut b = sample_log();
        b.method = "m2".into();
        b.dataset = "BIRD".into();
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        let ls = store.list().unwrap();
        assert_eq!(
            ls,
            vec![("BIRD".to_string(), "m2".to_string()), ("Spider".to_string(), "m1".to_string())]
        );
    }

    #[test]
    fn missing_log_errors() {
        let store = LogStore::open(tmpdir("missing")).unwrap();
        assert!(store.load("Spider", "nope").is_err());
    }

    #[test]
    fn logs_without_exec_failure_field_still_load() {
        // logs written before `exec_failure` existed must keep loading
        let store = LogStore::open(tmpdir("compat")).unwrap();
        let json = serde_json::to_string(&sample_log()).unwrap();
        let legacy = json.replace("\"exec_failure\":null,", "");
        assert_ne!(legacy, json, "fixture must exercise the missing-field path");
        let path = store.save(&sample_log()).unwrap();
        fs::write(&path, legacy).unwrap();
        let loaded = store.load("Spider", "DAILSQL(SC)").unwrap();
        assert_eq!(loaded.records[0].canonical().exec_failure, None);
        assert!(loaded.records[0].canonical().ex);
    }

    #[test]
    fn exec_failure_kind_roundtrips_through_json() {
        use crate::executor::ExecFailureKind;
        let store = LogStore::open(tmpdir("failkind")).unwrap();
        let mut log = sample_log();
        log.records[0].variants[0].ex = false;
        log.records[0].variants[0].pred_work = None;
        log.records[0].variants[0].exec_failure = Some(ExecFailureKind::UnknownColumn);
        store.save(&log).unwrap();
        let loaded = store.load("Spider", "DAILSQL(SC)").unwrap();
        assert_eq!(
            loaded.records[0].canonical().exec_failure,
            Some(ExecFailureKind::UnknownColumn)
        );
    }
}
