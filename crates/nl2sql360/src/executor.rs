//! The evaluation executor: runs models over benchmark corpora and logs
//! every outcome (paper §3, "Executor and Logs").
//!
//! The executor pre-computes gold execution results once per corpus, builds
//! the few-shot retrieval index once, translates every (sample, variant)
//! pair through a model, executes both gold and predicted SQL on `minidb`,
//! and records EX/EM outcomes together with token/cost/latency accounting.
//! The resulting [`EvalLog`] is the single source every metric and report
//! reads from.

use datagen::{regenerate_content, Corpus, CorpusKind, GeneratedDb, Sample, SchemaProfile};
use minidb::{results_equivalent, ExecError, ResultSet};
use modelzoo::modules::FewShotIndex;
use modelzoo::{DatasetKind, Nl2SqlModel, SimulatedModel, TranslationTask};
use serde::{Deserialize, Serialize};
use sqlkit::hardness::{BirdDifficulty, Hardness};
use sqlkit::SqlFeatures;
use std::collections::HashMap;

/// Why a predicted query failed to execute: the [`minidb::ExecError`] kind
/// flattened to a serializable label, so stored logs keep failure *modes*
/// and not just the boolean EX outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExecFailureKind {
    /// The SQL text failed to parse.
    Parse,
    /// A referenced table does not exist.
    UnknownTable,
    /// A referenced column does not exist in scope.
    UnknownColumn,
    /// A column reference matched more than one table in scope.
    AmbiguousColumn,
    /// A table with this name already exists.
    DuplicateTable,
    /// Mismatched arity.
    Arity,
    /// Type error during evaluation.
    Type,
    /// Unsupported construct reached the executor.
    Unsupported,
    /// Scalar subquery returned more than one row/column.
    CardinalityViolation,
    /// Resource guard tripped.
    ResourceExhausted,
}

impl ExecFailureKind {
    /// Every kind, in declaration order (matching `kind as usize`), so
    /// per-kind counter arrays can be walked back into labeled reports.
    pub const ALL: [ExecFailureKind; 10] = [
        ExecFailureKind::Parse,
        ExecFailureKind::UnknownTable,
        ExecFailureKind::UnknownColumn,
        ExecFailureKind::AmbiguousColumn,
        ExecFailureKind::DuplicateTable,
        ExecFailureKind::Arity,
        ExecFailureKind::Type,
        ExecFailureKind::Unsupported,
        ExecFailureKind::CardinalityViolation,
        ExecFailureKind::ResourceExhausted,
    ];

    /// Classify an execution error.
    pub fn of(e: &ExecError) -> Self {
        match e {
            ExecError::Parse(_) => ExecFailureKind::Parse,
            ExecError::UnknownTable(_) => ExecFailureKind::UnknownTable,
            ExecError::UnknownColumn(_) => ExecFailureKind::UnknownColumn,
            ExecError::AmbiguousColumn(_) => ExecFailureKind::AmbiguousColumn,
            ExecError::DuplicateTable(_) => ExecFailureKind::DuplicateTable,
            ExecError::Arity(_) => ExecFailureKind::Arity,
            ExecError::Type(_) => ExecFailureKind::Type,
            ExecError::Unsupported(_) => ExecFailureKind::Unsupported,
            ExecError::CardinalityViolation(_) => ExecFailureKind::CardinalityViolation,
            ExecError::ResourceExhausted(_) => ExecFailureKind::ResourceExhausted,
        }
    }

    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ExecFailureKind::Parse => "parse",
            ExecFailureKind::UnknownTable => "unknown table",
            ExecFailureKind::UnknownColumn => "unknown column",
            ExecFailureKind::AmbiguousColumn => "ambiguous column",
            ExecFailureKind::DuplicateTable => "duplicate table",
            ExecFailureKind::Arity => "arity",
            ExecFailureKind::Type => "type",
            ExecFailureKind::Unsupported => "unsupported",
            ExecFailureKind::CardinalityViolation => "cardinality",
            ExecFailureKind::ResourceExhausted => "resource exhausted",
        }
    }
}

/// What the static analyzer said about a predicted query, recorded next
/// to the dynamic outcome so error analyses can cross-tabulate "flagged
/// before execution" against "failed during execution".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticVerdict {
    /// No Error-severity diagnostics: the analyzer would have admitted
    /// this query.
    pub clean: bool,
    /// Stable ids of every rule that fired (warnings included), deduped
    /// in registry order.
    pub rules: Vec<String>,
}

/// How a predicted query matched the gold query, on a ladder from strict
/// surface equality to semantic equality the canonicalizer can prove.
/// Recorded next to the boolean `em` so EM false negatives — pairs the
/// exact matcher rejects but [`sqlcheck::equiv`] proves equivalent —
/// become a measured quantity instead of an anecdote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MatchKind {
    /// Spider-style exact match ([`sqlkit::exact_match`]).
    Syntactic,
    /// Not an exact match, but the [`sqlcheck::equiv`] canonical forms
    /// are identical: a proven EM false negative.
    Canonical,
    /// Neither — the canonicalizer cannot prove the pair equal.
    Unmatched,
}

impl MatchKind {
    /// Short human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            MatchKind::Syntactic => "syntactic",
            MatchKind::Canonical => "canonical",
            MatchKind::Unmatched => "unmatched",
        }
    }
}

/// Outcome of one NL variant of one sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariantRecord {
    /// Execution accuracy: predicted SQL executed and its result multiset
    /// matched the gold result.
    pub ex: bool,
    /// Spider-style exact match of the predicted AST against the gold AST.
    pub em: bool,
    /// The predicted SQL text.
    pub pred_sql: String,
    /// Work units of the predicted execution (None if it failed).
    pub pred_work: Option<u64>,
    /// Why execution failed, when it did (None on success or mere result
    /// mismatch). Defaulted so logs written before this field deserialize.
    #[serde(default)]
    pub exec_failure: Option<ExecFailureKind>,
    /// Static analysis of the predicted SQL, present only when the run
    /// asked for it ([`EvalOptions::static_check`]). Defaulted so logs
    /// written before this field deserialize.
    #[serde(default)]
    pub static_verdict: Option<StaticVerdict>,
    /// Where the prediction sits on the syntactic → semantic match
    /// ladder, present only when the run asked for it
    /// ([`EvalOptions::match_kind`]). Defaulted so logs written before
    /// this field deserialize.
    #[serde(default)]
    pub match_kind: Option<MatchKind>,
    /// Prompt tokens spent.
    pub prompt_tokens: u64,
    /// Completion tokens spent.
    pub completion_tokens: u64,
    /// API cost in dollars.
    pub cost_usd: f64,
    /// Latency in seconds.
    pub latency_s: f64,
}

/// Everything recorded about one benchmark sample for one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleRecord {
    /// Sample id within the dev split.
    pub sample_id: usize,
    /// Database id.
    pub db_id: String,
    /// Domain name.
    pub domain: String,
    /// Spider hardness.
    pub hardness: Hardness,
    /// BIRD difficulty.
    pub bird_difficulty: BirdDifficulty,
    /// Gold SQL features (drives the dataset filter).
    pub features: SqlFeatures,
    /// Gold SQL text.
    pub gold_sql: String,
    /// Work units of the gold execution.
    pub gold_work: u64,
    /// Per-variant outcomes; index 0 is the canonical question.
    pub variants: Vec<VariantRecord>,
}

impl SampleRecord {
    /// The canonical-variant outcome.
    pub fn canonical(&self) -> &VariantRecord {
        &self.variants[0]
    }
}

/// A full evaluation log: one method over one dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalLog {
    /// Method name.
    pub method: String,
    /// Method class label ("LLM (P)", "LLM (FT)", "PLM (FT)", "Hybrid").
    pub class_label: String,
    /// Dataset name ("Spider" / "BIRD").
    pub dataset: String,
    /// Per-sample records.
    pub records: Vec<SampleRecord>,
}

/// Options for [`EvalContext::evaluate_with`] — the single evaluation
/// entry point. Built with chained setters:
///
/// ```ignore
/// let log = ctx.evaluate_with(&model, &EvalOptions::new().subset(50).workers(4));
/// ```
///
/// Defaults: the full dev split, a pool of [`default_workers`] threads,
/// tracing off. The resulting [`EvalLog`] is byte-identical for any
/// combination of `workers` and `trace` (test-enforced); options affect
/// only wall-clock and observability output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalOptions {
    subset: Option<usize>,
    workers: Option<usize>,
    trace: bool,
    static_check: bool,
    match_kind: bool,
}

impl EvalOptions {
    /// Options with all defaults (full split, default pool, no tracing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate only the first `n` dev samples (clamped to the split size).
    pub fn subset(mut self, n: usize) -> Self {
        self.subset = Some(n);
        self
    }

    /// Size of the worker pool; `1` evaluates inline without spawning.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Enable the global obs recorder for the duration of the run (the
    /// previous enablement is restored afterwards). Snapshot with
    /// [`obs::snapshot`] after the call to export spans and counters.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// The configured subset bound, if any.
    pub fn subset_len(&self) -> Option<usize> {
        self.subset
    }

    /// The worker count this evaluation will use.
    pub fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(default_workers)
    }

    /// Whether tracing will be enabled for the run.
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    /// Record a [`StaticVerdict`] for every predicted query. Purely
    /// additive: every other field of the log is byte-identical with the
    /// check off (test-enforced).
    pub fn static_check(mut self, on: bool) -> Self {
        self.static_check = on;
        self
    }

    /// Whether static verdicts will be recorded.
    pub fn static_check_enabled(&self) -> bool {
        self.static_check
    }

    /// Record a [`MatchKind`] for every predicted query: the boolean `em`
    /// refined by the [`sqlcheck::equiv`] canonicalizer (no witness
    /// search — this stays cheap enough for the hot loop). Purely
    /// additive: every other field of the log is byte-identical with
    /// recording off (test-enforced).
    pub fn match_kind(mut self, on: bool) -> Self {
        self.match_kind = on;
        self
    }

    /// Whether match kinds will be recorded.
    pub fn match_kind_enabled(&self) -> bool {
        self.match_kind
    }
}

/// Which optional per-variant extras an evaluation records; derived from
/// [`EvalOptions`] once and threaded through the worker fan-out.
#[derive(Clone, Copy)]
struct Recording {
    static_check: bool,
    match_kind: bool,
}

/// Evaluation context over one corpus: gold executions cached, few-shot
/// index built, domain statistics derived.
pub struct EvalContext<'a> {
    /// The corpus being evaluated.
    pub corpus: &'a Corpus,
    /// Dataset kind for profile lookups.
    pub dataset: DatasetKind,
    few_shot: FewShotIndex<'a>,
    gold_results: Vec<ResultSet>,
    domain_train_counts: HashMap<usize, usize>,
    avg_domain_train: f64,
    /// Extra database instances for Spider-style *test-suite* execution
    /// accuracy: a prediction only scores EX if its results match gold on
    /// the primary instance AND on every suite instance.
    suite: Vec<HashMap<String, GeneratedDb>>,
    suite_gold: Vec<Vec<Option<ResultSet>>>,
    /// Per-database schema catalogs for the optional static check —
    /// derived once here so verdicts cost one lookup per prediction.
    catalogs: HashMap<String, sqlcheck::Catalog>,
}

impl<'a> EvalContext<'a> {
    /// Build a context: executes every gold query once and indexes the
    /// training pool.
    ///
    /// # Panics
    /// Panics if a gold query fails to execute — corpora guarantee
    /// executable gold SQL, so a failure means corpus corruption.
    pub fn new(corpus: &'a Corpus) -> Self {
        Self::with_test_suite(corpus, 0)
    }

    /// Build a context with `extra_instances` additional content
    /// regenerations per dev database (Spider test-suite accuracy). `0`
    /// reduces to plain single-instance EX.
    pub fn with_test_suite(corpus: &'a Corpus, extra_instances: usize) -> Self {
        let dataset = match corpus.kind {
            CorpusKind::Spider => DatasetKind::Spider,
            CorpusKind::Bird => DatasetKind::Bird,
        };
        let gold_results = corpus
            .dev
            .iter()
            .map(|s| {
                corpus
                    .db(s)
                    .database
                    .run_query(&s.query)
                    .unwrap_or_else(|e| panic!("gold `{}` failed: {e}", s.sql))
            })
            .collect();
        let mut domain_train_counts: HashMap<usize, usize> = HashMap::new();
        for db_id in &corpus.train_db_ids {
            let d = corpus.databases[db_id].domain;
            *domain_train_counts.entry(d.0).or_insert(0) += 1;
        }
        // Average over domains actually present in the training pool, not
        // the full domain catalog: corpora rarely cover every domain, and
        // dividing by `DOMAINS.len()` deflated the average whenever some
        // domains had no training databases at all.
        let avg_domain_train = if domain_train_counts.is_empty() {
            0.0
        } else {
            corpus.train_db_ids.len() as f64 / domain_train_counts.len() as f64
        };
        // regenerate dev database content for each suite instance and
        // pre-execute gold queries on them
        let profile = match corpus.kind {
            CorpusKind::Spider => SchemaProfile::spider(),
            CorpusKind::Bird => SchemaProfile::bird(),
        };
        let mut suite = Vec::with_capacity(extra_instances);
        let mut suite_gold = Vec::with_capacity(extra_instances);
        for j in 0..extra_instances {
            let mut instance = HashMap::new();
            for db_id in &corpus.dev_db_ids {
                let regenerated = regenerate_content(
                    &corpus.databases[db_id],
                    &profile,
                    0x7e57_0000 ^ (j as u64) << 32 ^ fxhash(db_id),
                );
                instance.insert(db_id.clone(), regenerated);
            }
            let golds = corpus
                .dev
                .iter()
                .map(|s| instance[&s.db_id].database.run_query(&s.query).ok())
                .collect();
            suite.push(instance);
            suite_gold.push(golds);
        }
        let catalogs = corpus
            .databases
            .iter()
            .map(|(id, db)| (id.clone(), sqlcheck::Catalog::from_database(&db.database)))
            .collect();
        Self {
            corpus,
            dataset,
            few_shot: FewShotIndex::new(&corpus.train),
            gold_results,
            domain_train_counts,
            avg_domain_train,
            suite,
            suite_gold,
            catalogs,
        }
    }

    /// Number of extra test-suite instances.
    pub fn suite_size(&self) -> usize {
        self.suite.len()
    }

    /// Number of training databases in a sample's domain.
    pub fn domain_train_dbs(&self, sample: &Sample) -> usize {
        self.domain_train_counts.get(&sample.domain.0).copied().unwrap_or(0)
    }

    /// Average number of training databases per domain.
    pub fn avg_domain_train_dbs(&self) -> f64 {
        self.avg_domain_train
    }

    /// Build the translation task for a (sample, variant) pair.
    pub fn task(&'a self, sample: &'a Sample, variant: usize) -> TranslationTask<'a> {
        TranslationTask {
            sample,
            variant,
            db: self.corpus.db(sample),
            dataset: self.dataset,
            domain_train_dbs: self.domain_train_dbs(sample),
            avg_domain_train_dbs: self.avg_domain_train,
            few_shot: Some(&self.few_shot),
        }
    }

    /// Cached gold result for dev sample `i`.
    pub fn gold_result(&self, i: usize) -> &ResultSet {
        &self.gold_results[i]
    }

    /// Evaluate one model according to `opts` — the single evaluation entry
    /// point. [`EvalOptions::default`] means: full dev split, worker pool
    /// sized by [`default_workers`], no tracing. Returns `None` when the
    /// model does not run on this dataset.
    pub fn evaluate_with(&self, model: &dyn Nl2SqlModel, opts: &EvalOptions) -> Option<EvalLog> {
        // The guard must outlive the run span so the span is recorded.
        let _trace = opts.trace.then(obs::enable);
        let _span = obs::span("eval.run");
        let n = opts.subset.unwrap_or(usize::MAX).min(self.corpus.dev.len());
        let workers = opts.workers.unwrap_or_else(default_workers);
        let recording =
            Recording { static_check: opts.static_check, match_kind: opts.match_kind };
        self.run_eval(model, n, workers, recording)
    }

    /// Evaluation core shared by every [`evaluate_with`] path. Samples are
    /// fanned out to `workers` scoped threads on a shared claim counter and
    /// merged back in sample order, so the resulting [`EvalLog`] is
    /// byte-identical to a sequential evaluation at any worker count
    /// (test-enforced, tracing on or off). `workers <= 1` runs inline
    /// without spawning.
    ///
    /// [`evaluate_with`]: EvalContext::evaluate_with
    fn run_eval(
        &self,
        model: &dyn Nl2SqlModel,
        n: usize,
        workers: usize,
        recording: Recording,
    ) -> Option<EvalLog> {
        let records = if workers <= 1 || n < 2 {
            let mut records = Vec::with_capacity(n);
            for i in 0..n {
                obs::count("eval.claim", 1);
                records.push(self.eval_sample(model, i, recording)?);
            }
            obs::observe("eval.samples_per_worker", n as u64);
            records
        } else {
            use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
            use std::sync::Mutex;
            let workers = workers.min(n);
            // dynamic claim counter: workers pull the next unclaimed sample,
            // so an expensive sample never stalls a fixed chunk behind it
            let next = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let slots: Vec<Mutex<Option<SampleRecord>>> =
                (0..n).map(|_| Mutex::new(None)).collect();
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        let _span = obs::span("eval.worker");
                        let mut claimed = 0u64;
                        loop {
                            if abort.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            claimed += 1;
                            obs::count("eval.claim", 1);
                            match self.eval_sample(model, i, recording) {
                                Some(rec) => *slots[i].lock().expect("slot poisoned") = Some(rec),
                                None => {
                                    // model refuses this dataset: the whole
                                    // evaluation is None, matching sequential
                                    abort.store(true, Ordering::Relaxed);
                                    break;
                                }
                            }
                        }
                        // pool-utilization profile: a flat histogram means
                        // even load; a skewed one means stragglers
                        obs::observe("eval.samples_per_worker", claimed);
                    });
                }
            })
            .expect("evaluation worker panicked");
            if abort.load(Ordering::Relaxed) {
                return None;
            }
            // ordered merge: slot i holds sample i, independent of which
            // worker produced it or when
            let _merge = obs::span("eval.merge");
            obs::count("eval.merge", 1);
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("slot poisoned"))
                .collect::<Option<Vec<_>>>()?
        };
        Some(EvalLog {
            method: model.name().to_string(),
            class_label: class_label_of(model),
            dataset: self.corpus.kind.name().to_string(),
            records,
        })
    }

    /// Evaluate a single dev sample (all its NL variants). Pure in
    /// `(self, model, i)`, which is what makes the parallel fan-out safe:
    /// no evaluation-order state leaks between samples.
    fn eval_sample(
        &self,
        model: &dyn Nl2SqlModel,
        i: usize,
        recording: Recording,
    ) -> Option<SampleRecord> {
        let _span = obs::span("eval.sample");
        let sample = &self.corpus.dev[i];
        let gold_rs = &self.gold_results[i];
        let mut variants = Vec::with_capacity(sample.variants.len());
        for v in 0..sample.variants.len() {
            let task = self.task(sample, v);
            let pred = model.translate(&task)?;
            let (mut ex, pred_work, exec_failure) =
                score_execution(self.corpus, sample, &pred.query, gold_rs);
            if ex {
                ex = self.suite_confirms(i, sample, &pred.query);
            }
            let em = sqlkit::exact_match(&sample.query, &pred.query);
            let static_verdict =
                recording.static_check.then(|| self.static_verdict(&sample.db_id, &pred.query));
            let match_kind = recording
                .match_kind
                .then(|| self.match_kind(&sample.db_id, &sample.query, &pred.query, em));
            variants.push(VariantRecord {
                ex,
                em,
                pred_sql: pred.sql,
                pred_work,
                exec_failure,
                static_verdict,
                match_kind,
                prompt_tokens: pred.prompt_tokens,
                completion_tokens: pred.completion_tokens,
                cost_usd: pred.cost_usd,
                latency_s: pred.latency_s,
            });
        }
        Some(SampleRecord {
            sample_id: sample.id,
            db_id: sample.db_id.clone(),
            domain: sample.domain.spec().name.to_string(),
            hardness: sample.hardness,
            bird_difficulty: sample.bird_difficulty,
            features: sample.features.clone(),
            gold_sql: sample.sql.clone(),
            gold_work: gold_rs.work,
            variants,
        })
    }

    /// Analyze a predicted query against its database's schema catalog.
    pub fn static_verdict(&self, db_id: &str, pred: &sqlkit::Query) -> StaticVerdict {
        let Some(catalog) = self.catalogs.get(db_id) else {
            return StaticVerdict { clean: true, rules: Vec::new() };
        };
        let diags = sqlcheck::analyze(catalog, pred);
        let clean = sqlcheck::is_clean(&diags);
        let mut fired: Vec<sqlcheck::Rule> = diags.into_iter().map(|d| d.rule).collect();
        fired.sort_by_key(|&r| r as usize);
        fired.dedup();
        StaticVerdict { clean, rules: fired.into_iter().map(|r| r.id().to_string()).collect() }
    }

    /// Classify a prediction on the match ladder. `em` is the already-
    /// computed exact-match outcome; only EM failures pay for a
    /// canonicalization, and no witness search runs here — this is the
    /// static, hot-loop-safe slice of [`sqlcheck::equiv`].
    pub fn match_kind(
        &self,
        db_id: &str,
        gold: &sqlkit::Query,
        pred: &sqlkit::Query,
        em: bool,
    ) -> MatchKind {
        if em {
            MatchKind::Syntactic
        } else if sqlcheck::equiv::canonically_equal(gold, pred, self.catalogs.get(db_id)) {
            MatchKind::Canonical
        } else {
            MatchKind::Unmatched
        }
    }

    /// Does the prediction match gold on every test-suite instance?
    /// (Vacuously true with an empty suite, or on instances where the gold
    /// itself cannot run.)
    fn suite_confirms(&self, sample_idx: usize, sample: &Sample, pred: &sqlkit::Query) -> bool {
        for (instance, golds) in self.suite.iter().zip(&self.suite_gold) {
            let Some(gold_rs) = &golds[sample_idx] else { continue };
            let ok = match instance[&sample.db_id].database.run_query(pred) {
                Ok(rs) => results_equivalent(gold_rs, &rs),
                Err(_) => false,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Fast EX-only fitness for the AAS search: canonical variants of the
    /// first `n` dev samples via the model's query-only path.
    pub fn fitness_ex(&self, model: &SimulatedModel, n: usize) -> Option<f64> {
        let n = n.min(self.corpus.dev.len());
        let mut correct = 0usize;
        for (i, sample) in self.corpus.dev.iter().take(n).enumerate() {
            let task = self.task(sample, 0);
            let pred = model.predict_query_only(&task)?;
            let (ex, _, _) = score_execution(self.corpus, sample, &pred, &self.gold_results[i]);
            if ex {
                correct += 1;
            }
        }
        Some(correct as f64 / n as f64 * 100.0)
    }
}

/// Execute a predicted query and compare against the gold result. The
/// third element preserves the execution-error kind on failure instead of
/// collapsing every error into a bare `false`.
fn score_execution(
    corpus: &Corpus,
    sample: &Sample,
    pred: &sqlkit::Query,
    gold_rs: &ResultSet,
) -> (bool, Option<u64>, Option<ExecFailureKind>) {
    match corpus.db(sample).database.run_query(pred) {
        Ok(rs) => (results_equivalent(gold_rs, &rs), Some(rs.work), None),
        Err(e) => (false, None, Some(ExecFailureKind::of(&e))),
    }
}

/// Default evaluation worker count: the machine's available parallelism
/// (1 when it cannot be determined). Shared by the CLI `--parallel`
/// default, the serve worker pool, and `EvalContext::evaluate`.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Small deterministic string hash for suite instance seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0100_0000_01b3)
    })
}

fn class_label_of(model: &dyn Nl2SqlModel) -> String {
    // SimulatedModel exposes its class through the spec; other
    // implementations default to "Custom".
    model_class_label(model.name())
}

/// Class label from the registry, falling back to "Custom".
pub fn model_class_label(name: &str) -> String {
    modelzoo::method_by_name(name)
        .map(|m| m.class.label().to_string())
        .unwrap_or_else(|| "Custom".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate_corpus, CorpusConfig};
    use modelzoo::method_by_name;

    fn ctx_corpus() -> Corpus {
        generate_corpus(CorpusKind::Spider, &CorpusConfig::tiny(77))
    }

    #[test]
    fn eval_context_is_shareable_across_threads() {
        // The serve worker pool shares one context by reference; losing
        // Send + Sync on EvalContext would silently break that crate's
        // scoped-thread design, so pin it here at the source.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalContext<'static>>();
    }

    #[test]
    fn evaluate_produces_full_log() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("SFT CodeS-7B").unwrap());
        let log = ctx.evaluate_with(&m, &EvalOptions::new()).unwrap();
        assert_eq!(log.records.len(), corpus.dev.len());
        assert_eq!(log.method, "SFT CodeS-7B");
        assert_eq!(log.class_label, "LLM (FT)");
        for r in &log.records {
            assert!(!r.variants.is_empty());
            assert!(r.gold_work > 0);
        }
    }

    #[test]
    fn evaluation_is_deterministic() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("DAILSQL").unwrap());
        let a = ctx.evaluate_with(&m, &EvalOptions::new()).unwrap();
        let b = ctx.evaluate_with(&m, &EvalOptions::new()).unwrap();
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.canonical().pred_sql, rb.canonical().pred_sql);
            assert_eq!(ra.canonical().ex, rb.canonical().ex);
        }
    }

    #[test]
    fn em_implies_nothing_about_ex_but_correlates() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("SFT CodeS-15B").unwrap());
        let log = ctx.evaluate_with(&m, &EvalOptions::new()).unwrap();
        let ex = log.records.iter().filter(|r| r.canonical().ex).count();
        let em = log.records.iter().filter(|r| r.canonical().em).count();
        assert!(ex > 0 && em > 0);
        assert!(em <= ex + 5, "EM should rarely exceed EX (em={em}, ex={ex})");
    }

    #[test]
    fn dinsql_refuses_bird_context() {
        let corpus = generate_corpus(CorpusKind::Bird, &CorpusConfig::tiny(78));
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("DINSQL").unwrap());
        assert!(ctx.evaluate_with(&m, &EvalOptions::new()).is_none());
    }

    #[test]
    fn subset_evaluation_truncates() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let log = ctx.evaluate_with(&m, &EvalOptions::new().subset(10)).unwrap();
        assert_eq!(log.records.len(), 10);
    }

    #[test]
    fn fitness_matches_full_evaluation_ex() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("SuperSQL").unwrap());
        let fit = ctx.fitness_ex(&m, 30).unwrap();
        let log = ctx.evaluate_with(&m, &EvalOptions::new().subset(30)).unwrap();
        let ex = log.records.iter().filter(|r| r.canonical().ex).count() as f64 / 30.0 * 100.0;
        assert!((fit - ex).abs() < 1e-9, "fitness {fit} vs eval {ex}");
    }

    #[test]
    fn test_suite_ex_is_stricter_than_single_instance() {
        let corpus = ctx_corpus();
        let plain = EvalContext::new(&corpus);
        let suite = EvalContext::with_test_suite(&corpus, 2);
        assert_eq!(suite.suite_size(), 2);
        let m = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let a = plain.evaluate_with(&m, &EvalOptions::new()).unwrap();
        let b = suite.evaluate_with(&m, &EvalOptions::new()).unwrap();
        let ex = |log: &EvalLog| log.records.iter().filter(|r| r.canonical().ex).count();
        // suite EX can only remove coincidental matches, never add them
        assert!(ex(&b) <= ex(&a), "suite {} vs single {}", ex(&b), ex(&a));
        // sample-level monotonicity
        for (ra, rb) in a.records.iter().zip(&b.records) {
            if rb.canonical().ex {
                assert!(ra.canonical().ex, "suite EX implies single-instance EX");
            }
        }
        // correct (non-restyled) predictions — identical to gold — must
        // still pass the suite
        for (i, rb) in b.records.iter().enumerate() {
            if rb.canonical().pred_sql == corpus.dev[i].sql {
                assert!(rb.canonical().ex, "gold-equal prediction must pass the suite");
            }
        }
    }

    #[test]
    fn domain_train_counts_sum_to_train_dbs() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let total: usize = ctx.domain_train_counts.values().sum();
        assert_eq!(total, corpus.train_db_ids.len());
        assert!(ctx.avg_domain_train_dbs() > 0.0);
    }

    #[test]
    fn score_execution_preserves_failure_kind() {
        let corpus = ctx_corpus();
        let sample = &corpus.dev[0];
        let gold_rs = corpus.db(sample).database.run_query(&sample.query).unwrap();

        // broken reference → kind preserved, no work recorded
        let bad = sqlkit::parse_query("SELECT nonexistent_col FROM nonexistent_tbl").unwrap();
        let (ex, work, kind) = score_execution(&corpus, sample, &bad, &gold_rs);
        assert!(!ex);
        assert_eq!(work, None);
        assert_eq!(kind, Some(ExecFailureKind::UnknownTable));

        // gold query → success, no failure kind
        let (ex, work, kind) = score_execution(&corpus, sample, &sample.query, &gold_rs);
        assert!(ex);
        assert!(work.is_some());
        assert_eq!(kind, None);
    }

    #[test]
    fn evaluation_records_failure_kinds_for_broken_predictions() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let log = ctx.evaluate_with(&m, &EvalOptions::new()).unwrap();
        for r in &log.records {
            for v in &r.variants {
                // invariants: a failure kind appears exactly when execution
                // produced no result, and never alongside EX
                assert_eq!(v.exec_failure.is_some(), v.pred_work.is_none(), "{}", v.pred_sql);
                if v.ex {
                    assert!(v.exec_failure.is_none());
                }
            }
        }
    }

    #[test]
    fn static_verdicts_are_recorded_and_leave_the_rest_byte_identical() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let base = ctx.evaluate_with(&m, &EvalOptions::new().subset(30).workers(1)).unwrap();
        for r in &base.records {
            for v in &r.variants {
                assert!(v.static_verdict.is_none(), "off by default");
            }
        }
        // the check is additive at any worker count
        for workers in [1usize, 4] {
            let opts = EvalOptions::new().subset(30).workers(workers).static_check(true);
            let log = ctx.evaluate_with(&m, &opts).unwrap();
            let mut verdicts = 0usize;
            let mut flagged = 0usize;
            for (rb, rc) in base.records.iter().zip(&log.records) {
                for (vb, vc) in rb.variants.iter().zip(&rc.variants) {
                    let v = vc.static_verdict.as_ref().expect("verdict recorded");
                    verdicts += 1;
                    flagged += (!v.rules.is_empty()) as usize;
                    // an Error-free verdict is exactly `clean`
                    assert_eq!(
                        v.clean,
                        v.rules.iter().all(|r| {
                            sqlcheck::Rule::from_id(r).expect("stable id").severity()
                                != sqlcheck::Severity::Error
                        }),
                        "{v:?}"
                    );
                    // neutrality: strip the verdict and the variant is
                    // byte-identical to the uninstrumented run
                    let mut stripped = vc.clone();
                    stripped.static_verdict = None;
                    assert_eq!(
                        serde_json::to_string(&stripped).unwrap(),
                        serde_json::to_string(vb).unwrap(),
                    );
                }
            }
            assert!(verdicts > 0);
            assert!(flagged > 0, "corrupted predictions must trip at least one rule");
        }
    }

    #[test]
    fn match_kinds_are_recorded_and_leave_the_rest_byte_identical() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let m = SimulatedModel::new(method_by_name("C3SQL").unwrap());
        let base = ctx.evaluate_with(&m, &EvalOptions::new().subset(30).workers(1)).unwrap();
        for r in &base.records {
            for v in &r.variants {
                assert!(v.match_kind.is_none(), "off by default");
            }
        }
        // recording is additive at any worker count
        for workers in [1usize, 4] {
            let opts = EvalOptions::new().subset(30).workers(workers).match_kind(true);
            let log = ctx.evaluate_with(&m, &opts).unwrap();
            let mut kinds = [0usize; 3];
            for (rb, rc) in base.records.iter().zip(&log.records) {
                for (vb, vc) in rb.variants.iter().zip(&rc.variants) {
                    let kind = vc.match_kind.expect("kind recorded");
                    kinds[kind as usize] += 1;
                    // the kind refines `em`, never contradicts it
                    assert_eq!(kind == MatchKind::Syntactic, vc.em, "{}", vc.pred_sql);
                    // neutrality: strip the kind and the variant is
                    // byte-identical to the uninstrumented run
                    let mut stripped = vc.clone();
                    stripped.match_kind = None;
                    assert_eq!(
                        serde_json::to_string(&stripped).unwrap(),
                        serde_json::to_string(vb).unwrap(),
                    );
                }
            }
            assert!(kinds.iter().sum::<usize>() > 0);
            assert!(kinds[MatchKind::Syntactic as usize] > 0, "some exact matches expected");
        }
    }

    #[test]
    fn avg_domain_train_divides_by_represented_domains() {
        let corpus = ctx_corpus();
        let ctx = EvalContext::new(&corpus);
        let represented = ctx.domain_train_counts.len();
        assert!(represented > 0);
        let expected = corpus.train_db_ids.len() as f64 / represented as f64;
        assert!(
            (ctx.avg_domain_train_dbs() - expected).abs() < 1e-12,
            "avg {} vs expected {expected} over {represented} represented domains",
            ctx.avg_domain_train_dbs()
        );
        // the mean of per-domain counts must lie between min and max count
        let min = *ctx.domain_train_counts.values().min().unwrap();
        let max = *ctx.domain_train_counts.values().max().unwrap();
        assert!(ctx.avg_domain_train_dbs() >= min as f64);
        assert!(ctx.avg_domain_train_dbs() <= max as f64);
    }
}
