//! Evaluation metrics (paper §3, "Evaluation Metrics").
//!
//! All metrics read an [`EvalLog`] through a [`Filter`]:
//!
//! * **EX** — Execution Accuracy: predicted SQL executes and its result
//!   multiset matches the gold result (canonical variant).
//! * **EM** — Exact Match Accuracy: Spider-style component-set match.
//! * **QVT** — Query Variance Testing, Equation (1): over samples with ≥ 2
//!   NL variants where the model answers at least one variant correctly,
//!   the mean fraction of variants answered correctly.
//! * **VES** — Valid Efficiency Score (BIRD): `(100/N) · Σ 1(correct) ·
//!   sqrt(gold_cost / pred_cost)`, using the engine's deterministic
//!   work-unit costs.
//! * Economy: average tokens per query, average dollar cost per query,
//!   EX-per-cost, average latency.

use crate::executor::EvalLog;
use crate::filter::Filter;

/// Execution Accuracy in percent over the filtered subset (canonical
/// variant). Returns `None` when the subset is empty.
pub fn ex(log: &EvalLog, filter: &Filter) -> Option<f64> {
    let mut n = 0usize;
    let mut correct = 0usize;
    for r in log.records.iter().filter(|r| filter.matches(r)) {
        n += 1;
        if r.canonical().ex {
            correct += 1;
        }
    }
    (n > 0).then(|| correct as f64 / n as f64 * 100.0)
}

/// Exact Match Accuracy in percent over the filtered subset.
pub fn em(log: &EvalLog, filter: &Filter) -> Option<f64> {
    let mut n = 0usize;
    let mut correct = 0usize;
    for r in log.records.iter().filter(|r| filter.matches(r)) {
        n += 1;
        if r.canonical().em {
            correct += 1;
        }
    }
    (n > 0).then(|| correct as f64 / n as f64 * 100.0)
}

/// Query Variance Testing score (Equation 1), in percent.
///
/// Samples enter the QVT set when they have at least two NL variants and
/// the model answers at least one variant correctly (the paper's inclusion
/// rule); the score is the mean per-sample fraction of correct variants.
pub fn qvt(log: &EvalLog, filter: &Filter) -> Option<f64> {
    let mut per_sample = Vec::new();
    for r in log.records.iter().filter(|r| filter.matches(r)) {
        if r.variants.len() < 2 {
            continue;
        }
        let correct = r.variants.iter().filter(|v| v.ex).count();
        if correct == 0 {
            continue; // inclusion rule: model must solve ≥1 variant
        }
        per_sample.push(correct as f64 / r.variants.len() as f64);
    }
    (!per_sample.is_empty())
        .then(|| per_sample.iter().sum::<f64>() / per_sample.len() as f64 * 100.0)
}

/// Valid Efficiency Score over the filtered subset (BIRD formula on
/// deterministic work units): `(100/N) Σ 1(correct) sqrt(R)`, with
/// `R = gold_work / pred_work`.
pub fn ves(log: &EvalLog, filter: &Filter) -> Option<f64> {
    let mut n = 0usize;
    let mut acc = 0.0;
    for r in log.records.iter().filter(|r| filter.matches(r)) {
        n += 1;
        let v = r.canonical();
        if v.ex {
            if let Some(pw) = v.pred_work {
                let ratio = r.gold_work.max(1) as f64 / pw.max(1) as f64;
                acc += ratio.sqrt();
            }
        }
    }
    (n > 0).then(|| acc / n as f64 * 100.0)
}

/// Average total tokens per query (prompt + completion), canonical variant.
pub fn avg_tokens(log: &EvalLog, filter: &Filter) -> Option<f64> {
    average(log, filter, |v| (v.prompt_tokens + v.completion_tokens) as f64)
}

/// Average dollar cost per query, canonical variant.
pub fn avg_cost(log: &EvalLog, filter: &Filter) -> Option<f64> {
    average(log, filter, |v| v.cost_usd)
}

/// Average latency per sample in seconds, canonical variant.
pub fn avg_latency(log: &EvalLog, filter: &Filter) -> Option<f64> {
    average(log, filter, |v| v.latency_s)
}

/// EX divided by average cost — the cost-effectiveness ratio of Table 5.
pub fn ex_per_cost(log: &EvalLog, filter: &Filter) -> Option<f64> {
    let e = ex(log, filter)?;
    let c = avg_cost(log, filter)?;
    (c > 0.0).then(|| e / c)
}

/// Number of records passing the filter.
pub fn subset_size(log: &EvalLog, filter: &Filter) -> usize {
    log.records.iter().filter(|r| filter.matches(r)).count()
}

fn average(
    log: &EvalLog,
    filter: &Filter,
    f: impl Fn(&crate::executor::VariantRecord) -> f64,
) -> Option<f64> {
    let mut n = 0usize;
    let mut acc = 0.0;
    for r in log.records.iter().filter(|r| filter.matches(r)) {
        n += 1;
        acc += f(r.canonical());
    }
    (n > 0).then(|| acc / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{SampleRecord, VariantRecord};
    use sqlkit::hardness::{BirdDifficulty, Hardness};
    use sqlkit::SqlFeatures;

    fn variant(ex: bool, em: bool, work: u64) -> VariantRecord {
        VariantRecord {
            ex,
            em,
            pred_sql: "SELECT 1".into(),
            pred_work: Some(work),
            exec_failure: None,
            static_verdict: None,
            match_kind: None,
            prompt_tokens: 100,
            completion_tokens: 20,
            cost_usd: 0.01,
            latency_s: 1.0,
        }
    }

    fn record(id: usize, variants: Vec<VariantRecord>, hardness: Hardness) -> SampleRecord {
        SampleRecord {
            sample_id: id,
            db_id: "d".into(),
            domain: "College".into(),
            hardness,
            bird_difficulty: BirdDifficulty::Simple,
            features: SqlFeatures::default(),
            gold_sql: "SELECT 1".into(),
            gold_work: 100,
            variants,
        }
    }

    fn log(records: Vec<SampleRecord>) -> EvalLog {
        EvalLog {
            method: "m".into(),
            class_label: "Custom".into(),
            dataset: "Spider".into(),
            records,
        }
    }

    #[test]
    fn ex_and_em_fractions() {
        let l = log(vec![
            record(0, vec![variant(true, true, 100)], Hardness::Easy),
            record(1, vec![variant(true, false, 100)], Hardness::Easy),
            record(2, vec![variant(false, false, 100)], Hardness::Hard),
            record(3, vec![variant(false, false, 100)], Hardness::Hard),
        ]);
        assert_eq!(ex(&l, &Filter::all()), Some(50.0));
        assert_eq!(em(&l, &Filter::all()), Some(25.0));
        assert_eq!(ex(&l, &Filter::all().hardness(Hardness::Easy)), Some(100.0));
        assert_eq!(ex(&l, &Filter::all().hardness(Hardness::Extra)), None);
    }

    #[test]
    fn qvt_equation_one() {
        let l = log(vec![
            // 2/3 variants correct → contributes 2/3
            record(
                0,
                vec![variant(true, true, 1), variant(true, true, 1), variant(false, false, 1)],
                Hardness::Easy,
            ),
            // all wrong → excluded by the inclusion rule
            record(1, vec![variant(false, false, 1), variant(false, false, 1)], Hardness::Easy),
            // single variant → not part of the QVT set
            record(2, vec![variant(true, true, 1)], Hardness::Easy),
            // 1/2 correct → contributes 1/2
            record(3, vec![variant(true, true, 1), variant(false, false, 1)], Hardness::Easy),
        ]);
        let expected = (2.0 / 3.0 + 0.5) / 2.0 * 100.0;
        assert!((qvt(&l, &Filter::all()).unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn qvt_none_when_no_multivariant_samples() {
        let l = log(vec![record(0, vec![variant(true, true, 1)], Hardness::Easy)]);
        assert_eq!(qvt(&l, &Filter::all()), None);
    }

    #[test]
    fn ves_rewards_cheaper_predictions() {
        // correct prediction at half the gold cost → sqrt(2) contribution
        let l = log(vec![record(0, vec![variant(true, true, 50)], Hardness::Easy)]);
        let v = ves(&l, &Filter::all()).unwrap();
        assert!((v - 2f64.sqrt() * 100.0).abs() < 1e-9);

        // wrong prediction contributes zero but stays in the denominator
        let l2 = log(vec![
            record(0, vec![variant(true, true, 100)], Hardness::Easy),
            record(1, vec![variant(false, false, 100)], Hardness::Easy),
        ]);
        assert!((ves(&l2, &Filter::all()).unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn economy_metrics() {
        let l = log(vec![
            record(0, vec![variant(true, true, 100)], Hardness::Easy),
            record(1, vec![variant(true, true, 100)], Hardness::Easy),
        ]);
        assert_eq!(avg_tokens(&l, &Filter::all()), Some(120.0));
        assert_eq!(avg_cost(&l, &Filter::all()), Some(0.01));
        assert_eq!(avg_latency(&l, &Filter::all()), Some(1.0));
        let epc = ex_per_cost(&l, &Filter::all()).unwrap();
        assert!((epc - 100.0 / 0.01).abs() < 1e-9);
    }

    #[test]
    fn subset_size_counts() {
        let l = log(vec![
            record(0, vec![variant(true, true, 100)], Hardness::Easy),
            record(1, vec![variant(true, true, 100)], Hardness::Hard),
        ]);
        assert_eq!(subset_size(&l, &Filter::all()), 2);
        assert_eq!(subset_size(&l, &Filter::all().hardness(Hardness::Hard)), 1);
    }
}
