//! Zero-dependency structured observability: spans, counters, and latency
//! histograms behind one global recorder.
//!
//! The recorder is process-global and **off by default**. Every recording
//! entry point first does a single relaxed atomic load; when disabled the
//! call returns immediately, so instrumentation left in hot paths costs a
//! branch and nothing else (`scripts/check.sh --lint` enforces a < 5%
//! disabled-path budget on the evaluation bench).
//!
//! Three primitives:
//!
//! - **Spans** — wall-clock intervals with a static name, recorded per
//!   thread. [`span`] returns an RAII guard; [`enter`] / [`exit`] are the
//!   manual form and tolerate mismatched exits (tracked under the
//!   `obs.span_mismatch` counter instead of panicking).
//! - **Counters** — named monotonic `u64`s via [`count`].
//! - **Histograms** — power-of-two bucketed value distributions via
//!   [`observe`] / [`observe_duration`], mirroring the bucket math of the
//!   serve-layer latency histogram so quantiles line up across layers.
//!
//! [`snapshot`] drains nothing — it copies the current state, so a
//! long-running service can export periodically. [`reset`] clears it.
//! Export formats live in [`export`]: chrome `trace_event` JSON (loadable
//! in `chrome://tracing` / Perfetto) and a text flame summary with
//! self-time attribution.

pub mod export;
pub mod registry;

pub use registry::{
    AtomicHistogram, Counter, CounterVec, Gauge, GaugeVec, Histogram, HistogramVec, Registry,
};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Global recorder state
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Per-thread span buffers are capped so a runaway loop with tracing left
/// on degrades to counting drops instead of exhausting memory.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    Instant::now().saturating_duration_since(epoch()).as_micros() as u64
}

/// One completed span: a named interval on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    pub name: &'static str,
    /// Recorder-assigned logical thread id (stable per OS thread).
    pub tid: u64,
    /// Microseconds since the recorder epoch.
    pub start_us: u64,
    pub dur_us: u64,
    /// Request trace this span belongs to (0 = not part of a trace).
    pub trace_id: u64,
    /// Recorder-assigned span id within the trace (0 when untraced).
    pub span_id: u64,
    /// Span id of the enclosing span (0 = trace root / untraced).
    pub parent_id: u64,
    /// Key=value attributes attached via [`Span::attr`].
    pub attrs: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct ThreadBuf {
    events: Vec<SpanEvent>,
    dropped: u64,
}

struct RecorderState {
    bufs: Vec<Arc<Mutex<ThreadBuf>>>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
}

fn recorder_state() -> &'static Mutex<RecorderState> {
    static STATE: OnceLock<Mutex<RecorderState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(RecorderState {
            bufs: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        })
    })
}

fn lock_registry() -> std::sync::MutexGuard<'static, RecorderState> {
    recorder_state().lock().unwrap_or_else(|e| e.into_inner())
}

type SpanStack = RefCell<Vec<(&'static str, u64)>>;

thread_local! {
    /// (logical tid, shared buffer registered with the global registry,
    ///  manual enter/exit stack)
    static LOCAL: (u64, Arc<Mutex<ThreadBuf>>, SpanStack) = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let buf = Arc::new(Mutex::new(ThreadBuf::default()));
        lock_registry().bufs.push(Arc::clone(&buf));
        (tid, buf, RefCell::new(Vec::new()))
    };
}

fn record_event(ev: SpanEvent) {
    LOCAL.with(|(_, buf, _)| {
        let mut b = buf.lock().unwrap_or_else(|e| e.into_inner());
        if b.events.len() < MAX_EVENTS_PER_THREAD {
            b.events.push(ev);
        } else {
            b.dropped += 1;
        }
    });
}

// ---------------------------------------------------------------------------
// Enable / disable
// ---------------------------------------------------------------------------

/// Is the global recorder currently recording?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the recorder on or off. Prefer [`enable`] when the previous state
/// should be restored on scope exit.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before any span can observe it so timestamps are
        // monotone from the first enable.
        epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// RAII guard restoring the previous enabled state on drop.
#[must_use = "the recorder is disabled again when the guard drops"]
pub struct EnableGuard {
    prev: bool,
}

impl Drop for EnableGuard {
    fn drop(&mut self) {
        ENABLED.store(self.prev, Ordering::Relaxed);
    }
}

/// Enable recording, returning a guard that restores the previous state.
pub fn enable() -> EnableGuard {
    let prev = ENABLED.swap(true, Ordering::Relaxed);
    epoch();
    EnableGuard { prev }
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Per-request trace context: which trace the calling code is working for
/// and which span is the current parent. `(0, 0)` means "no trace"; spans
/// started under it stay anonymous exactly as before this layer existed.
///
/// The context is thread-local and explicitly installed via [`with_ctx`],
/// so it crosses threads (and processes) only where a caller deliberately
/// carries it — e.g. serve's worker loop adopting the context minted at
/// admission, or a cluster worker adopting the scheduler's context from a
/// `serve::proto` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Request trace id (0 = none).
    pub trace_id: u64,
    /// Parent span id for the next span started under this context.
    pub span_id: u64,
}

impl TraceCtx {
    /// The empty context: spans started under it carry no trace.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, span_id: 0 };

    /// Does this context name a trace?
    pub fn is_traced(&self) -> bool {
        self.trace_id != 0
    }
}

thread_local! {
    static CURRENT_CTX: std::cell::Cell<TraceCtx> = const { std::cell::Cell::new(TraceCtx::NONE) };
}

/// The calling thread's current trace context.
pub fn current_ctx() -> TraceCtx {
    CURRENT_CTX.with(|c| c.get())
}

/// Restores the previous thread-local trace context on drop.
#[must_use = "the previous trace context is restored when the guard drops"]
pub struct CtxGuard {
    prev: TraceCtx,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT_CTX.with(|c| c.set(self.prev));
    }
}

/// Install `ctx` as the calling thread's trace context until the guard
/// drops. Spans started meanwhile inherit `ctx.trace_id` and link to
/// `ctx.span_id` as their parent.
pub fn with_ctx(ctx: TraceCtx) -> CtxGuard {
    CURRENT_CTX.with(|c| CtxGuard { prev: c.replace(ctx) })
}

/// Mint a fresh recorder-unique span id (for callers that assemble their
/// own span records, e.g. serve's per-request trace store).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII span guard from [`span`]: records one [`SpanEvent`] on drop.
///
/// Enablement is sampled at construction: a span started while the
/// recorder is on is recorded even if the recorder turns off before the
/// guard drops (and vice versa a span started while off stays inert).
#[must_use = "the span is recorded when the guard drops"]
pub struct Span {
    name: &'static str,
    start: Option<(u64, Instant)>,
    /// `(own ctx, previous ctx)` when this span joined a trace; the own
    /// ctx was installed thread-locally so child spans link to it, and
    /// the previous one is restored on drop.
    ctx: Option<(TraceCtx, TraceCtx)>,
    attrs: Vec<(&'static str, u64)>,
}

impl Span {
    /// The span name this guard was created with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Attach a key=value attribute. Inert on spans that are not
    /// recording.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.start.is_some() {
            self.attrs.push((key, value));
        }
    }

    /// The trace context this span recorded under ([`TraceCtx::NONE`]
    /// when the span is inert or untraced).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx.map(|(own, _)| own).unwrap_or(TraceCtx::NONE)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (trace_id, span_id, parent_id) = match self.ctx {
            Some((own, prev)) => {
                CURRENT_CTX.with(|c| c.set(prev));
                (own.trace_id, own.span_id, prev.span_id)
            }
            None => (0, 0, 0),
        };
        if let Some((start_us, started)) = self.start {
            let dur_us = started.elapsed().as_micros() as u64;
            record_event(SpanEvent {
                name: self.name,
                tid: current_tid(),
                start_us,
                dur_us,
                trace_id,
                span_id,
                parent_id,
                attrs: std::mem::take(&mut self.attrs),
            });
        }
    }
}

/// Start an RAII span; the interval is recorded when the guard drops.
/// Near-free when the recorder is disabled.
///
/// When the calling thread carries a trace context (see [`with_ctx`]) the
/// span joins that trace: it gets a fresh span id, links to the context's
/// span as its parent, and becomes the context for spans nested under it.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None, ctx: None, attrs: Vec::new() };
    }
    let cur = current_ctx();
    let ctx = cur.is_traced().then(|| {
        let own = TraceCtx { trace_id: cur.trace_id, span_id: next_span_id() };
        CURRENT_CTX.with(|c| c.set(own));
        (own, cur)
    });
    Span { name, start: Some((now_us(), Instant::now())), ctx, attrs: Vec::new() }
}

/// The recorder-assigned logical id of the calling thread.
pub fn current_tid() -> u64 {
    LOCAL.with(|(tid, _, _)| *tid)
}

/// Manually open a span. Must be balanced by [`exit`] with the same name
/// on the same thread; prefer [`span`] where scoping allows.
#[inline]
pub fn enter(name: &'static str) {
    if !enabled() {
        return;
    }
    let start = now_us();
    LOCAL.with(|(_, _, stack)| stack.borrow_mut().push((name, start)));
}

/// Close a manually opened span.
///
/// Mismatches are tolerated, never fatal: exiting a name that is deeper on
/// the stack implicitly closes (and records) the frames above it; exiting
/// a name that was never entered records nothing. Every tolerated
/// mismatch bumps the `obs.span_mismatch` counter.
pub fn exit(name: &'static str) {
    if !enabled() {
        return;
    }
    let end = now_us();
    let frames: Option<Vec<(&'static str, u64)>> = LOCAL.with(|(_, _, stack)| {
        let mut stack = stack.borrow_mut();
        let pos = stack.iter().rposition(|(n, _)| *n == name)?;
        Some(stack.drain(pos..).collect())
    });
    match frames {
        None => count("obs.span_mismatch", 1),
        Some(frames) => {
            // frames[0] is the matching frame; everything after it was
            // opened later and is implicitly closed now.
            let mismatched = frames.len().saturating_sub(1) as u64;
            if mismatched > 0 {
                count("obs.span_mismatch", mismatched);
            }
            let tid = current_tid();
            let ctx = current_ctx();
            for (n, start_us) in frames.into_iter().rev() {
                record_event(SpanEvent {
                    name: n,
                    tid,
                    start_us,
                    dur_us: end.saturating_sub(start_us),
                    trace_id: ctx.trace_id,
                    span_id: 0,
                    parent_id: ctx.span_id,
                    attrs: Vec::new(),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Add `delta` to the named monotonic counter.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    *lock_registry().counters.entry(name).or_insert(0) += delta;
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Power-of-two bucketed histogram: bucket 0 holds value 0, bucket `i`
/// holds `[2^(i-1), 2^i)`. One bucket-boundary table is shared by the
/// tracing recorder, the serve-layer metrics, and the labeled
/// [`registry`] families so quantiles are comparable across layers.
pub const HIST_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
struct Hist {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Hist {
    fn new() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }

    fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`, clamped.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Record one value into the named histogram.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    lock_registry().hists.entry(name).or_insert_with(Hist::new).record(value);
}

/// Record a duration (in microseconds) into the named histogram.
#[inline]
pub fn observe_duration(name: &'static str, d: Duration) {
    observe(name, d.as_micros() as u64);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Read-only copy of a histogram at snapshot time.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistSnapshot {
    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`;
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(u64::MAX)
    }

    /// Exact mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time copy of everything the recorder holds.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Completed spans from all threads, sorted by (tid, start, longest
    /// first) so parents precede their children.
    pub events: Vec<SpanEvent>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Spans discarded because a per-thread buffer hit its cap.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Copy the recorder's current state. Does not clear anything.
pub fn snapshot() -> Snapshot {
    let reg = lock_registry();
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for buf in &reg.bufs {
        let b = buf.lock().unwrap_or_else(|e| e.into_inner());
        events.extend(b.events.iter().cloned());
        dropped += b.dropped;
    }
    events.sort_by(|a, b| {
        (a.tid, a.start_us, std::cmp::Reverse(a.dur_us))
            .cmp(&(b.tid, b.start_us, std::cmp::Reverse(b.dur_us)))
    });
    Snapshot {
        events,
        counters: reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        histograms: reg
            .hists
            .iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    HistSnapshot { buckets: h.buckets.to_vec(), count: h.count, sum: h.sum },
                )
            })
            .collect(),
        dropped_events: dropped,
    }
}

/// Clear all recorded spans, counters, and histograms. Buffers of threads
/// that have exited are unregistered.
pub fn reset() {
    let mut reg = lock_registry();
    for buf in &reg.bufs {
        let mut b = buf.lock().unwrap_or_else(|e| e.into_inner());
        b.events.clear();
        b.dropped = 0;
    }
    // A strong count of 1 means only the registry holds the buffer: its
    // thread is gone and (post-clear) it has nothing left to report.
    reg.bufs.retain(|buf| Arc::strong_count(buf) > 1);
    reg.counters.clear();
    reg.hists.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_index_ranges() {
        // every value maps to a bucket whose upper bound is >= the value
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 20, u64::MAX] {
            assert!(bucket_upper_bound(bucket_index(v)) >= v, "value {v}");
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantile_on_known_distribution() {
        let mut h = Hist::new();
        for v in [1u64, 1, 2, 100, 100, 100, 100, 100, 100, 5000] {
            h.record(v);
        }
        let snap = HistSnapshot { buckets: h.buckets.to_vec(), count: h.count, sum: h.sum };
        // p50 rank = 5 -> within the 100s bucket [64,128)
        assert_eq!(snap.quantile(0.5), Some(127));
        // p100 -> 5000 lives in [4096,8192)
        assert_eq!(snap.quantile(1.0), Some(8191));
        assert_eq!(snap.quantile(0.0), Some(1));
        assert!((snap.mean() - 560.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_has_no_quantile() {
        let snap = HistSnapshot { buckets: vec![0; HIST_BUCKETS], count: 0, sum: 0 };
        assert_eq!(snap.quantile(0.5), None);
        assert_eq!(snap.mean(), 0.0);
    }
}
