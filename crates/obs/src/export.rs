//! Snapshot export: chrome `trace_event` JSON and a text flame summary.
//!
//! The JSON output is the "JSON Array Format" variant of the trace-event
//! spec wrapped in an object (`{"traceEvents": [...]}`), which both
//! `chrome://tracing` and Perfetto load directly. Spans become complete
//! (`"ph": "X"`) events; counters become one counter (`"ph": "C"`) event
//! each so they show up as named tracks.

use crate::{Snapshot, SpanEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a snapshot as chrome trace-event JSON.
///
/// Spans that carry a `trace_id` are grouped into one process lane per
/// trace (`pid` = dense per-trace index, named `trace <hex id>` via a
/// process-name metadata event), so a warehouse-dumped trace opens in
/// Perfetto as one tree instead of interleaving with unrelated requests.
/// Untraced spans keep the legacy `pid:1` lane.
pub fn chrome_trace(snap: &Snapshot) -> String {
    // Dense pid per distinct trace id, in sorted order for determinism.
    let mut trace_ids: Vec<u64> =
        snap.events.iter().map(|e| e.trace_id).filter(|&t| t != 0).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    let pid_of = |trace_id: u64| -> u64 {
        match trace_ids.binary_search(&trace_id) {
            Ok(i) => 2 + i as u64,
            Err(_) => 1,
        }
    };
    let mut out = String::with_capacity(64 + snap.events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;
    for (i, trace_id) in trace_ids.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"trace {:016x}\"}}}}",
            2 + i as u64,
            trace_id
        );
    }
    for ev in &snap.events {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let pid = if ev.trace_id == 0 { 1 } else { pid_of(ev.trace_id) };
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
            json_string(ev.name),
            ev.start_us,
            ev.dur_us,
            pid,
            ev.tid
        );
        if ev.trace_id != 0 || !ev.attrs.is_empty() {
            out.push_str(",\"args\":{");
            let mut first_arg = true;
            if ev.trace_id != 0 {
                let _ = write!(
                    out,
                    "\"trace_id\":\"{:016x}\",\"span_id\":{},\"parent_id\":{}",
                    ev.trace_id, ev.span_id, ev.parent_id
                );
                first_arg = false;
            }
            for (k, v) in &ev.attrs {
                if !first_arg {
                    out.push(',');
                }
                first_arg = false;
                let _ = write!(out, "{}:{}", json_string(k), v);
            }
            out.push('}');
        }
        out.push('}');
    }
    for (name, value) in &snap.counters {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"cat\":\"obs\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{{\"value\":{}}}}}",
            json_string(name),
            value
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Default, Clone)]
struct NameStat {
    count: u64,
    total_us: u64,
    self_us: u64,
}

/// Aggregate per-name span stats with self-time attribution.
///
/// Within each thread, events sorted by (start, longest-first) make every
/// parent precede its children; a running stack of open intervals then
/// assigns each span's duration to itself and subtracts it from the
/// nearest enclosing span's self time.
fn aggregate(events: &[SpanEvent]) -> BTreeMap<&'static str, NameStat> {
    let mut stats: BTreeMap<&'static str, NameStat> = BTreeMap::new();
    // (end_us, name) stack of currently open spans; events arrive sorted
    // by (tid, start, Reverse(dur)) from Snapshot.
    let mut stack: Vec<(u64, &'static str)> = Vec::new();
    let mut cur_tid = None;
    for ev in events {
        if cur_tid != Some(ev.tid) {
            stack.clear();
            cur_tid = Some(ev.tid);
        }
        let end = ev.start_us.saturating_add(ev.dur_us);
        while let Some(&(top_end, _)) = stack.last() {
            if top_end <= ev.start_us {
                stack.pop();
            } else {
                break;
            }
        }
        if let Some(&(_, parent)) = stack.last() {
            let p = stats.entry(parent).or_default();
            p.self_us = p.self_us.saturating_sub(ev.dur_us);
        }
        let s = stats.entry(ev.name).or_default();
        s.count += 1;
        s.total_us += ev.dur_us;
        s.self_us += ev.dur_us;
        stack.push((end, ev.name));
    }
    stats
}

/// Render a human-readable summary: spans ranked by total time with
/// self-time attribution, then counters, then histogram quantiles.
pub fn flame_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let stats = aggregate(&snap.events);
    let mut ranked: Vec<(&&str, &NameStat)> = stats.iter().collect();
    ranked.sort_by(|a, b| b.1.total_us.cmp(&a.1.total_us).then(a.0.cmp(b.0)));

    if !ranked.is_empty() {
        let _ = writeln!(
            out,
            "{:<32} {:>8} {:>12} {:>12} {:>10}",
            "span", "count", "total_us", "self_us", "mean_us"
        );
        for (name, s) in &ranked {
            let mean = if s.count == 0 { 0.0 } else { s.total_us as f64 / s.count as f64 };
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>12} {:>12} {:>10.1}",
                name, s.count, s.total_us, s.self_us, mean
            );
        }
    }
    if snap.dropped_events > 0 {
        let _ = writeln!(out, "(dropped {} span events at buffer cap)", snap.dropped_events);
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\n{:<48} {:>12}", "counter", "value");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{:<48} {:>12}", name, value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<32} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram", "count", "mean", "p50<=", "p95<=", "p99<="
        );
        for (name, h) in &snap.histograms {
            let q = |p: f64| h.quantile(p).map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<32} {:>8} {:>10.1} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                q(0.5),
                q(0.95),
                q(0.99)
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no observability data recorded)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HistSnapshot;

    fn ev(name: &'static str, tid: u64, start_us: u64, dur_us: u64) -> SpanEvent {
        SpanEvent {
            name,
            tid,
            start_us,
            dur_us,
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
            attrs: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_children() {
        // parent [0,100) with children [10,30) and [40,90)
        let snap = Snapshot {
            events: vec![
                ev("parent", 1, 0, 100),
                ev("child", 1, 10, 20),
                ev("child", 1, 40, 50),
            ],
            ..Default::default()
        };
        let stats = aggregate(&snap.events);
        assert_eq!(stats["parent"].total_us, 100);
        assert_eq!(stats["parent"].self_us, 30);
        assert_eq!(stats["child"].count, 2);
        assert_eq!(stats["child"].self_us, 70);
    }

    #[test]
    fn threads_do_not_nest_across_tids() {
        // same timestamps on different tids must not be treated as nested
        let snap = Snapshot {
            events: vec![ev("a", 1, 0, 100), ev("b", 2, 10, 20)],
            ..Default::default()
        };
        let stats = aggregate(&snap.events);
        assert_eq!(stats["a"].self_us, 100);
        assert_eq!(stats["b"].self_us, 20);
    }

    #[test]
    fn chrome_trace_is_wellformed() {
        let mut snap = Snapshot {
            events: vec![ev("span \"x\"", 3, 5, 7)],
            ..Default::default()
        };
        snap.counters.insert("hits".into(), 4);
        let json = chrome_trace(&snap);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.trim_end().ends_with('}'));
        // balanced braces/brackets as a cheap structural check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn chrome_trace_groups_spans_by_trace_id() {
        let mut a = ev("req", 1, 0, 50);
        a.trace_id = 0xabc;
        a.span_id = 7;
        a.parent_id = 0;
        a.attrs.push(("batch", 3));
        let mut b = ev("req", 2, 10, 40);
        b.trace_id = 0xdef;
        let snap = Snapshot { events: vec![a, b, ev("bg", 3, 0, 5)], ..Default::default() };
        let json = chrome_trace(&snap);
        // one process-name lane per distinct trace id, hex-named
        assert!(json.contains("\"name\":\"trace 0000000000000abc\""));
        assert!(json.contains("\"name\":\"trace 0000000000000def\""));
        // traced spans land on their trace's pid and carry ids + attrs
        assert!(json.contains("\"trace_id\":\"0000000000000abc\",\"span_id\":7,\"parent_id\":0"));
        assert!(json.contains("\"batch\":3"));
        // the untraced span stays on the legacy lane
        assert!(json.contains("\"pid\":1,\"tid\":3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn flame_summary_lists_sections() {
        let mut snap = Snapshot {
            events: vec![ev("work", 1, 0, 10)],
            ..Default::default()
        };
        snap.counters.insert("c".into(), 1);
        snap.histograms.insert(
            "h".into(),
            HistSnapshot { buckets: vec![0, 1], count: 1, sum: 1 },
        );
        let text = flame_summary(&snap);
        assert!(text.contains("work"));
        assert!(text.contains("counter"));
        assert!(text.contains("histogram"));
        assert!(flame_summary(&Snapshot::default()).contains("no observability data"));
    }
}
