//! Labeled metric families with Prometheus-text and JSON exporters.
//!
//! The global recorder in the crate root is a *tracing* surface: spans and
//! anonymous counters for post-hoc flame analysis. This module is the
//! *live telemetry* surface: typed metric families ([`CounterVec`],
//! [`GaugeVec`], [`HistogramVec`]) with bounded label sets, designed for a
//! long-running service that is scraped while it serves.
//!
//! Recording is lock-free on the hot path: registering a label combination
//! takes the family lock once and returns a handle ([`Counter`],
//! [`Gauge`], [`Histogram`]) that is a plain `Arc`'d atomic cell; callers
//! cache the handle and every subsequent record is a relaxed atomic op.
//! Label sets are bounded — a family refuses to grow past
//! [`Registry::max_series_per_family`] and instead hands out a *detached*
//! cell (recorded but never exported) while counting the drop, so a bug
//! that interpolates unbounded label values degrades to a counter instead
//! of an unbounded scrape.
//!
//! Two exporters, both deterministic byte-for-byte for a given state:
//!
//! - [`Registry::render_prometheus`] — Prometheus text exposition format
//!   (version 0.0.4): families sorted by name, series sorted by label
//!   values, `# HELP`/`# TYPE` headers, escaped label values, histograms
//!   as cumulative `_bucket{le=...}` series with a terminal `+Inf` plus
//!   `_sum`/`_count`.
//! - [`Registry::render_json`] — the same state as a JSON object for
//!   programmatic consumers.
//!
//! [`bridge_recorder`] converts a global-recorder [`Snapshot`] (spans,
//! counters, histograms) into registry families so span data recorded via
//! [`crate::span`]/[`crate::count`] is scrapeable through the same
//! exporters.

use crate::export::json_string;
use crate::{bucket_index, bucket_upper_bound, HistSnapshot, Snapshot, HIST_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Shared atomic histogram
// ---------------------------------------------------------------------------

/// Thread-safe fixed-bucket histogram over the crate's one power-of-two
/// bucket table ([`bucket_index`] / [`bucket_upper_bound`]). This is the
/// histogram the serve-layer metrics and the registry both use, so
/// quantiles line up across tracing, cumulative metrics, and scrapes.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy (consistent enough for telemetry: buckets are
    /// loaded one by one while writers may continue).
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistSnapshot { buckets, count, sum: self.sum.load(Ordering::Relaxed) }
    }

    /// Upper bound of the bucket containing quantile `q`; `None` when
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.snapshot().quantile(q)
    }

    /// [`Self::quantile`] as a microsecond duration.
    pub fn quantile_duration(&self, q: f64) -> Option<Duration> {
        self.quantile(q).map(Duration::from_micros)
    }

    /// Zero every bucket and the sum. Used by ring-buffer windows when a
    /// bucket rotates into a new interval; concurrent records during the
    /// clear smear into the new interval, which windowed telemetry
    /// tolerates.
    pub fn clear(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Add this histogram's buckets and sum into an accumulator.
    pub fn accumulate(&self, buckets: &mut [u64; HIST_BUCKETS], sum: &mut u64) {
        for (acc, b) in buckets.iter_mut().zip(&self.buckets) {
            *acc += b.load(Ordering::Relaxed);
        }
        *sum += self.sum.load(Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Families and cells
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn label(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Cell {
    Num(Arc<AtomicU64>),
    Hist(Arc<AtomicHistogram>),
}

#[derive(Debug)]
struct Series {
    label_values: Vec<String>,
    cell: Cell,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: FamilyKind,
    label_keys: Vec<String>,
    series: Mutex<Vec<Series>>,
}

/// Handle to one counter cell: monotonically increasing `u64`. Cloning is
/// cheap (an `Arc` bump); recording is a relaxed atomic add.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to one gauge cell: a settable `u64` level (queue depth,
/// readiness, cache size).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current level.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Handle to one histogram cell.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<AtomicHistogram>);

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.record(value);
    }

    /// Record a duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.0.record_duration(d);
    }

    /// The underlying shared histogram.
    pub fn inner(&self) -> &AtomicHistogram {
        &self.0
    }
}

macro_rules! vec_type {
    ($name:ident, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            family: Arc<Family>,
            max_series: usize,
            dropped: Arc<AtomicU64>,
        }
    };
}

vec_type!(CounterVec, "A family of counters distinguished by label values.");
vec_type!(GaugeVec, "A family of gauges distinguished by label values.");
vec_type!(HistogramVec, "A family of histograms distinguished by label values.");

fn lookup_or_register(
    family: &Family,
    values: &[&str],
    max_series: usize,
    dropped: &AtomicU64,
) -> Cell {
    assert_eq!(
        values.len(),
        family.label_keys.len(),
        "family `{}` takes {} label value(s), got {}",
        family.name,
        family.label_keys.len(),
        values.len()
    );
    let mut series = family.series.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(s) = series.iter().find(|s| s.label_values.iter().map(String::as_str).eq(values.iter().copied()))
    {
        return match &s.cell {
            Cell::Num(c) => Cell::Num(Arc::clone(c)),
            Cell::Hist(h) => Cell::Hist(Arc::clone(h)),
        };
    }
    let make = || match family.kind {
        FamilyKind::Histogram => Cell::Hist(Arc::new(AtomicHistogram::default())),
        _ => Cell::Num(Arc::new(AtomicU64::new(0))),
    };
    if series.len() >= max_series {
        // Bounded label set: hand out a detached cell so the caller can
        // still record, but the series never reaches an exporter.
        dropped.fetch_add(1, Ordering::Relaxed);
        return make();
    }
    let cell = make();
    let clone = match &cell {
        Cell::Num(c) => Cell::Num(Arc::clone(c)),
        Cell::Hist(h) => Cell::Hist(Arc::clone(h)),
    };
    series.push(Series { label_values: values.iter().map(|v| v.to_string()).collect(), cell });
    clone
}

impl CounterVec {
    /// Get (or register) the counter for this label-value tuple.
    pub fn with(&self, values: &[&str]) -> Counter {
        match lookup_or_register(&self.family, values, self.max_series, &self.dropped) {
            Cell::Num(c) => Counter(c),
            Cell::Hist(_) => unreachable!("counter family holds numeric cells"),
        }
    }
}

impl GaugeVec {
    /// Get (or register) the gauge for this label-value tuple.
    pub fn with(&self, values: &[&str]) -> Gauge {
        match lookup_or_register(&self.family, values, self.max_series, &self.dropped) {
            Cell::Num(c) => Gauge(c),
            Cell::Hist(_) => unreachable!("gauge family holds numeric cells"),
        }
    }
}

impl HistogramVec {
    /// Get (or register) the histogram for this label-value tuple.
    pub fn with(&self, values: &[&str]) -> Histogram {
        match lookup_or_register(&self.family, values, self.max_series, &self.dropped) {
            Cell::Hist(h) => Histogram(h),
            Cell::Num(_) => unreachable!("histogram family holds histogram cells"),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Default cap on distinct label-value tuples per family.
pub const DEFAULT_MAX_SERIES_PER_FAMILY: usize = 256;

/// A set of metric families. Construction and registration are locked;
/// recording through the returned handles is lock-free.
#[derive(Debug)]
pub struct Registry {
    families: Mutex<Vec<Arc<Family>>>,
    max_series: usize,
    dropped: Arc<AtomicU64>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry with the default per-family series cap.
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(Vec::new()),
            max_series: DEFAULT_MAX_SERIES_PER_FAMILY,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A registry with an explicit per-family series cap.
    pub fn with_max_series_per_family(max_series: usize) -> Self {
        Registry { max_series, ..Registry::new() }
    }

    /// The per-family series cap.
    pub fn max_series_per_family(&self) -> usize {
        self.max_series
    }

    /// Label-value tuples refused because their family hit the cap.
    pub fn dropped_series(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn family(
        &self,
        name: &str,
        help: &str,
        kind: FamilyKind,
        label_keys: &[&str],
    ) -> Arc<Family> {
        let name = sanitize_name(name);
        let label_keys: Vec<String> = label_keys.iter().map(|k| sanitize_name(k)).collect();
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = families.iter().find(|f| f.name == name) {
            assert_eq!(f.kind, kind, "family `{name}` re-registered as a different kind");
            assert_eq!(
                f.label_keys, label_keys,
                "family `{name}` re-registered with different label keys"
            );
            return Arc::clone(f);
        }
        let f = Arc::new(Family {
            name,
            help: help.to_string(),
            kind,
            label_keys,
            series: Mutex::new(Vec::new()),
        });
        families.push(Arc::clone(&f));
        f
    }

    /// Register (or fetch) a counter family. `name` should carry the
    /// Prometheus `_total` suffix; invalid characters are mapped to `_`.
    pub fn counter_vec(&self, name: &str, help: &str, label_keys: &[&str]) -> CounterVec {
        CounterVec {
            family: self.family(name, help, FamilyKind::Counter, label_keys),
            max_series: self.max_series,
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Register (or fetch) a gauge family.
    pub fn gauge_vec(&self, name: &str, help: &str, label_keys: &[&str]) -> GaugeVec {
        GaugeVec {
            family: self.family(name, help, FamilyKind::Gauge, label_keys),
            max_series: self.max_series,
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Register (or fetch) a histogram family.
    pub fn histogram_vec(&self, name: &str, help: &str, label_keys: &[&str]) -> HistogramVec {
        HistogramVec {
            family: self.family(name, help, FamilyKind::Histogram, label_keys),
            max_series: self.max_series,
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Render the Prometheus text exposition format (version 0.0.4).
    /// Output is deterministic byte-for-byte for a given metric state:
    /// families are sorted by name, series by label values.
    pub fn render_prometheus(&self) -> String {
        let families = self.sorted_families();
        let mut out = String::new();
        for f in &families {
            let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.label());
            let series = f.series.lock().unwrap_or_else(|e| e.into_inner());
            let mut ordered: Vec<&Series> = series.iter().collect();
            ordered.sort_by(|a, b| a.label_values.cmp(&b.label_values));
            for s in ordered {
                match &s.cell {
                    Cell::Num(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            label_block(&f.label_keys, &s.label_values, None),
                            c.load(Ordering::Relaxed)
                        );
                    }
                    Cell::Hist(h) => {
                        let snap = h.snapshot();
                        let mut cum = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            cum += n;
                            let le = if i + 1 == HIST_BUCKETS {
                                "+Inf".to_string()
                            } else {
                                bucket_upper_bound(i).to_string()
                            };
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                f.name,
                                label_block(&f.label_keys, &s.label_values, Some(&le)),
                                cum
                            );
                        }
                        let labels = label_block(&f.label_keys, &s.label_values, None);
                        let _ = writeln!(out, "{}_sum{} {}", f.name, labels, snap.sum);
                        let _ = writeln!(out, "{}_count{} {}", f.name, labels, snap.count);
                    }
                }
            }
        }
        out
    }

    /// Render the same state as a JSON object:
    /// `{"families":[{"name":...,"kind":...,"series":[...]}]}`.
    pub fn render_json(&self) -> String {
        let families = self.sorted_families();
        let mut out = String::from("{\"families\":[");
        for (fi, f) in families.iter().enumerate() {
            if fi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"kind\":{},\"help\":{},\"series\":[",
                json_string(&f.name),
                json_string(f.kind.label()),
                json_string(&f.help)
            );
            let series = f.series.lock().unwrap_or_else(|e| e.into_inner());
            let mut ordered: Vec<&Series> = series.iter().collect();
            ordered.sort_by(|a, b| a.label_values.cmp(&b.label_values));
            for (si, s) in ordered.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (i, (k, v)) in f.label_keys.iter().zip(&s.label_values).enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_string(k), json_string(v));
                }
                out.push('}');
                match &s.cell {
                    Cell::Num(c) => {
                        let _ = write!(out, ",\"value\":{}", c.load(Ordering::Relaxed));
                    }
                    Cell::Hist(h) => {
                        let snap = h.snapshot();
                        let _ = write!(out, ",\"count\":{},\"sum\":{}", snap.count, snap.sum);
                        let p = |q: f64| {
                            snap.quantile(q).map(|v| v.to_string()).unwrap_or_else(|| "null".into())
                        };
                        let _ = write!(
                            out,
                            ",\"p50\":{},\"p95\":{},\"p99\":{}",
                            p(0.50),
                            p(0.95),
                            p(0.99)
                        );
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        let _ = write!(out, "],\"dropped_series\":{}}}", self.dropped_series());
        out
    }

    fn sorted_families(&self) -> Vec<Arc<Family>> {
        let mut families: Vec<Arc<Family>> =
            self.families.lock().unwrap_or_else(|e| e.into_inner()).iter().map(Arc::clone).collect();
        families.sort_by(|a, b| a.name.cmp(&b.name));
        families
    }
}

// ---------------------------------------------------------------------------
// Global-recorder bridge
// ---------------------------------------------------------------------------

/// Convert a global-recorder [`Snapshot`] into registry families so span,
/// counter, and histogram data recorded through [`crate::span`] /
/// [`crate::count`] / [`crate::observe`] is scrapeable through the same
/// exporters as service metrics:
///
/// - every recorder counter becomes an `obs_counter_total{name=...}` series,
/// - every recorder histogram becomes an `obs_histogram_us{name=...}` series,
/// - completed spans aggregate into `obs_spans_total{name=...}` and
///   `obs_span_time_us_total{name=...}`.
pub fn bridge_recorder(snap: &Snapshot) -> Registry {
    let reg = Registry::new();
    let counters = reg.counter_vec(
        "obs_counter_total",
        "Global-recorder counters, keyed by their recorder name.",
        &["name"],
    );
    for (name, value) in &snap.counters {
        counters.with(&[name]).add(*value);
    }
    let hists = reg.histogram_vec(
        "obs_histogram_us",
        "Global-recorder histograms (microseconds), keyed by recorder name.",
        &["name"],
    );
    for (name, h) in &snap.histograms {
        let cell = hists.with(&[name]);
        for (i, &n) in h.buckets.iter().enumerate().take(HIST_BUCKETS) {
            if n > 0 {
                // re-record a representative value per bucket: the upper
                // bound maps back into the same bucket index
                let v = if i == 0 { 0 } else { bucket_upper_bound(i) };
                for _ in 0..n {
                    cell.record(v);
                }
            }
        }
    }
    if !snap.events.is_empty() {
        let spans = reg.counter_vec(
            "obs_spans_total",
            "Completed recorder spans by span name.",
            &["name"],
        );
        let span_time = reg.counter_vec(
            "obs_span_time_us_total",
            "Total recorded span time (microseconds) by span name.",
            &["name"],
        );
        let mut agg: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for ev in &snap.events {
            let e = agg.entry(ev.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += ev.dur_us;
        }
        for (name, (count, time)) in agg {
            spans.with(&[name]).add(count);
            span_time.with(&[name]).add(time);
        }
    }
    reg
}

// ---------------------------------------------------------------------------
// Escaping / sanitization
// ---------------------------------------------------------------------------

/// Map a metric or label name onto the Prometheus charset
/// `[a-zA-Z_][a-zA-Z0-9_]*` (invalid characters become `_`, a leading
/// digit is prefixed).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(keys: &[String], values: &[String], le: Option<&str>) -> String {
    if keys.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in keys.iter().zip(values) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = Registry::new();
        let requests = reg.counter_vec("rt_total", "requests", &["method"]);
        let c = requests.with(&["a"]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // same labels → same cell
        assert_eq!(requests.with(&["a"]).get(), 3);
        let g = reg.gauge_vec("depth", "queue depth", &[]).with(&[]);
        g.set(17);
        assert_eq!(g.get(), 17);
    }

    #[test]
    fn atomic_histogram_matches_bucket_table() {
        let h = AtomicHistogram::default();
        for v in [0u64, 1, 2, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[bucket_index(0)], 1);
        assert_eq!(snap.buckets[bucket_index(2)], 2); // 2 and 3 share a bucket
        assert_eq!(h.quantile(1.0), Some(bucket_upper_bound(bucket_index(1000))));
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn series_cap_hands_out_detached_cells() {
        let reg = Registry::with_max_series_per_family(2);
        let fam = reg.counter_vec("capped_total", "", &["k"]);
        fam.with(&["a"]).inc();
        fam.with(&["b"]).inc();
        let detached = fam.with(&["c"]);
        detached.inc(); // recording still works
        assert_eq!(reg.dropped_series(), 1);
        let text = reg.render_prometheus();
        assert!(text.contains("k=\"a\""));
        assert!(!text.contains("k=\"c\""), "capped series must not export");
        // the detached tuple is dropped again on re-request, not cached
        fam.with(&["c"]).inc();
        assert_eq!(reg.dropped_series(), 2);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("serve.requests-total"), "serve_requests_total");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter_vec("x_total", "", &[]);
        reg.gauge_vec("x_total", "", &[]);
    }
}
