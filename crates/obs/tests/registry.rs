//! Prometheus text-exposition conformance for the metric registry:
//! escaping, deterministic byte-for-byte output, histogram `le` bucket
//! monotonicity with a terminal `+Inf`, and the global-recorder bridge.

use obs::registry::{bridge_recorder, sanitize_name};
use obs::Registry;

/// Parse every sample line of an exposition body into
/// `(metric_name, labels, value)` tuples, skipping comments. Panics on any
/// line that does not scan — the tests use this as a format check.
fn parse_exposition(text: &str) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad line: {line}"));
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse().unwrap_or_else(|_| panic!("bad value in: {line}"))
        };
        let (name, labels) = match series.find('{') {
            Some(i) => {
                assert!(series.ends_with('}'), "unterminated label block: {line}");
                (&series[..i], &series[i + 1..series.len() - 1])
            }
            None => (series, ""),
        };
        assert!(!name.is_empty(), "empty metric name: {line}");
        assert!(
            name.chars().next().unwrap().is_ascii_alphabetic() || name.starts_with('_'),
            "bad metric name start: {line}"
        );
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "bad metric name charset: {line}"
        );
        out.push((name.to_string(), labels.to_string(), value));
    }
    out
}

#[test]
fn label_values_escape_quotes_backslashes_and_newlines() {
    let reg = Registry::new();
    let fam = reg.counter_vec("esc_total", "help with \\ and\nnewline", &["v"]);
    fam.with(&["say \"hi\""]).inc();
    fam.with(&["back\\slash"]).inc();
    fam.with(&["two\nlines"]).inc();
    let text = reg.render_prometheus();
    assert!(text.contains(r#"v="say \"hi\"""#), "{text}");
    assert!(text.contains(r#"v="back\\slash""#), "{text}");
    assert!(text.contains(r#"v="two\nlines""#), "{text}");
    // the help line escapes backslash and newline but not quotes
    assert!(text.contains("# HELP esc_total help with \\\\ and\\nnewline"), "{text}");
    // no raw newline may survive inside any sample line
    for line in text.lines() {
        assert!(!line.is_empty() || text.ends_with('\n'));
    }
    parse_exposition(&text);
}

#[test]
fn output_is_deterministic_byte_for_byte() {
    let build = || {
        let reg = Registry::new();
        // register families and series in a scrambled order on purpose
        let h = reg.histogram_vec("zz_lat_us", "latency", &["method"]);
        let c = reg.counter_vec("aa_req_total", "requests", &["method", "outcome"]);
        for (m, o) in [("b", "ok"), ("a", "err"), ("a", "ok")] {
            c.with(&[m, o]).add(7);
        }
        for m in ["beta", "alpha"] {
            let cell = h.with(&[m]);
            for v in [3u64, 900, 17] {
                cell.record(v);
            }
        }
        reg.gauge_vec("mm_depth", "depth", &[]).with(&[]).set(5);
        reg
    };
    let a = build().render_prometheus();
    let b = build().render_prometheus();
    assert_eq!(a, b, "same state must render identically");
    assert_eq!(build().render_json(), build().render_json());
    // families sorted by name, series sorted by label values
    let aa = a.find("aa_req_total").unwrap();
    let mm = a.find("mm_depth").unwrap();
    let zz = a.find("zz_lat_us").unwrap();
    assert!(aa < mm && mm < zz, "family order");
    let a_err = a.find("method=\"a\",outcome=\"err\"").unwrap();
    let a_ok = a.find("method=\"a\",outcome=\"ok\"").unwrap();
    let b_ok = a.find("method=\"b\",outcome=\"ok\"").unwrap();
    assert!(a_err < a_ok && a_ok < b_ok, "series order");
}

#[test]
fn histogram_buckets_are_monotone_and_end_at_inf() {
    let reg = Registry::new();
    let h = reg.histogram_vec("lat_us", "latency", &["m"]).with(&["x"]);
    for v in [0u64, 1, 5, 5, 1000, u64::MAX] {
        h.record(v);
    }
    let text = reg.render_prometheus();
    let samples = parse_exposition(&text);
    let buckets: Vec<&(String, String, f64)> =
        samples.iter().filter(|(n, _, _)| n == "lat_us_bucket").collect();
    assert_eq!(buckets.len(), obs::HIST_BUCKETS, "every bucket must be emitted");
    let mut last_le = f64::NEG_INFINITY;
    let mut last_cum = 0.0;
    for (_, labels, cum) in &buckets {
        let le = labels
            .split(',')
            .find_map(|kv| kv.strip_prefix("le=\""))
            .map(|v| v.trim_end_matches('"'))
            .expect("bucket carries le");
        let le = if le == "+Inf" { f64::INFINITY } else { le.parse::<f64>().unwrap() };
        assert!(le > last_le, "le bounds must strictly increase");
        assert!(*cum >= last_cum, "cumulative counts must be monotone");
        last_le = le;
        last_cum = *cum;
    }
    assert!(last_le.is_infinite(), "terminal bucket must be +Inf");
    let count = samples.iter().find(|(n, _, _)| n == "lat_us_count").unwrap().2;
    assert_eq!(last_cum, count, "+Inf bucket must equal _count");
    assert_eq!(count, 6.0);
    let sum = samples.iter().find(|(n, _, _)| n == "lat_us_sum").unwrap().2;
    assert!(sum > 0.0);
}

#[test]
fn every_series_of_a_mixed_registry_parses() {
    let reg = Registry::new();
    reg.counter_vec("c_total", "", &["k"]).with(&["v"]).add(3);
    reg.gauge_vec("g", "", &[]).with(&[]).set(9);
    reg.histogram_vec("h_us", "", &[]).with(&[]).record(250);
    let samples = parse_exposition(&reg.render_prometheus());
    // counter + gauge + (64 buckets + sum + count)
    assert_eq!(samples.len(), 2 + obs::HIST_BUCKETS + 2);
    let json = reg.render_json();
    assert!(json.starts_with("{\"families\":["));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}

#[test]
fn recorder_bridge_exposes_span_counter_and_histogram_data() {
    obs::reset();
    {
        let _on = obs::enable();
        let _span = obs::span("bridge.test_span");
        obs::count("bridge.test_counter", 5);
        obs::observe("bridge.test_hist", 123);
    }
    let snap = obs::snapshot();
    let reg = bridge_recorder(&snap);
    let text = reg.render_prometheus();
    obs::reset();
    assert!(text.contains("obs_counter_total{name=\"bridge.test_counter\"} 5"), "{text}");
    assert!(text.contains("obs_histogram_us_count{name=\"bridge.test_hist\"} 1"), "{text}");
    assert!(text.contains("obs_spans_total{name=\"bridge.test_span\"} 1"), "{text}");
    assert!(text.contains("obs_span_time_us_total{name=\"bridge.test_span\"}"), "{text}");
    // bridged histograms keep their bucket placement: 123 lives in [64,128)
    let samples = parse_exposition(&text);
    let hist_p99 = reg
        .histogram_vec("obs_histogram_us", "", &["name"])
        .with(&["bridge.test_hist"])
        .inner()
        .quantile(0.99);
    assert_eq!(hist_p99, Some(127));
    assert!(samples.iter().any(|(n, _, _)| n == "obs_histogram_us_bucket"));
}

#[test]
fn sanitized_names_survive_the_parser() {
    let reg = Registry::new();
    reg.counter_vec("serve.request-rate", "", &[]).with(&[]).inc();
    let samples = parse_exposition(&reg.render_prometheus());
    assert_eq!(samples[0].0, sanitize_name("serve.request-rate"));
}
