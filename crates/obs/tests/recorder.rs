//! Recorder behavior tests. These exercise the process-global recorder,
//! so every test serializes on one lock and resets state around itself;
//! they live in their own integration-test binary to stay isolated from
//! other test processes.

use std::sync::Mutex;
use std::time::{Duration, Instant};

static GLOBAL: Mutex<()> = Mutex::new(());

fn with_recorder<R>(f: impl FnOnce() -> R) -> R {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    let _on = obs::enable();
    let r = f();
    obs::reset();
    r
}

#[test]
fn raii_spans_nest_and_record() {
    let snap = with_recorder(|| {
        {
            let _outer = obs::span("outer");
            {
                let _inner = obs::span("inner");
            }
        }
        obs::snapshot()
    });
    let names: Vec<_> = snap.events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"outer"));
    assert!(names.contains(&"inner"));
    let outer = snap.events.iter().find(|e| e.name == "outer").unwrap();
    let inner = snap.events.iter().find(|e| e.name == "inner").unwrap();
    // inner is contained in outer on the same thread
    assert_eq!(outer.tid, inner.tid);
    assert!(inner.start_us >= outer.start_us);
    assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    assert_eq!(snap.counter("obs.span_mismatch"), 0);
}

#[test]
fn manual_enter_exit_balanced() {
    let snap = with_recorder(|| {
        obs::enter("a");
        obs::enter("b");
        obs::exit("b");
        obs::exit("a");
        obs::snapshot()
    });
    assert_eq!(snap.events.len(), 2);
    assert_eq!(snap.counter("obs.span_mismatch"), 0);
}

#[test]
fn mismatched_exit_closes_intervening_frames() {
    let snap = with_recorder(|| {
        obs::enter("a");
        obs::enter("b");
        obs::enter("c");
        // exiting "a" implicitly closes "b" and "c"
        obs::exit("a");
        obs::snapshot()
    });
    let names: Vec<_> = snap.events.iter().map(|e| e.name).collect();
    assert!(names.contains(&"a"));
    assert!(names.contains(&"b"));
    assert!(names.contains(&"c"));
    assert_eq!(snap.counter("obs.span_mismatch"), 2);
}

#[test]
fn exit_without_enter_records_nothing() {
    let snap = with_recorder(|| {
        obs::exit("never-entered");
        obs::snapshot()
    });
    assert!(snap.events.is_empty());
    assert_eq!(snap.counter("obs.span_mismatch"), 1);
}

#[test]
fn spans_inherit_the_installed_trace_context() {
    let snap = with_recorder(|| {
        {
            let _ctx = obs::with_ctx(obs::TraceCtx { trace_id: 42, span_id: 9 });
            let mut outer = obs::span("outer");
            outer.attr("batch", 3);
            {
                let _inner = obs::span("inner");
            }
            drop(outer);
        }
        // context restored: spans after the guard are untraced
        {
            let _after = obs::span("after");
        }
        obs::snapshot()
    });
    let outer = snap.events.iter().find(|e| e.name == "outer").unwrap();
    let inner = snap.events.iter().find(|e| e.name == "inner").unwrap();
    let after = snap.events.iter().find(|e| e.name == "after").unwrap();
    assert_eq!(outer.trace_id, 42);
    assert_eq!(outer.parent_id, 9, "outer links to the installed context");
    assert!(outer.span_id != 0);
    assert_eq!(inner.trace_id, 42);
    assert_eq!(inner.parent_id, outer.span_id, "inner nests under outer");
    assert_eq!(outer.attrs, vec![("batch", 3)]);
    assert_eq!(after.trace_id, 0);
    assert_eq!(after.span_id, 0);
}

#[test]
fn untraced_spans_stay_anonymous_and_ctx_is_cheap_when_disabled() {
    let snap = with_recorder(|| {
        {
            let _s = obs::span("plain");
        }
        obs::snapshot()
    });
    let plain = snap.events.iter().find(|e| e.name == "plain").unwrap();
    assert_eq!((plain.trace_id, plain.span_id, plain.parent_id), (0, 0, 0));
    assert!(plain.attrs.is_empty());

    // disabled spans never touch the thread-local context
    obs::set_enabled(false);
    let _ctx = obs::with_ctx(obs::TraceCtx { trace_id: 7, span_id: 1 });
    let mut s = obs::span("off");
    s.attr("k", 1);
    assert_eq!(s.ctx(), obs::TraceCtx::NONE);
    assert_eq!(obs::current_ctx().trace_id, 7, "inert span leaves the context alone");
}

#[test]
fn counters_and_histograms_accumulate() {
    let snap = with_recorder(|| {
        obs::count("hits", 2);
        obs::count("hits", 3);
        obs::count("zero", 0); // no-op, must not create the counter
        obs::observe("latency", 100);
        obs::observe("latency", 100_000);
        obs::observe_duration("latency", Duration::from_micros(7));
        obs::snapshot()
    });
    assert_eq!(snap.counter("hits"), 5);
    assert!(!snap.counters.contains_key("zero"));
    let h = &snap.histograms["latency"];
    assert_eq!(h.count, 3);
    assert_eq!(h.sum, 100_107);
    assert!(h.quantile(0.5).unwrap() >= 100);
}

#[test]
fn spans_sample_enablement_at_entry() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    // started while disabled -> inert even if enabled before drop
    obs::set_enabled(false);
    let off_span = obs::span("started-off");
    let _on = obs::enable();
    drop(off_span);
    // started while enabled -> recorded even if disabled before drop
    let on_span = obs::span("started-on");
    obs::set_enabled(false);
    drop(on_span);
    obs::set_enabled(true);
    let snap = obs::snapshot();
    drop(_on);
    obs::reset();
    let names: Vec<_> = snap.events.iter().map(|e| e.name).collect();
    assert!(!names.contains(&"started-off"));
    assert!(names.contains(&"started-on"));
}

#[test]
fn disabled_recorder_records_nothing_and_is_cheap() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    obs::reset();
    obs::set_enabled(false);
    obs::count("c", 1);
    obs::observe("h", 1);
    obs::enter("m");
    obs::exit("m");
    {
        let _s = obs::span("s");
    }
    let snap = obs::snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
    assert!(snap.histograms.is_empty());

    // Cheap: 1M disabled span+counter pairs. The budget is deliberately
    // enormous (500ns per op) — this guards against accidental locking on
    // the disabled path, not against scheduler noise.
    let iters = 1_000_000u64;
    let started = Instant::now();
    for i in 0..iters {
        let _s = obs::span("disabled");
        obs::count("disabled", i & 1);
    }
    let per_op = started.elapsed().as_nanos() as f64 / iters as f64;
    assert!(per_op < 500.0, "disabled-path span+count cost {per_op:.1}ns/op");
}

#[test]
fn reset_clears_everything() {
    let snap = with_recorder(|| {
        obs::count("c", 1);
        {
            let _s = obs::span("s");
        }
        obs::reset();
        obs::snapshot()
    });
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
}

#[test]
fn multithreaded_spans_get_distinct_tids() {
    let snap = with_recorder(|| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(|| {
                    let _s = obs::span("worker");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        obs::snapshot()
    });
    let worker_events: Vec<_> = snap.events.iter().filter(|e| e.name == "worker").collect();
    assert_eq!(worker_events.len(), 3);
    let mut tids: Vec<_> = worker_events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    assert_eq!(tids.len(), 3, "each thread gets its own tid");
}
