//! Property-based tests of the execution engine's SQL semantics on random
//! table contents: filter soundness, aggregate identities, ORDER BY
//! ordering, LIMIT bounds, set-operation algebra, and three-valued logic.

use minidb::{results_equivalent, Database, TableBuilder, Value};
use proptest::prelude::*;

/// A random row: (id filled in separately, int value possibly NULL, text
/// category, real score).
fn row_strategy() -> impl Strategy<Value = (Option<i64>, String, f64)> {
    (
        proptest::option::of(-50i64..50),
        prop_oneof![Just("red"), Just("green"), Just("blue")].prop_map(str::to_string),
        0.0..100.0f64,
    )
}

fn build_db(rows: &[(Option<i64>, String, f64)]) -> Database {
    let mut db = Database::new("prop");
    db.add_table(
        TableBuilder::new("t")
            .column_int("id")
            .column_int("n")
            .column_text("color")
            .column_real("score")
            .primary_key(&["id"])
            .rows(rows.iter().enumerate().map(|(i, (n, c, s))| {
                vec![
                    Value::Int(i as i64 + 1),
                    n.map(Value::Int).unwrap_or(Value::Null),
                    Value::text(c.clone()),
                    Value::Real(*s),
                ]
            }))
            .build(),
    )
    .expect("fresh table");
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// WHERE is sound and complete for a simple comparison.
    #[test]
    fn filter_soundness(rows in prop::collection::vec(row_strategy(), 0..40), k in -60i64..60) {
        let db = build_db(&rows);
        let rs = db.run(&format!("SELECT n FROM t WHERE n > {k}")).expect("runs");
        // soundness: every returned n is > k
        for row in &rs.rows {
            match &row[0] {
                Value::Int(v) => prop_assert!(*v > k),
                other => prop_assert!(false, "unexpected value {other:?}"),
            }
        }
        // completeness: count matches a direct scan
        let expected = rows.iter().filter(|(n, _, _)| n.map(|v| v > k).unwrap_or(false)).count();
        prop_assert_eq!(rs.rows.len(), expected);
    }

    /// COUNT(*) equals the row count; COUNT(n) skips NULLs.
    #[test]
    fn count_identities(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let rs = db.run("SELECT COUNT(*), COUNT(n) FROM t").expect("runs");
        prop_assert_eq!(&rs.rows[0][0], &Value::Int(rows.len() as i64));
        let non_null = rows.iter().filter(|(n, _, _)| n.is_some()).count() as i64;
        prop_assert_eq!(&rs.rows[0][1], &Value::Int(non_null));
    }

    /// SUM/AVG/MIN/MAX agree with direct computation over non-null values.
    #[test]
    fn aggregate_identities(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let rs = db.run("SELECT SUM(n), MIN(n), MAX(n) FROM t").expect("runs");
        let vals: Vec<i64> = rows.iter().filter_map(|(n, _, _)| *n).collect();
        if vals.is_empty() {
            prop_assert!(rs.rows[0][0].is_null());
            prop_assert!(rs.rows[0][1].is_null());
            prop_assert!(rs.rows[0][2].is_null());
        } else {
            prop_assert_eq!(&rs.rows[0][0], &Value::Int(vals.iter().sum()));
            prop_assert_eq!(&rs.rows[0][1], &Value::Int(*vals.iter().min().expect("non-empty")));
            prop_assert_eq!(&rs.rows[0][2], &Value::Int(*vals.iter().max().expect("non-empty")));
        }
    }

    /// ORDER BY really sorts; LIMIT really bounds.
    #[test]
    fn order_and_limit(rows in prop::collection::vec(row_strategy(), 0..40), limit in 0u64..10) {
        let db = build_db(&rows);
        let rs = db.run(&format!("SELECT score FROM t ORDER BY score DESC LIMIT {limit}")).expect("runs");
        prop_assert!(rs.rows.len() <= limit as usize);
        for w in rs.rows.windows(2) {
            prop_assert!(w[0][0].sql_cmp(&w[1][0]) != std::cmp::Ordering::Less);
        }
    }

    /// UNION ALL concatenates, UNION deduplicates, EXCEPT-self is empty,
    /// INTERSECT-self equals DISTINCT.
    #[test]
    fn set_operation_algebra(rows in prop::collection::vec(row_strategy(), 0..30)) {
        let db = build_db(&rows);
        let all = db.run("SELECT color FROM t UNION ALL SELECT color FROM t").expect("runs");
        prop_assert_eq!(all.rows.len(), rows.len() * 2);
        let union = db.run("SELECT color FROM t UNION SELECT color FROM t").expect("runs");
        let distinct = db.run("SELECT DISTINCT color FROM t").expect("runs");
        prop_assert!(results_equivalent(&union, &distinct));
        let except = db.run("SELECT color FROM t EXCEPT SELECT color FROM t").expect("runs");
        prop_assert_eq!(except.rows.len(), 0);
        let intersect = db.run("SELECT color FROM t INTERSECT SELECT color FROM t").expect("runs");
        prop_assert!(results_equivalent(&intersect, &distinct));
    }

    /// Three-valued logic: `p` and `NOT p` partition the rows where `p` is
    /// known; rows where `p` is unknown (NULL n) appear in neither.
    #[test]
    fn three_valued_partition(rows in prop::collection::vec(row_strategy(), 0..40), k in -60i64..60) {
        let db = build_db(&rows);
        let p = db.run(&format!("SELECT id FROM t WHERE n > {k}")).expect("runs");
        let not_p = db.run(&format!("SELECT id FROM t WHERE NOT n > {k}")).expect("runs");
        let unknown = rows.iter().filter(|(n, _, _)| n.is_none()).count();
        prop_assert_eq!(p.rows.len() + not_p.rows.len() + unknown, rows.len());
    }

    /// GROUP BY partitions: per-group counts sum to the table size.
    #[test]
    fn group_by_partitions(rows in prop::collection::vec(row_strategy(), 0..40)) {
        let db = build_db(&rows);
        let rs = db.run("SELECT color, COUNT(*) FROM t GROUP BY color").expect("runs");
        let total: i64 = rs
            .rows
            .iter()
            .map(|r| match &r[1] {
                Value::Int(v) => *v,
                other => panic!("count must be int, got {other:?}"),
            })
            .sum();
        prop_assert_eq!(total, rows.len() as i64);
        prop_assert!(rs.rows.len() <= 3, "at most three colors");
    }

    /// Execution is deterministic: same query, same results, same work.
    #[test]
    fn deterministic_execution(rows in prop::collection::vec(row_strategy(), 0..30)) {
        let db = build_db(&rows);
        let q = sqlkit::parse_query(
            "SELECT color, COUNT(*), AVG(score) FROM t WHERE n IS NOT NULL GROUP BY color ORDER BY color",
        ).expect("parses");
        let a = db.run_query(&q).expect("runs");
        let b = db.run_query(&q).expect("runs");
        prop_assert_eq!(&a.rows, &b.rows);
        prop_assert_eq!(a.work, b.work);
    }

    /// Self-join row count equals the square of the table size.
    #[test]
    fn cross_join_cardinality(rows in prop::collection::vec(row_strategy(), 0..15)) {
        let db = build_db(&rows);
        let rs = db.run("SELECT a.id FROM t AS a, t AS b").expect("runs");
        prop_assert_eq!(rs.rows.len(), rows.len() * rows.len());
    }

    /// IN-subquery matches the equivalent self-join semantics.
    #[test]
    fn in_subquery_equals_filter(rows in prop::collection::vec(row_strategy(), 0..30), k in -60i64..60) {
        let db = build_db(&rows);
        let via_sub = db
            .run(&format!("SELECT id FROM t WHERE id IN (SELECT id FROM t WHERE n > {k})"))
            .expect("runs");
        let direct = db.run(&format!("SELECT id FROM t WHERE n > {k}")).expect("runs");
        prop_assert!(results_equivalent(&via_sub, &direct));
    }
}
