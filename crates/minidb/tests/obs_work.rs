//! Per-operator work attribution reconciles with VES work accounting, and
//! the dispatch counters see every `run_query`. Uses the process-global
//! obs recorder, so this lives in its own integration-test binary and
//! serializes its tests on one lock.

use minidb::{Database, TableBuilder, Value};
use std::sync::Mutex;

static GLOBAL: Mutex<()> = Mutex::new(());

fn demo_db() -> Database {
    let mut db = Database::new("obs_demo");
    let users = TableBuilder::new("users")
        .column_int("id")
        .column_text("name")
        .rows((0..40).map(|i| vec![Value::Int(i), Value::text(format!("u{i}"))]))
        .build();
    let orders = TableBuilder::new("orders")
        .column_int("id")
        .column_int("user_id")
        .column_int("total")
        .rows((0..120).map(|i| vec![Value::Int(i), Value::Int(i % 40), Value::Int(i * 3)]))
        .build();
    db.add_table(users).unwrap();
    db.add_table(orders).unwrap();
    db
}

const WORK_COUNTERS: &[&str] = &[
    "minidb.work.scan",
    "minidb.work.filter",
    "minidb.work.join",
    "minidb.work.group",
    "minidb.work.sort",
    "minidb.work.project",
    "minidb.work.set_op",
];

fn op_sum(snap: &obs::Snapshot) -> u64 {
    WORK_COUNTERS.iter().map(|c| snap.counter(c)).sum()
}

#[test]
fn per_op_work_sums_to_ves_work_on_both_paths() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = demo_db();
    let sql = "SELECT T2.name, COUNT(*) FROM orders AS T1 JOIN users AS T2 \
               ON T1.user_id = T2.id WHERE T1.total > 30 GROUP BY T2.name \
               ORDER BY COUNT(*) DESC LIMIT 5";
    let query = sqlkit::parse_query(sql).unwrap();

    // interpreter path
    obs::reset();
    let interp = {
        let _on = obs::enable();
        minidb::exec::execute(&db, &query).unwrap()
    };
    let snap = obs::snapshot();
    assert!(interp.work > 0);
    assert_eq!(op_sum(&snap), interp.work, "interpreter per-op work must sum to rs.work");
    assert_eq!(snap.counter("minidb.work.total"), interp.work);
    assert!(snap.counter("minidb.work.scan") > 0);
    assert!(snap.counter("minidb.work.join") > 0);
    assert!(snap.counter("minidb.work.group") > 0);
    assert!(snap.events.iter().any(|e| e.name == "minidb.exec.interpret"));

    // compiled path: identical totals, identical attribution sum
    obs::reset();
    let plan = minidb::compile(&db, &query).expect("join+group compiles");
    let compiled = {
        let _on = obs::enable();
        plan.execute(&db).unwrap()
    };
    let snap = obs::snapshot();
    assert_eq!(compiled.work, interp.work, "plan parity on work units");
    assert_eq!(op_sum(&snap), compiled.work, "compiled per-op work must sum to rs.work");
    assert!(snap.events.iter().any(|e| e.name == "minidb.exec.compiled"));
    obs::reset();
}

#[test]
fn dispatch_counters_split_compiled_vs_interpreter() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = demo_db();
    obs::reset();
    {
        let _on = obs::enable();
        // compilable query -> compiled dispatch
        db.run("SELECT id FROM users WHERE id > 10").unwrap();
        // correlated subquery does not lower -> interpreter dispatch
        db.run(
            "SELECT name FROM users WHERE id IN \
             (SELECT user_id FROM orders WHERE orders.user_id = users.id)",
        )
        .unwrap();
        db.run("SELECT COUNT(*) FROM orders").unwrap();
    }
    let snap = obs::snapshot();
    let compiled = snap.counter("minidb.dispatch.compiled");
    let interp = snap.counter("minidb.dispatch.interpreter");
    assert_eq!(compiled + interp, 3, "every run_query is dispatched exactly once");
    assert!(compiled >= 1, "plain scans compile");
    assert!(interp >= 1, "correlated subqueries fall back");
    obs::reset();
}

#[test]
fn prepare_records_compile_outcome() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = demo_db();
    obs::reset();
    {
        let _on = obs::enable();
        let q = sqlkit::parse_query("SELECT id FROM users").unwrap();
        assert!(db.prepare(&q).is_some());
        let q = sqlkit::parse_query(
            "SELECT name FROM users WHERE id IN \
             (SELECT user_id FROM orders WHERE orders.user_id = users.id)",
        )
        .unwrap();
        assert!(db.prepare(&q).is_none());
    }
    let snap = obs::snapshot();
    assert_eq!(snap.counter("minidb.plan.compiled"), 1);
    assert_eq!(snap.counter("minidb.plan.fallback"), 1);
    obs::reset();
}

#[test]
fn disabled_recorder_observes_nothing_from_minidb() {
    let _g = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let db = demo_db();
    obs::reset();
    obs::set_enabled(false);
    db.run("SELECT COUNT(*) FROM orders").unwrap();
    let snap = obs::snapshot();
    assert!(snap.events.is_empty());
    assert!(snap.counters.is_empty());
}
