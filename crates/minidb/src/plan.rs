//! Compiled query plans: a one-time lowering pass over the `sqlkit` AST.
//!
//! The interpreter in [`crate::exec`] re-resolves every column *name* to a
//! row offset for every row it touches and re-pattern-matches join
//! conditions per query execution. For the evaluation workloads this is the
//! hot loop: the same shapes of queries run millions of rows. The plan
//! compiler instead resolves once, up front:
//!
//! * every column reference is lowered to a flat offset into the
//!   concatenated row ([`CExpr::Col`]), so row evaluation never compares
//!   strings;
//! * equi-join key columns are pre-extracted ([`CJoinStep::Hash`]), so the
//!   executor goes straight to build/probe;
//! * single-table predicates are pushed below joins into the table scan
//!   where the deterministic work accounting can be preserved exactly
//!   (see below), so filtered-out rows are never materialized;
//! * projections, predicates, grouping keys and order keys all evaluate
//!   against resolved offsets.
//!
//! **Fallback, not failure.** `compile` returns `None` for anything the
//! plan layer does not model (subqueries in any position, `FROM
//! (SELECT ...)`, unresolvable columns, unknown functions, aggregates in
//! positions where the interpreter would raise only *data-dependently*).
//! Callers run the interpreter instead, which keeps behavioral parity
//! trivially: the compiled path only ever executes queries it can mirror
//! bit-for-bit.
//!
//! **Work parity.** The Valid Efficiency Score compares deterministic work
//! units, so a compiled plan must charge *exactly* the units the
//! interpreter charges, even where it does less physical work. Scan,
//! build/probe/emit, pair, WHERE, grouping and aggregate charges are
//! mirrored one-for-one; predicate pushdown is only performed where the
//! skipped rows' charges are still computable (single-table scans, and a
//! single hash/cross join where probe counts price the phantom rows), and
//! the executor charges those phantom units explicitly. The property tests
//! in `datagen` assert `rows`, `columns`, `ordered` and `work` all agree
//! with the interpreter over generated query corpora.

use crate::database::Database;
use crate::error::{ExecError, ExecResult};
use crate::eval::{
    and3, apply_scalar_function, apply_unary, bool3_to_value, cast_value, check_function_arity,
    eval_arith, fold_aggregate, known_function, like_match, literal_value, or3, Binding,
    Counters, WorkOp,
};
use crate::exec::{
    any_aggregate, apply_limit, combine_set_op, equi_join_columns, joined_row, output_columns,
    padded_row, resolve_in, sort_keyed, DEFAULT_WORK_BUDGET,
};
use crate::result::ResultSet;
use crate::value::{row_key_parts, KeyPart, Value};
use sqlkit::ast::*;
use std::collections::{HashMap, HashSet};

/// A compiled expression: column references are flat row offsets, literals
/// are pre-converted values, functions are pre-validated (arity checked at
/// compile time, so evaluation of non-aggregate expressions is infallible).
/// No subqueries — those fall back to the interpreter at compile time.
#[derive(Debug, Clone)]
pub(crate) enum CExpr {
    /// A pre-converted literal.
    Lit(Value),
    /// A resolved column: index into the concatenated row.
    Col(usize),
    /// A pre-computed aggregate slot (vectorized path only): index into the
    /// per-group fold results. Never produced by `compile_expr`.
    Pre(usize),
    /// `COUNT(*)`-style aggregate over the whole group.
    AggCountStar,
    /// An aggregate with an argument, compiled for per-group-row evaluation.
    Agg { func: AggFunc, distinct: bool, arg: Box<CExpr> },
    /// A scalar function call.
    Func { kind: FnKind, name: String, args: Vec<CExpr> },
    Binary { op: BinOp, left: Box<CExpr>, right: Box<CExpr> },
    Unary { op: UnOp, expr: Box<CExpr> },
    Between { expr: Box<CExpr>, negated: bool, low: Box<CExpr>, high: Box<CExpr> },
    InList { expr: Box<CExpr>, negated: bool, list: Vec<CExpr> },
    Like { expr: Box<CExpr>, negated: bool, pattern: Box<CExpr> },
    IsNull { expr: Box<CExpr>, negated: bool },
    Case { operand: Option<Box<CExpr>>, branches: Vec<(CExpr, CExpr)>, else_expr: Option<Box<CExpr>> },
    Cast { expr: Box<CExpr>, ty: String },
}

/// Scalar-function evaluation strategy: IIF and COALESCE must stay lazy
/// (argument skipping is observable through aggregate work charges);
/// everything else evaluates its arguments strictly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FnKind {
    Strict,
    Iif,
    Coalesce,
}

/// One table scan: name plus the expected schema width (stale-plan guard).
#[derive(Debug, Clone)]
pub(crate) struct CScan {
    pub(crate) table: String,
    pub(crate) width: usize,
}

/// One join step against the next scan in the chain.
#[derive(Debug, Clone)]
pub(crate) enum CJoinStep {
    /// Hash equi-join: pre-extracted key offsets (left is relative to the
    /// accumulated row, right is relative to the right table's row).
    Hash { kind: JoinKind, lcol: usize, rcol: usize },
    /// Nested-loop join with an optional compiled ON predicate over the
    /// combined row.
    Nested { kind: JoinKind, on: Option<CExpr> },
}

/// A projection item: a resolved offset range (wildcards) or an expression.
#[derive(Debug, Clone)]
pub(crate) enum CItem {
    /// Copy `row[start..end]` (SELECT `*` / `t.*` with resolved offsets).
    Range(usize, usize),
    Expr(CExpr),
}

/// A compiled ORDER BY key.
#[derive(Debug, Clone)]
pub(crate) enum COrderKey {
    /// A select-alias reference: key is the already-projected column.
    Projected(usize),
    /// An expression over the row/group context.
    Expr(CExpr),
}

/// One compiled SELECT core (an arm of a possibly-compound query).
#[derive(Debug, Clone)]
pub(crate) struct CompiledCore {
    /// Base scan; `None` for `SELECT`s without FROM.
    pub(crate) base: Option<CScan>,
    pub(crate) joins: Vec<(CJoinStep, CScan)>,
    /// Concatenated row width after all joins.
    pub(crate) width: usize,
    /// Whether the query has a WHERE clause at all (drives charge parity).
    pub(crate) has_where: bool,
    /// WHERE conjuncts evaluated against the *base* row, below the joins.
    pub(crate) pushed: Vec<CExpr>,
    /// Remaining WHERE conjuncts, evaluated against the combined row.
    pub(crate) where_rest: Vec<CExpr>,
    pub(crate) agg_mode: bool,
    pub(crate) group_by: Vec<CExpr>,
    pub(crate) having: Option<CExpr>,
    pub(crate) distinct: bool,
    pub(crate) items: Vec<CItem>,
    pub(crate) columns: Vec<String>,
    pub(crate) order_keys: Vec<COrderKey>,
    pub(crate) order_desc: Vec<bool>,
    pub(crate) limit: Option<Limit>,
    /// Vectorized-execution plan, when the shape is eligible (lowered once
    /// at compile time by [`crate::vector::lower`]).
    pub(crate) vcore: Option<crate::vector::VecCore>,
}

/// A fully compiled query: set-op arms plus compound ordering.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    arms: Vec<CompiledCore>,
    ops: Vec<SetOp>,
    /// Compound ORDER BY keys over the output row.
    compound_order: Vec<CExpr>,
    compound_desc: Vec<bool>,
    compound_limit: Option<Limit>,
}

/// Lower a query to a compiled plan, or `None` when any construct requires
/// the interpreter (the caller falls back; results are identical either
/// way, the plan is just faster).
pub fn compile(db: &Database, query: &Query) -> Option<CompiledQuery> {
    if query.set_ops.is_empty() {
        let core = compile_core(db, &query.body, &query.order_by, query.limit)?;
        return Some(CompiledQuery {
            arms: vec![core],
            ops: Vec::new(),
            compound_order: Vec::new(),
            compound_desc: Vec::new(),
            compound_limit: None,
        });
    }
    let mut arms = Vec::with_capacity(1 + query.set_ops.len());
    arms.push(compile_core(db, &query.body, &[], None)?);
    let mut ops = Vec::with_capacity(query.set_ops.len());
    for (op, core) in &query.set_ops {
        ops.push(*op);
        arms.push(compile_core(db, core, &[], None)?);
    }
    // arity mismatches raise a runtime Arity error (after arm charges) in
    // the interpreter — keep that behavior by falling back
    if arms.iter().any(|a| a.columns.len() != arms[0].columns.len()) {
        return None;
    }
    // compound ORDER BY resolves against the output columns; aggregates
    // there would be a data-dependent runtime error → fall back
    if any_aggregate(query.order_by.iter().map(|k| &k.expr)) {
        return None;
    }
    let out_bindings =
        vec![Binding { name: None, columns: arms[0].columns.clone(), offset: 0 }];
    let mut compound_order = Vec::with_capacity(query.order_by.len());
    let mut compound_desc = Vec::with_capacity(query.order_by.len());
    for k in &query.order_by {
        compound_order.push(compile_expr(&out_bindings, &k.expr, false)?);
        compound_desc.push(k.desc);
    }
    Some(CompiledQuery {
        arms,
        ops,
        compound_order,
        compound_desc,
        compound_limit: query.limit,
    })
}

fn compile_core(
    db: &Database,
    core: &SelectCore,
    order_by: &[OrderKey],
    limit: Option<Limit>,
) -> Option<CompiledCore> {
    // 1. FROM: named tables only; subquery sources fall back
    let mut bindings: Vec<Binding> = Vec::new();
    let mut base: Option<CScan> = None;
    let mut joins: Vec<(CJoinStep, CScan)> = Vec::new();
    let mut width = 0usize;
    if let Some(from) = &core.from {
        let TableRef::Named { name, alias } = &from.base else { return None };
        let t = db.table(name).ok()?;
        bindings.push(Binding {
            name: Some(alias.clone().unwrap_or_else(|| name.clone())),
            columns: t.schema.column_names(),
            offset: 0,
        });
        width = t.schema.columns.len();
        base = Some(CScan { table: name.clone(), width });
        for join in &from.joins {
            let TableRef::Named { name, alias } = &join.table else { return None };
            let rt = db.table(name).ok()?;
            let right_binding = Binding {
                name: Some(alias.clone().unwrap_or_else(|| name.clone())),
                columns: rt.schema.column_names(),
                offset: 0,
            };
            let rwidth = rt.schema.columns.len();
            // detect the hash fast path exactly like the interpreter does:
            // right offsets unshifted during detection
            let equi = match (&join.kind, &join.on) {
                (JoinKind::Inner | JoinKind::Left, Some(on)) => {
                    equi_join_columns(on, &bindings, std::slice::from_ref(&right_binding))
                }
                _ => None,
            };
            let mut shifted = right_binding;
            shifted.offset = width;
            bindings.push(shifted);
            width += rwidth;
            let step = match equi {
                Some((lcol, rcol)) => CJoinStep::Hash { kind: join.kind, lcol, rcol },
                None => {
                    let on = match &join.on {
                        None => None,
                        Some(e) => Some(compile_expr(&bindings, e, false)?),
                    };
                    CJoinStep::Nested { kind: join.kind, on }
                }
            };
            joins.push((step, CScan { table: name.clone(), width: rwidth }));
        }
    }

    // 2. WHERE: compile conjuncts, then push base-only ones below the joins
    // where work parity is provable
    let base_width = base.as_ref().map(|b| b.width).unwrap_or(0);
    let has_where = core.where_clause.is_some();
    let mut pushed = Vec::new();
    let mut where_rest = Vec::new();
    if let Some(pred) = &core.where_clause {
        let mut conjuncts = Vec::new();
        split_conjuncts(pred, &mut conjuncts);
        let pushdown_ok = joins.is_empty()
            || (joins.len() == 1
                && match &joins[0].0 {
                    CJoinStep::Hash { kind, .. } => {
                        matches!(kind, JoinKind::Inner | JoinKind::Left)
                    }
                    CJoinStep::Nested { kind, on } => {
                        on.is_none() && matches!(kind, JoinKind::Inner | JoinKind::Cross)
                    }
                });
        for c in conjuncts {
            let ce = compile_expr(&bindings, c, false)?;
            if pushdown_ok && max_col_offset(&ce).map(|m| m < base_width).unwrap_or(true) {
                pushed.push(ce);
            } else {
                where_rest.push(ce);
            }
        }
    }

    // 3. aggregate mode, mirroring the interpreter's detection
    let select_exprs = core.items.iter().filter_map(|i| match i {
        SelectItem::Expr { expr, .. } => Some(expr),
        _ => None,
    });
    let agg_mode = !core.group_by.is_empty()
        || core.having.is_some()
        || any_aggregate(select_exprs)
        || any_aggregate(order_by.iter().map(|k| &k.expr));

    // 4. output columns and alias index (errors here are raised lazily by
    // the interpreter → fall back on failure)
    let columns = output_columns(core, &bindings).ok()?;
    let mut alias_index: HashMap<String, usize> = HashMap::new();
    for (i, item) in core.items.iter().enumerate() {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            alias_index.insert(a.to_lowercase(), i);
        }
    }

    // 5. grouping keys, HAVING, projection items
    let group_by = core
        .group_by
        .iter()
        .map(|g| compile_expr(&bindings, g, false))
        .collect::<Option<Vec<_>>>()?;
    let having = match &core.having {
        None => None,
        Some(h) => Some(compile_expr(&bindings, h, true)?),
    };
    let mut items = Vec::with_capacity(core.items.len());
    for item in &core.items {
        items.push(match item {
            SelectItem::Wildcard => CItem::Range(0, width),
            SelectItem::QualifiedWildcard(t) => {
                let b = bindings.iter().find(|b| {
                    b.name.as_deref().map(|n| n.eq_ignore_ascii_case(t)).unwrap_or(false)
                })?;
                CItem::Range(b.offset, b.offset + b.columns.len())
            }
            SelectItem::Expr { expr, .. } => CItem::Expr(compile_expr(&bindings, expr, true)?),
        });
    }

    // 6. ORDER BY keys: select-alias references resolve to the projected
    // column *before* scope lookup (SQLite resolution order); anything that
    // does not compile statically falls back — the interpreter's
    // error-driven alias fallback is per-row and cannot be mirrored
    let mut order_keys = Vec::with_capacity(order_by.len());
    let mut order_desc = Vec::with_capacity(order_by.len());
    for k in order_by {
        let key = if let Expr::Column { table: None, column } = &k.expr {
            match alias_index.get(&column.to_lowercase()) {
                Some(&idx) => COrderKey::Projected(idx),
                None => COrderKey::Expr(compile_expr(&bindings, &k.expr, true)?),
            }
        } else {
            COrderKey::Expr(compile_expr(&bindings, &k.expr, true)?)
        };
        order_keys.push(key);
        order_desc.push(k.desc);
    }

    let mut cc = CompiledCore {
        base,
        joins,
        width,
        has_where,
        pushed,
        where_rest,
        agg_mode,
        group_by,
        having,
        distinct: core.distinct,
        items,
        columns,
        order_keys,
        order_desc,
        limit,
        vcore: None,
    };
    cc.vcore = crate::vector::lower(&cc);
    Some(cc)
}

/// Flatten a predicate's top-level AND tree into conjuncts. A row passes
/// the predicate iff every conjunct is true, so conjunct-wise filtering is
/// equivalent to evaluating the whole tree.
fn split_conjuncts<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    if let Expr::Binary { op: BinOp::And, left, right } = e {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Highest column offset referenced by a compiled expression (`None` when
/// it references no columns).
fn max_col_offset(e: &CExpr) -> Option<usize> {
    fn walk(e: &CExpr, max: &mut Option<usize>) {
        let mut upd = |i: usize| *max = Some(max.map_or(i, |m: usize| m.max(i)));
        match e {
            CExpr::Lit(_) | CExpr::AggCountStar | CExpr::Pre(_) => {}
            CExpr::Col(i) => upd(*i),
            CExpr::Agg { arg, .. } => walk(arg, max),
            CExpr::Func { args, .. } => args.iter().for_each(|a| walk(a, max)),
            CExpr::Binary { left, right, .. } => {
                walk(left, max);
                walk(right, max);
            }
            CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } | CExpr::Cast { expr, .. } => {
                walk(expr, max)
            }
            CExpr::Between { expr, low, high, .. } => {
                walk(expr, max);
                walk(low, max);
                walk(high, max);
            }
            CExpr::InList { expr, list, .. } => {
                walk(expr, max);
                list.iter().for_each(|a| walk(a, max));
            }
            CExpr::Like { expr, pattern, .. } => {
                walk(expr, max);
                walk(pattern, max);
            }
            CExpr::Case { operand, branches, else_expr } => {
                if let Some(o) = operand {
                    walk(o, max);
                }
                for (w, t) in branches {
                    walk(w, max);
                    walk(t, max);
                }
                if let Some(e) = else_expr {
                    walk(e, max);
                }
            }
        }
    }
    let mut max = None;
    walk(e, &mut max);
    max
}

fn compile_expr(bindings: &[Binding], e: &Expr, allow_agg: bool) -> Option<CExpr> {
    Some(match e {
        Expr::Literal(lit) => CExpr::Lit(literal_value(lit)),
        Expr::Column { table, column } => {
            CExpr::Col(resolve_in(bindings, table.as_deref(), column)?)
        }
        // aggregates are only compiled where the interpreter provides a
        // group context; elsewhere the error is data-dependent → fall back
        Expr::AggWildcard(_) => {
            if !allow_agg {
                return None;
            }
            CExpr::AggCountStar
        }
        Expr::Agg { func, distinct, arg } => {
            if !allow_agg {
                return None;
            }
            // nested aggregates error per group row in the interpreter
            CExpr::Agg {
                func: *func,
                distinct: *distinct,
                arg: Box::new(compile_expr(bindings, arg, false)?),
            }
        }
        Expr::Func { name, args } => {
            if !known_function(name) {
                return None;
            }
            // bad arity raises at the first evaluation in the interpreter;
            // falling back reproduces that error (and any laziness around
            // it) exactly, and makes compiled evaluation infallible — the
            // property the vectorized path's bulk work charges rest on
            check_function_arity(name, args.len()).ok()?;
            let kind = match name.as_str() {
                "IIF" => FnKind::Iif,
                "COALESCE" => FnKind::Coalesce,
                _ => FnKind::Strict,
            };
            CExpr::Func {
                kind,
                name: name.clone(),
                args: args
                    .iter()
                    .map(|a| compile_expr(bindings, a, allow_agg))
                    .collect::<Option<Vec<_>>>()?,
            }
        }
        Expr::Binary { op, left, right } => CExpr::Binary {
            op: *op,
            left: Box::new(compile_expr(bindings, left, allow_agg)?),
            right: Box::new(compile_expr(bindings, right, allow_agg)?),
        },
        Expr::Unary { op, expr } => {
            CExpr::Unary { op: *op, expr: Box::new(compile_expr(bindings, expr, allow_agg)?) }
        }
        Expr::Between { expr, negated, low, high } => CExpr::Between {
            expr: Box::new(compile_expr(bindings, expr, allow_agg)?),
            negated: *negated,
            low: Box::new(compile_expr(bindings, low, allow_agg)?),
            high: Box::new(compile_expr(bindings, high, allow_agg)?),
        },
        Expr::InList { expr, negated, list } => CExpr::InList {
            expr: Box::new(compile_expr(bindings, expr, allow_agg)?),
            negated: *negated,
            list: list
                .iter()
                .map(|i| compile_expr(bindings, i, allow_agg))
                .collect::<Option<Vec<_>>>()?,
        },
        Expr::Like { expr, negated, pattern } => CExpr::Like {
            expr: Box::new(compile_expr(bindings, expr, allow_agg)?),
            negated: *negated,
            pattern: Box::new(compile_expr(bindings, pattern, allow_agg)?),
        },
        Expr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(compile_expr(bindings, expr, allow_agg)?),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_expr } => CExpr::Case {
            operand: match operand {
                None => None,
                Some(o) => Some(Box::new(compile_expr(bindings, o, allow_agg)?)),
            },
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Some((
                        compile_expr(bindings, w, allow_agg)?,
                        compile_expr(bindings, t, allow_agg)?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                None => None,
                Some(e) => Some(Box::new(compile_expr(bindings, e, allow_agg)?)),
            },
        },
        Expr::Cast { expr, ty } => CExpr::Cast {
            expr: Box::new(compile_expr(bindings, expr, allow_agg)?),
            ty: ty.clone(),
        },
        // subqueries always fall back to the interpreter
        Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::Subquery(_) => return None,
    })
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl CompiledQuery {
    /// Execute against a database with the default work budget. The
    /// database must have the schema the plan was compiled against (same
    /// tables, same column layout); content may differ — this is what makes
    /// plans reusable across test-suite instance regenerations.
    pub fn execute(&self, db: &Database) -> ExecResult<ResultSet> {
        self.execute_with_budget(db, DEFAULT_WORK_BUDGET)
    }

    /// Execute with an explicit work budget (rows touched).
    pub fn execute_with_budget(&self, db: &Database, budget: u64) -> ExecResult<ResultSet> {
        self.execute_impl(db, budget, true)
    }

    /// Execute forcing the row-at-a-time compiled path, even for shapes with
    /// a vectorized plan. Exists so benchmarks (and parity tests) can compare
    /// the two compiled executors directly; results and work charges are
    /// identical by construction.
    pub fn execute_rowwise(&self, db: &Database) -> ExecResult<ResultSet> {
        self.execute_impl(db, DEFAULT_WORK_BUDGET, false)
    }

    /// True when every arm of this plan lowered to a vectorized (columnar)
    /// executor, i.e. [`CompiledQuery::execute`] takes the batch path for
    /// the whole query rather than falling back row at a time anywhere.
    pub fn is_vectorized(&self) -> bool {
        self.arms.iter().all(|core| core.vcore.is_some())
    }

    fn execute_impl(&self, db: &Database, budget: u64, use_vector: bool) -> ExecResult<ResultSet> {
        let _span = obs::span("minidb.exec.compiled");
        let counters = Counters::new(budget);
        let result = self.execute_inner(db, &counters, use_vector);
        counters.flush_obs();
        let mut rs = result?;
        rs.work = counters.work();
        Ok(rs)
    }

    fn execute_inner(
        &self,
        db: &Database,
        counters: &Counters,
        use_vector: bool,
    ) -> ExecResult<ResultSet> {
        let rs = if self.ops.is_empty() {
            exec_compiled_core(db, &self.arms[0], counters, use_vector)?
        } else {
            let mut acc = exec_compiled_core(db, &self.arms[0], counters, use_vector)?;
            for (op, core) in self.ops.iter().zip(&self.arms[1..]) {
                let rhs = exec_compiled_core(db, core, counters, use_vector)?;
                counters.charge(WorkOp::SetOp, (acc.rows.len() + rhs.rows.len()) as u64)?;
                acc.rows = combine_set_op(*op, std::mem::take(&mut acc.rows), rhs.rows);
            }
            if !self.compound_order.is_empty() {
                let mut keyed: Vec<(Vec<Value>, Vec<Value>)> =
                    Vec::with_capacity(acc.rows.len());
                for row in std::mem::take(&mut acc.rows) {
                    counters.charge(WorkOp::Sort, 1)?;
                    let mut keys = Vec::with_capacity(self.compound_order.len());
                    for k in &self.compound_order {
                        keys.push(ceval(counters, &row, None, &[], k)?);
                    }
                    keyed.push((keys, row));
                }
                sort_keyed(&mut keyed, &self.compound_desc);
                acc.rows = keyed.into_iter().map(|(_, r)| r).collect();
            }
            if let Some(limit) = self.compound_limit {
                acc.rows = apply_limit(acc.rows, limit);
            }
            acc.ordered = !self.compound_order.is_empty();
            acc
        };
        Ok(rs)
    }
}

/// Evaluate all predicates against a row; a row passes iff every conjunct
/// is true (identical to evaluating the original AND tree).
fn pass_all(counters: &Counters, row: &[Value], preds: &[CExpr]) -> ExecResult<bool> {
    for p in preds {
        if ceval(counters, row, None, &[], p)?.truth() != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// FROM + joins + WHERE with the interpreter's exact charge schedule.
fn materialize(db: &Database, core: &CompiledCore, counters: &Counters) -> ExecResult<Vec<Vec<Value>>> {
    let Some(base) = &core.base else {
        // no FROM: a single empty row, optionally filtered
        let rows = vec![Vec::new()];
        if core.has_where {
            counters.charge(WorkOp::Filter, 1)?;
            if !pass_all(counters, &[], &core.pushed)? {
                return Ok(Vec::new());
            }
        }
        return Ok(rows);
    };
    let base_t = scan_table(db, base)?;
    counters.charge(WorkOp::Scan, base_t.n_rows() as u64)?;

    if core.joins.is_empty() {
        // fused scan-filter: predicates run below the materialization, so
        // non-matching rows are never cloned; charges are identical (scan N
        // up front + 1 WHERE unit per scanned row)
        if core.has_where {
            let mut rows = Vec::new();
            for i in 0..base_t.n_rows() {
                counters.charge(WorkOp::Filter, 1)?;
                let r = base_t.row(i);
                if pass_all(counters, &r, &core.pushed)? {
                    rows.push(r);
                }
            }
            return Ok(rows);
        }
        return Ok(base_t.to_rows());
    }

    if core.joins.len() == 1 && !core.pushed.is_empty() {
        return join_with_pushdown(db, core, base_t, counters);
    }

    // general chain: join steps over resolved offsets, then WHERE
    let base_rows = base_t.to_rows();
    let mut cur: Vec<Vec<Value>> = Vec::new();
    let mut width = base.width;
    for (ji, (step, scan)) in core.joins.iter().enumerate() {
        let rt = scan_table(db, scan)?;
        counters.charge(WorkOp::Scan, rt.n_rows() as u64)?;
        let rt_rows = rt.to_rows();
        let cw = width + scan.width;
        cur = if ji == 0 {
            join_step(counters, &base_rows, width, &rt_rows, scan.width, cw, step)?
        } else {
            let left = std::mem::take(&mut cur);
            join_step(counters, &left, width, &rt_rows, scan.width, cw, step)?
        };
        width = cw;
    }
    if core.has_where {
        let mut rows = Vec::with_capacity(cur.len());
        for row in cur {
            counters.charge(WorkOp::Filter, 1)?;
            if pass_all(counters, &row, &core.where_rest)? {
                rows.push(row);
            }
        }
        return Ok(rows);
    }
    Ok(cur)
}

/// Single-join pushdown: base-side predicates are evaluated once per base
/// row instead of once per joined row, and joined rows for filtered-out
/// base rows are never materialized. The charges the interpreter would
/// have made for those phantom rows (emit + WHERE units) are derived from
/// probe counts and charged explicitly, keeping total work identical.
fn join_with_pushdown(
    db: &Database,
    core: &CompiledCore,
    base_t: &crate::database::Table,
    counters: &Counters,
) -> ExecResult<Vec<Vec<Value>>> {
    let (step, scan) = &core.joins[0];
    let rt = scan_table(db, scan)?;
    counters.charge(WorkOp::Scan, rt.n_rows() as u64)?;
    let rt_rows = rt.to_rows();
    let base_rows = base_t.to_rows();
    let cw = core.width;
    let mut out: Vec<Vec<Value>> = Vec::new();
    match step {
        CJoinStep::Hash { kind, lcol, rcol } => {
            let mut table: HashMap<KeyPart, Vec<usize>> = HashMap::with_capacity(rt_rows.len());
            for (i, r) in rt_rows.iter().enumerate() {
                counters.charge(WorkOp::Join, 1)?;
                let key = &r[*rcol];
                if !key.is_null() {
                    table.entry(key.key_part()).or_default().push(i);
                }
            }
            for l in &base_rows {
                counters.charge(WorkOp::Join, 1)?; // probe
                let key = &l[*lcol];
                let matches: &[usize] = if key.is_null() {
                    &[]
                } else {
                    table.get(&key.key_part()).map(Vec::as_slice).unwrap_or(&[])
                };
                let m = matches.len() as u64;
                counters.charge(WorkOp::Join, m)?; // emit units, materialized or not
                let padded = matches.is_empty() && *kind == JoinKind::Left;
                // WHERE units for every joined row this base row produces
                counters.charge(WorkOp::Filter, if padded { 1 } else { m })?;
                if !pass_all(counters, l, &core.pushed)? {
                    continue; // phantom: charged, never materialized
                }
                if padded {
                    let row = padded_row(l, scan.width, cw);
                    if pass_all(counters, &row, &core.where_rest)? {
                        out.push(row);
                    }
                } else {
                    for &ri in matches {
                        let row = joined_row(l, &rt_rows[ri], cw);
                        if pass_all(counters, &row, &core.where_rest)? {
                            out.push(row);
                        }
                    }
                }
            }
        }
        CJoinStep::Nested { .. } => {
            // pushdown is only planned for ON-less Inner/Cross joins: every
            // pair both charges one pair unit and emits one joined row
            let m = rt_rows.len() as u64;
            for l in &base_rows {
                counters.charge(WorkOp::Join, m)?; // pair units
                counters.charge(WorkOp::Filter, m)?; // WHERE units
                if !pass_all(counters, l, &core.pushed)? {
                    continue;
                }
                for r in &rt_rows {
                    let row = joined_row(l, r, cw);
                    if pass_all(counters, &row, &core.where_rest)? {
                        out.push(row);
                    }
                }
            }
        }
    }
    Ok(out)
}

pub(crate) fn scan_table<'a>(db: &'a Database, scan: &CScan) -> ExecResult<&'a crate::database::Table> {
    let t = db.table(&scan.table)?;
    if t.schema.columns.len() != scan.width {
        return Err(ExecError::Unsupported(format!(
            "compiled plan is stale for table {}",
            scan.table
        )));
    }
    Ok(t)
}

fn join_step<L: AsRef<[Value]>>(
    counters: &Counters,
    left: &[L],
    lwidth: usize,
    right: &[Vec<Value>],
    rwidth: usize,
    cw: usize,
    step: &CJoinStep,
) -> ExecResult<Vec<Vec<Value>>> {
    let mut out: Vec<Vec<Value>> = Vec::new();
    match step {
        CJoinStep::Hash { kind, lcol, rcol } => {
            let mut table: HashMap<KeyPart, Vec<usize>> = HashMap::with_capacity(right.len());
            for (i, r) in right.iter().enumerate() {
                counters.charge(WorkOp::Join, 1)?;
                let key = &r[*rcol];
                if !key.is_null() {
                    table.entry(key.key_part()).or_default().push(i);
                }
            }
            out.reserve(left.len());
            for l in left {
                let l = l.as_ref();
                counters.charge(WorkOp::Join, 1)?;
                let key = &l[*lcol];
                let matches: &[usize] = if key.is_null() {
                    &[]
                } else {
                    table.get(&key.key_part()).map(Vec::as_slice).unwrap_or(&[])
                };
                for &ri in matches {
                    counters.charge(WorkOp::Join, 1)?;
                    out.push(joined_row(l, &right[ri], cw));
                }
                if matches.is_empty() && *kind == JoinKind::Left {
                    out.push(padded_row(l, rwidth, cw));
                }
            }
        }
        CJoinStep::Nested { kind, on } => {
            let eval_on = |row: &[Value]| -> ExecResult<bool> {
                match on {
                    None => Ok(true),
                    Some(e) => Ok(ceval(counters, row, None, &[], e)?.truth() == Some(true)),
                }
            };
            match kind {
                JoinKind::Inner | JoinKind::Cross => {
                    for l in left {
                        let l = l.as_ref();
                        for r in right {
                            counters.charge(WorkOp::Join, 1)?;
                            let row = joined_row(l, r, cw);
                            if eval_on(&row)? {
                                out.push(row);
                            }
                        }
                    }
                }
                JoinKind::Left => {
                    for l in left {
                        let l = l.as_ref();
                        let mut matched = false;
                        for r in right {
                            counters.charge(WorkOp::Join, 1)?;
                            let row = joined_row(l, r, cw);
                            if eval_on(&row)? {
                                matched = true;
                                out.push(row);
                            }
                        }
                        if !matched {
                            out.push(padded_row(l, rwidth, cw));
                        }
                    }
                }
                JoinKind::Right => {
                    for r in right {
                        let mut matched = false;
                        for l in left {
                            let l = l.as_ref();
                            counters.charge(WorkOp::Join, 1)?;
                            let row = joined_row(l, r, cw);
                            if eval_on(&row)? {
                                matched = true;
                                out.push(row);
                            }
                        }
                        if !matched {
                            let mut row: Vec<Value> = Vec::with_capacity(cw);
                            row.extend(std::iter::repeat_n(Value::Null, lwidth));
                            row.extend_from_slice(r);
                            out.push(row);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

fn exec_compiled_core(
    db: &Database,
    core: &CompiledCore,
    counters: &Counters,
    use_vector: bool,
) -> ExecResult<ResultSet> {
    if use_vector {
        if let Some(v) = &core.vcore {
            return crate::vector::exec_core(db, core, v, counters);
        }
    }
    let rows = materialize(db, core, counters)?;
    let null_row: Vec<Value> = vec![Value::Null; core.width];

    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    if core.agg_mode {
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        if core.group_by.is_empty() {
            groups.push(rows);
        } else {
            let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
            for row in rows {
                counters.charge(WorkOp::Group, 1)?;
                let mut key = Vec::with_capacity(core.group_by.len());
                for g in &core.group_by {
                    key.push(ceval(counters, &row, None, &[], g)?.key_part());
                }
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(row);
            }
        }
        for group in &groups {
            counters.charge(WorkOp::Group, 1)?;
            let head: &[Value] = group.first().map(|r| r.as_slice()).unwrap_or(&null_row);
            if let Some(having) = &core.having {
                if ceval(counters, head, Some(group), &[], having)?.truth() != Some(true) {
                    continue;
                }
            }
            let out = cproject(counters, core, head, Some(group))?;
            let keys = corder_keys(counters, core, head, Some(group), &out)?;
            keyed.push((keys, out));
        }
    } else {
        keyed.reserve(rows.len());
        for row in &rows {
            counters.charge(WorkOp::Project, 1)?;
            let out = cproject(counters, core, row, None)?;
            let keys = corder_keys(counters, core, row, None, &out)?;
            keyed.push((keys, out));
        }
    }

    if core.distinct {
        let mut seen = HashSet::new();
        keyed.retain(|(_, row)| seen.insert(row_key_parts(row)));
    }

    if !core.order_keys.is_empty() {
        sort_keyed(&mut keyed, &core.order_desc);
    }
    let mut out_rows: Vec<Vec<Value>> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = core.limit {
        out_rows = apply_limit(out_rows, limit);
    }

    Ok(ResultSet {
        columns: core.columns.clone(),
        rows: out_rows,
        ordered: !core.order_keys.is_empty(),
        work: 0,
    })
}

fn cproject(
    counters: &Counters,
    core: &CompiledCore,
    head: &[Value],
    group: Option<&[Vec<Value>]>,
) -> ExecResult<Vec<Value>> {
    let mut out = Vec::with_capacity(core.items.len());
    for item in &core.items {
        match item {
            CItem::Range(start, end) => out.extend_from_slice(&head[*start..*end]),
            CItem::Expr(e) => out.push(ceval(counters, head, group, &[], e)?),
        }
    }
    Ok(out)
}

fn corder_keys(
    counters: &Counters,
    core: &CompiledCore,
    head: &[Value],
    group: Option<&[Vec<Value>]>,
    projected: &[Value],
) -> ExecResult<Vec<Value>> {
    let mut keys = Vec::with_capacity(core.order_keys.len());
    for k in &core.order_keys {
        keys.push(match k {
            COrderKey::Projected(idx) => projected[*idx].clone(),
            COrderKey::Expr(e) => ceval(counters, head, group, &[], e)?,
        });
    }
    Ok(keys)
}

/// Row access for compiled-expression evaluation: the row-wise path reads
/// materialized `Vec<Value>` rows, the vectorized path gathers cells from
/// column storage on demand (late materialization).
pub(crate) trait RowView {
    /// Materialize the cell at flat offset `i`.
    fn cell(&self, i: usize) -> Value;
}

impl RowView for [Value] {
    #[inline]
    fn cell(&self, i: usize) -> Value {
        self[i].clone()
    }
}

impl RowView for Vec<Value> {
    #[inline]
    fn cell(&self, i: usize) -> Value {
        self[i].clone()
    }
}

/// Evaluate a compiled expression against a row (and optional group).
/// Mirrors [`crate::eval::eval`] exactly, including laziness and the
/// aggregate-argument work charges. `pre` resolves [`CExpr::Pre`] slots
/// (vectorized path); row-wise callers pass `&[]`.
pub(crate) fn ceval<R: RowView + ?Sized>(
    counters: &Counters,
    row: &R,
    group: Option<&[Vec<Value>]>,
    pre: &[Value],
    e: &CExpr,
) -> ExecResult<Value> {
    match e {
        CExpr::Lit(v) => Ok(v.clone()),
        CExpr::Col(i) => Ok(row.cell(*i)),
        CExpr::Pre(i) => Ok(pre[*i].clone()),
        CExpr::AggCountStar => {
            let group = group.ok_or_else(|| {
                ExecError::Unsupported("aggregate COUNT outside GROUP context".to_string())
            })?;
            Ok(Value::Int(group.len() as i64))
        }
        CExpr::Agg { func, distinct, arg } => {
            let group = group.ok_or_else(|| {
                ExecError::Unsupported(format!(
                    "aggregate {} outside GROUP context",
                    func.as_str()
                ))
            })?;
            let mut values = Vec::with_capacity(group.len());
            for grow in group {
                counters.charge(WorkOp::Group, 1)?;
                let v = ceval(counters, grow, None, &[], arg)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
            Ok(fold_aggregate(*func, values, *distinct))
        }
        CExpr::Func { kind, name, args } => {
            check_function_arity(name, args.len())?;
            match kind {
                FnKind::Iif => {
                    if ceval(counters, row, group, pre, &args[0])?.truth() == Some(true) {
                        ceval(counters, row, group, pre, &args[1])
                    } else {
                        ceval(counters, row, group, pre, &args[2])
                    }
                }
                FnKind::Coalesce => {
                    for a in args {
                        let v = ceval(counters, row, group, pre, a)?;
                        if !v.is_null() {
                            return Ok(v);
                        }
                    }
                    Ok(Value::Null)
                }
                FnKind::Strict => {
                    let mut vals = Vec::with_capacity(args.len());
                    for a in args {
                        vals.push(ceval(counters, row, group, pre, a)?);
                    }
                    apply_scalar_function(name, vals)
                }
            }
        }
        CExpr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = ceval(counters, row, group, pre, left)?.truth();
                if l == Some(false) {
                    return Ok(Value::Int(0));
                }
                let r = ceval(counters, row, group, pre, right)?.truth();
                Ok(bool3_to_value(and3(l, r)))
            }
            BinOp::Or => {
                let l = ceval(counters, row, group, pre, left)?.truth();
                if l == Some(true) {
                    return Ok(Value::Int(1));
                }
                let r = ceval(counters, row, group, pre, right)?.truth();
                Ok(bool3_to_value(or3(l, r)))
            }
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                let l = ceval(counters, row, group, pre, left)?;
                let r = ceval(counters, row, group, pre, right)?;
                let ord = l.sql_ord(&r);
                let b = ord.map(|o| match op {
                    BinOp::Eq => o == std::cmp::Ordering::Equal,
                    BinOp::NotEq => o != std::cmp::Ordering::Equal,
                    BinOp::Lt => o == std::cmp::Ordering::Less,
                    BinOp::LtEq => o != std::cmp::Ordering::Greater,
                    BinOp::Gt => o == std::cmp::Ordering::Greater,
                    BinOp::GtEq => o != std::cmp::Ordering::Less,
                    _ => unreachable!(),
                });
                Ok(bool3_to_value(b))
            }
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                let l = ceval(counters, row, group, pre, left)?;
                let r = ceval(counters, row, group, pre, right)?;
                eval_arith(*op, l, r)
            }
            BinOp::Concat => {
                let l = ceval(counters, row, group, pre, left)?;
                let r = ceval(counters, row, group, pre, right)?;
                if l.is_null() || r.is_null() {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Text(format!("{}{}", l.render(), r.render())))
                }
            }
        },
        CExpr::Unary { op, expr } => {
            let v = ceval(counters, row, group, pre, expr)?;
            Ok(apply_unary(*op, v))
        }
        CExpr::Between { expr, negated, low, high } => {
            let v = ceval(counters, row, group, pre, expr)?;
            let lo = ceval(counters, row, group, pre, low)?;
            let hi = ceval(counters, row, group, pre, high)?;
            let ge = v.sql_ord(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_ord(&hi).map(|o| o != std::cmp::Ordering::Greater);
            Ok(bool3_to_value(and3(ge, le).map(|b| b ^ negated)))
        }
        CExpr::InList { expr, negated, list } => {
            let v = ceval(counters, row, group, pre, expr)?;
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = ceval(counters, row, group, pre, item)?;
                match v.sql_eq(&iv) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let r = if found {
                Some(true)
            } else if saw_null {
                None
            } else {
                Some(false)
            };
            Ok(bool3_to_value(r.map(|b| b ^ negated)))
        }
        CExpr::Like { expr, negated, pattern } => {
            let v = ceval(counters, row, group, pre, expr)?;
            let p = ceval(counters, row, group, pre, pattern)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(&p.render(), &v.render());
            Ok(Value::Int(i64::from(matched ^ negated)))
        }
        CExpr::IsNull { expr, negated } => {
            let v = ceval(counters, row, group, pre, expr)?;
            Ok(Value::Int(i64::from(v.is_null() ^ negated)))
        }
        CExpr::Case { operand, branches, else_expr } => {
            for (when, then) in branches {
                let hit = match operand {
                    Some(op) => {
                        let ov = ceval(counters, row, group, pre, op)?;
                        let wv = ceval(counters, row, group, pre, when)?;
                        ov.sql_eq(&wv) == Some(true)
                    }
                    None => ceval(counters, row, group, pre, when)?.truth() == Some(true),
                };
                if hit {
                    return ceval(counters, row, group, pre, then);
                }
            }
            match else_expr {
                Some(e) => ceval(counters, row, group, pre, e),
                None => Ok(Value::Null),
            }
        }
        CExpr::Cast { expr, ty } => {
            let v = ceval(counters, row, group, pre, expr)?;
            Ok(cast_value(v, ty))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TableBuilder;
    use crate::exec;
    use crate::value::Value as V;

    fn db() -> Database {
        let mut db = Database::new("concert_singer");
        db.add_table(
            TableBuilder::new("singer")
                .column_int("id")
                .column_text("name")
                .column_text("country")
                .column_int("age")
                .primary_key(&["id"])
                .rows(vec![
                    vec![V::Int(1), V::text("Ann"), V::text("US"), V::Int(30)],
                    vec![V::Int(2), V::text("Bo"), V::text("UK"), V::Int(20)],
                    vec![V::Int(3), V::text("Cy"), V::text("US"), V::Int(40)],
                    vec![V::Int(4), V::text("Dee"), V::text("FR"), V::Int(25)],
                ])
                .build(),
        )
        .unwrap();
        db.add_table(
            TableBuilder::new("concert")
                .column_int("cid")
                .column_int("singer_id")
                .column_int("year")
                .column_text("venue")
                .primary_key(&["cid"])
                .foreign_key("singer_id", "singer", "id")
                .rows(vec![
                    vec![V::Int(10), V::Int(1), V::Int(2014), V::text("Alpha")],
                    vec![V::Int(11), V::Int(1), V::Int(2015), V::text("Beta")],
                    vec![V::Int(12), V::Int(2), V::Int(2014), V::text("Alpha")],
                    vec![V::Int(13), V::Int(9), V::Int(2016), V::text("Gamma")],
                ])
                .build(),
        )
        .unwrap();
        db
    }

    /// Compile (must succeed) and assert the compiled execution is
    /// identical to the interpreter — rows, columns, ordered flag and the
    /// deterministic work counter.
    fn assert_parity(sql: &str) {
        let db = db();
        let q = sqlkit::parse_query(sql).unwrap();
        let plan = compile(&db, &q).unwrap_or_else(|| panic!("`{sql}` must compile"));
        let compiled = plan.execute(&db).unwrap_or_else(|e| panic!("compiled `{sql}`: {e}"));
        let interpreted =
            exec::execute(&db, &q).unwrap_or_else(|e| panic!("interpreted `{sql}`: {e}"));
        assert_eq!(compiled.columns, interpreted.columns, "`{sql}` columns");
        assert_eq!(
            format!("{:?}", compiled.rows),
            format!("{:?}", interpreted.rows),
            "`{sql}` rows"
        );
        assert_eq!(compiled.ordered, interpreted.ordered, "`{sql}` ordered");
        assert_eq!(compiled.work, interpreted.work, "`{sql}` work");
    }

    #[test]
    fn scan_filter_parity() {
        assert_parity("SELECT name FROM singer WHERE age > 25");
        assert_parity("SELECT * FROM singer");
        assert_parity("SELECT name, age FROM singer WHERE country = 'US' AND age < 35");
        assert_parity("SELECT 1, 'x'");
    }

    #[test]
    fn join_parity() {
        assert_parity(
            "SELECT T1.name, T2.venue FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id",
        );
        assert_parity(
            "SELECT T1.name FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id",
        );
        assert_parity(
            "SELECT T1.name FROM singer AS T1 RIGHT JOIN concert AS T2 ON T1.id = T2.singer_id",
        );
        assert_parity("SELECT singer.name FROM singer, concert");
        assert_parity(
            "SELECT T1.name FROM singer AS T1 JOIN concert AS T2 ON T2.singer_id = T1.id AND 1 = 1",
        );
    }

    #[test]
    fn pushdown_parity() {
        // base-side predicates below a hash join
        assert_parity(
            "SELECT T1.name, T2.venue FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id WHERE T1.age > 25",
        );
        // mixed: one base-side conjunct, one right-side conjunct
        assert_parity(
            "SELECT T1.name FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id WHERE T1.age > 19 AND T2.year = 2014",
        );
        // left join with base-side filter
        assert_parity(
            "SELECT T1.name, T2.venue FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id WHERE T1.country = 'US'",
        );
        // comma join with an equality filter
        assert_parity(
            "SELECT singer.name FROM singer, concert WHERE singer.id = concert.singer_id AND singer.age < 35",
        );
    }

    #[test]
    fn group_order_parity() {
        assert_parity("SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY country");
        assert_parity("SELECT country FROM singer GROUP BY country HAVING COUNT(*) > 1");
        assert_parity("SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM singer");
        assert_parity("SELECT COUNT(DISTINCT country) FROM singer");
        assert_parity("SELECT name FROM singer ORDER BY age DESC LIMIT 2");
        assert_parity("SELECT age * 2 AS doubled FROM singer ORDER BY doubled LIMIT 1");
        assert_parity(
            "SELECT country FROM singer GROUP BY country ORDER BY COUNT(*) DESC, country LIMIT 1",
        );
        assert_parity("SELECT DISTINCT country FROM singer");
        assert_parity(
            "SELECT T1.name, COUNT(*) FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id GROUP BY T1.name ORDER BY COUNT(*) DESC",
        );
    }

    #[test]
    fn set_op_parity() {
        assert_parity("SELECT country FROM singer UNION SELECT country FROM singer");
        assert_parity("SELECT country FROM singer UNION ALL SELECT country FROM singer");
        assert_parity(
            "SELECT venue FROM concert EXCEPT SELECT venue FROM concert WHERE year = 2014",
        );
        assert_parity(
            "SELECT name FROM singer WHERE age < 25 UNION SELECT name FROM singer WHERE age > 35 ORDER BY name DESC",
        );
    }

    #[test]
    fn expression_parity() {
        assert_parity(
            "SELECT name, CASE WHEN age >= 30 THEN 'old' ELSE 'young' END FROM singer ORDER BY id LIMIT 2",
        );
        assert_parity("SELECT IIF(age > 25, 1, 0) FROM singer ORDER BY id");
        assert_parity("SELECT name FROM singer WHERE name LIKE '%n%'");
        assert_parity("SELECT name FROM singer WHERE age BETWEEN 20 AND 30 ORDER BY age");
        assert_parity("SELECT age + 1, age / 2, age % 7 FROM singer WHERE id = 1");
        assert_parity("SELECT age / 0 FROM singer WHERE id = 1");
        assert_parity("SELECT UPPER(name), LENGTH(country) FROM singer WHERE id IN (1, 3)");
        assert_parity("SELECT name FROM singer WHERE country IS NOT NULL ORDER BY name");
    }

    #[test]
    fn subqueries_fall_back() {
        let db = db();
        for sql in [
            "SELECT name FROM singer WHERE id IN (SELECT singer_id FROM concert)",
            "SELECT name FROM singer WHERE age > (SELECT AVG(age) FROM singer)",
            "SELECT name FROM singer WHERE EXISTS (SELECT 1 FROM concert WHERE concert.singer_id = singer.id)",
            "SELECT sub.c FROM (SELECT country AS c FROM singer) AS sub",
        ] {
            let q = sqlkit::parse_query(sql).unwrap();
            assert!(compile(&db, &q).is_none(), "`{sql}` must fall back");
        }
    }

    #[test]
    fn unresolvable_or_unknown_falls_back() {
        let db = db();
        for sql in [
            "SELECT nonexistent FROM singer",
            "SELECT x FROM nope",
            "SELECT UNKNOWNFN(age) FROM singer",
        ] {
            let q = sqlkit::parse_query(sql).unwrap();
            assert!(compile(&db, &q).is_none(), "`{sql}` must fall back");
        }
    }

    #[test]
    fn stale_plan_detected() {
        let db1 = db();
        let q = sqlkit::parse_query("SELECT name FROM singer").unwrap();
        let plan = compile(&db1, &q).unwrap();
        // a database with a different singer schema invalidates the plan
        let mut db2 = Database::new("other");
        db2.add_table(TableBuilder::new("singer").column_int("id").build()).unwrap();
        assert!(matches!(plan.execute(&db2), Err(ExecError::Unsupported(_))));
    }

    #[test]
    fn plan_reusable_across_content_changes() {
        let db1 = db();
        let q = sqlkit::parse_query("SELECT name FROM singer WHERE age > 25").unwrap();
        let plan = compile(&db1, &q).unwrap();
        let mut db2 = db();
        db2.insert("singer", vec![vec![V::Int(5), V::text("Eve"), V::text("DE"), V::Int(50)]])
            .unwrap();
        let rs = plan.execute(&db2).unwrap();
        assert_eq!(rs.rows.len(), 3, "same schema, new content");
    }

    #[test]
    fn budget_trips_like_interpreter() {
        let db = db();
        let q = sqlkit::parse_query("SELECT singer.name FROM singer, concert").unwrap();
        let plan = compile(&db, &q).unwrap();
        assert!(matches!(
            plan.execute_with_budget(&db, 3),
            Err(ExecError::ResourceExhausted(_))
        ));
    }
}
