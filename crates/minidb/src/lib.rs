//! # minidb
//!
//! A small in-memory relational engine that executes the `sqlkit` SELECT
//! dialect: inner/left/right/cross joins, WHERE, GROUP BY + aggregates,
//! HAVING, ORDER BY / LIMIT, DISTINCT, set operations, and correlated
//! IN / EXISTS / scalar subqueries.
//!
//! It is the SQLite substitute backing the Execution Accuracy (EX) and Valid
//! Efficiency Score (VES) metrics of the NL2SQL360 reproduction: EX compares
//! result multisets of gold vs. predicted SQL, VES compares execution cost.
//! Alongside wall-clock timing the executor maintains a deterministic
//! *work-unit* counter (rows touched) so efficiency experiments are
//! reproducible on any machine.
//!
//! ```
//! use minidb::{Database, TableBuilder, Value};
//!
//! let mut db = Database::new("demo");
//! db.add_table(
//!     TableBuilder::new("singer")
//!         .column_int("id").column_text("name").column_int("age")
//!         .primary_key(&["id"])
//!         .row(vec![Value::Int(1), Value::text("Ann"), Value::Int(30)])
//!         .row(vec![Value::Int(2), Value::text("Bo"), Value::Int(20)])
//!         .build(),
//! ).unwrap();
//! let rs = db.run("SELECT name FROM singer WHERE age > 25").unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::text("Ann")]]);
//! ```

pub mod column;
pub mod database;
pub mod error;
pub mod eval;
pub mod exec;
pub mod plan;
pub mod result;
pub mod schema;
pub mod value;
mod vector;

pub use column::{Column, ColumnData, Validity};
pub use database::{Database, Table, TableBuilder};
pub use error::{ExecError, ExecResult};
pub use plan::{compile, CompiledQuery};
pub use result::{results_equivalent, ResultSet};
pub use schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
pub use value::{KeyPart, Value};
