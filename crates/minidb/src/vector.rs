//! Vectorized batch execution over columnar storage.
//!
//! The row-wise compiled path in [`crate::plan`] materializes every
//! intermediate row as a `Vec<Value>` and dispatches on the `Value` enum per
//! cell. This module executes eligible plan shapes directly against the
//! typed column vectors of [`crate::database::Table`]:
//!
//! * **fused scan + filter** builds a selection vector of surviving row ids;
//!   comparison/BETWEEN/LIKE/IS NULL conjuncts against literals run as typed
//!   kernels (one storage dispatch per batch, not per cell), and zone maps
//!   skip whole [`crate::column::ZONE_ROWS`]-row batches that provably
//!   cannot match an equality or range predicate;
//! * **batch hash join** builds the hash table once from the right column
//!   (an integer-keyed map when the column has `Int` storage) and probes
//!   with raw column values; joined rows are *pairs of row ids*, never
//!   materialized tuples;
//! * **batch aggregation** groups by raw column values where possible and
//!   folds aggregates column-at-a-time (a hand-rolled kernel for `Int`
//!   storage, [`fold_aggregate`] on gathered values otherwise);
//! * **late materialization**: ORDER BY + LIMIT sorts (key, row-id) pairs
//!   and gathers output cells only for the rows that survive the limit.
//!
//! **Observational identity.** The vectorized path must be indistinguishable
//! from the interpreter: same rows, same order, same errors, and the same
//! deterministic work-unit totals per [`WorkOp`] (the VES efficiency metric
//! and the budget trip point both read them). Two facts make bulk charging
//! sound: compiled non-aggregate expression evaluation is infallible (arity
//! is validated at compile time, arithmetic edge cases yield NULL), and the
//! only charge inside expression evaluation is the per-group-row unit of an
//! argful aggregate. So per-op totals equal to the row path's imply the
//! same success value and the same failure (`ResourceExhausted` depends
//! only on the budget). Aggregates are pre-folded into [`CExpr::Pre`]
//! slots only when every argful aggregate sits in a *strict* position —
//! evaluated exactly once whenever its containing expression is evaluated —
//! so the bulk `group-len × occurrences` charge reproduces the
//! interpreter's per-row charges exactly. Anything else (short-circuited
//! aggregates, CASE operands, nested joins, subquery fallbacks) declines
//! vectorization at compile time and runs on the row path unchanged.

use crate::column::{ColumnData, Zones, ZONE_ROWS};
use crate::database::{Database, Table};
use crate::error::ExecResult;
use crate::eval::{fold_aggregate, like_match, Counters, WorkOp};
use crate::plan::{
    ceval, scan_table, CExpr, CItem, CJoinStep, COrderKey, CompiledCore, RowView,
};
use crate::result::ResultSet;
use crate::value::{row_key_parts, KeyPart, Value};
use sqlkit::ast::{AggFunc, BinOp, JoinKind};
use std::collections::{HashMap, HashSet};

/// Sentinel row id for the right side of an unmatched LEFT join: the row
/// view reads NULL for every column of that table.
const SENT: u32 = u32::MAX;

/// Raw-`i64` hash map over the engine's trusted-key hasher (see
/// [`crate::value::KeyHasher`]): bucket placement is the only thing the
/// hasher decides, so the cheap multiplicative hash is unobservable.
type IntMap<V> = HashMap<i64, V, crate::value::KeyHashBuilder>;

// ---------------------------------------------------------------------------
// compiled vectorized plan
// ---------------------------------------------------------------------------

/// The vectorized execution plan for one eligible [`CompiledCore`]. Built
/// once at compile time by [`lower`]; holds only shape, never data.
#[derive(Debug, Clone)]
pub(crate) struct VecCore {
    /// Typed filter kernels over base-table columns (from pushed conjuncts).
    kernels: Vec<Kernel>,
    /// Pushed conjuncts that did not kernelize; evaluated per base row.
    residual: Vec<CExpr>,
    /// At most one hash equi-join (larger chains run on the row path).
    join: Option<VJoin>,
    /// Aggregation plan with pre-fold slots, when the core aggregates.
    agg: Option<AggPlan>,
}

#[derive(Debug, Clone)]
struct VJoin {
    kind: JoinKind,
    /// Key offset in the base row.
    lcol: usize,
    /// Key offset in the right table's row.
    rcol: usize,
}

/// Comparison kernels recognize `col <op> literal` conjuncts (either
/// operand order) plus BETWEEN / LIKE / IS NULL on a bare column.
#[derive(Debug, Clone)]
enum Kernel {
    Cmp { col: usize, op: CmpOp, lit: Value },
    Between { col: usize, lo: Value, hi: Value, negated: bool },
    IsNull { col: usize, negated: bool },
    Like { col: usize, pattern: String, negated: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Aggregation with HAVING / projection / order keys rewritten so every
/// aggregate occurrence reads a pre-folded [`CExpr::Pre`] slot. Each
/// section numbers its own slots.
#[derive(Debug, Clone)]
struct AggPlan {
    having: Option<CExpr>,
    having_specs: Vec<AggSpec>,
    items: Vec<CItem>,
    item_specs: Vec<AggSpec>,
    okeys: Vec<COrderKey>,
    okey_specs: Vec<AggSpec>,
}

/// One pre-folded aggregate occurrence.
#[derive(Debug, Clone)]
enum AggSpec {
    /// `COUNT(*)`: group length, charges nothing.
    CountStar,
    /// An argful aggregate: charges one Group unit per group row, exactly
    /// like the interpreter's per-row evaluation.
    Fold { func: AggFunc, distinct: bool, arg: CExpr },
}

fn argful(specs: &[AggSpec]) -> u64 {
    specs.iter().filter(|s| matches!(s, AggSpec::Fold { .. })).count() as u64
}

// ---------------------------------------------------------------------------
// lowering (compile time)
// ---------------------------------------------------------------------------

/// Lower an eligible core to a vectorized plan, or `None` when any part of
/// the shape would break observational identity (the row path runs it).
pub(crate) fn lower(core: &CompiledCore) -> Option<VecCore> {
    core.base.as_ref()?;
    let join = match core.joins.len() {
        0 => None,
        1 => match &core.joins[0].0 {
            CJoinStep::Hash { kind, lcol, rcol } => {
                Some(VJoin { kind: *kind, lcol: *lcol, rcol: *rcol })
            }
            CJoinStep::Nested { .. } => return None,
        },
        _ => return None,
    };
    // WHERE and GROUP BY compile with aggregates rejected, but the charge
    // argument depends on it — decline rather than assume
    if core.pushed.iter().any(contains_agg)
        || core.where_rest.iter().any(contains_agg)
        || core.group_by.iter().any(contains_agg)
    {
        return None;
    }
    let mut kernels = Vec::new();
    let mut residual = Vec::new();
    for p in &core.pushed {
        match kernelize(p) {
            Some(k) => kernels.push(k),
            None => residual.push(p.clone()),
        }
    }
    let agg = if core.agg_mode { Some(lower_agg(core)?) } else { None };
    Some(VecCore { kernels, residual, join, agg })
}

fn lower_agg(core: &CompiledCore) -> Option<AggPlan> {
    let mut having_specs = Vec::new();
    let having = match &core.having {
        None => None,
        Some(h) => Some(strip_aggs(h, true, &mut having_specs)?),
    };
    let mut item_specs = Vec::new();
    let mut items = Vec::with_capacity(core.items.len());
    for it in &core.items {
        items.push(match it {
            CItem::Range(s, e) => CItem::Range(*s, *e),
            CItem::Expr(e) => CItem::Expr(strip_aggs(e, true, &mut item_specs)?),
        });
    }
    let mut okey_specs = Vec::new();
    let mut okeys = Vec::with_capacity(core.order_keys.len());
    for k in &core.order_keys {
        okeys.push(match k {
            COrderKey::Projected(i) => COrderKey::Projected(*i),
            COrderKey::Expr(e) => COrderKey::Expr(strip_aggs(e, true, &mut okey_specs)?),
        });
    }
    Some(AggPlan { having, having_specs, items, item_specs, okeys, okey_specs })
}

/// Replace aggregate occurrences with [`CExpr::Pre`] slots. `strict` means
/// this position is evaluated exactly once whenever the whole expression
/// is evaluated — the condition under which a bulk per-group charge equals
/// the interpreter's per-evaluation charge. An argful aggregate in a
/// non-strict position (short-circuited operand, CASE branch, IN-list
/// item …) returns `None`: its charges are data-dependent and cannot be
/// bulk-reproduced. `COUNT(*)` charges nothing and is pure, so it
/// substitutes anywhere.
fn strip_aggs(e: &CExpr, strict: bool, specs: &mut Vec<AggSpec>) -> Option<CExpr> {
    let b = |e: Option<CExpr>| e.map(Box::new);
    Some(match e {
        CExpr::Lit(v) => CExpr::Lit(v.clone()),
        CExpr::Col(i) => CExpr::Col(*i),
        CExpr::Pre(i) => CExpr::Pre(*i),
        CExpr::AggCountStar => {
            specs.push(AggSpec::CountStar);
            CExpr::Pre(specs.len() - 1)
        }
        CExpr::Agg { func, distinct, arg } => {
            if !strict || contains_agg(arg) {
                return None;
            }
            specs.push(AggSpec::Fold {
                func: *func,
                distinct: *distinct,
                arg: (**arg).clone(),
            });
            CExpr::Pre(specs.len() - 1)
        }
        CExpr::Func { kind, name, args } => {
            use crate::plan::FnKind;
            let mut out = Vec::with_capacity(args.len());
            for (i, a) in args.iter().enumerate() {
                let child_strict = match kind {
                    FnKind::Strict => strict,
                    // IIF picks one branch, COALESCE stops at the first
                    // non-NULL: only the first argument always evaluates
                    FnKind::Iif | FnKind::Coalesce => strict && i == 0,
                };
                out.push(strip_aggs(a, child_strict, specs)?);
            }
            CExpr::Func { kind: *kind, name: name.clone(), args: out }
        }
        CExpr::Binary { op, left, right } => {
            let right_strict = match op {
                BinOp::And | BinOp::Or => false, // short-circuit
                _ => strict,
            };
            CExpr::Binary {
                op: *op,
                left: Box::new(strip_aggs(left, strict, specs)?),
                right: Box::new(strip_aggs(right, right_strict, specs)?),
            }
        }
        CExpr::Unary { op, expr } => CExpr::Unary {
            op: *op,
            expr: Box::new(strip_aggs(expr, strict, specs)?),
        },
        CExpr::Between { expr, negated, low, high } => CExpr::Between {
            expr: Box::new(strip_aggs(expr, strict, specs)?),
            negated: *negated,
            low: Box::new(strip_aggs(low, strict, specs)?),
            high: Box::new(strip_aggs(high, strict, specs)?),
        },
        CExpr::InList { expr, negated, list } => {
            let mut out = Vec::with_capacity(list.len());
            for item in list {
                // the list scan stops at the first match
                out.push(strip_aggs(item, false, specs)?);
            }
            CExpr::InList {
                expr: Box::new(strip_aggs(expr, strict, specs)?),
                negated: *negated,
                list: out,
            }
        }
        CExpr::Like { expr, negated, pattern } => CExpr::Like {
            expr: Box::new(strip_aggs(expr, strict, specs)?),
            negated: *negated,
            pattern: Box::new(strip_aggs(pattern, strict, specs)?),
        },
        CExpr::IsNull { expr, negated } => CExpr::IsNull {
            expr: Box::new(strip_aggs(expr, strict, specs)?),
            negated: *negated,
        },
        CExpr::Case { operand, branches, else_expr } => {
            // the operand re-evaluates once per branch until a hit — not
            // exactly-once, so aggregates inside it must decline
            let operand = match operand {
                None => None,
                Some(o) => Some(strip_aggs(o, false, specs)?),
            };
            let mut out = Vec::with_capacity(branches.len());
            for (i, (when, then)) in branches.iter().enumerate() {
                // only the first WHEN is guaranteed to evaluate
                let w = strip_aggs(when, strict && i == 0, specs)?;
                let t = strip_aggs(then, false, specs)?;
                out.push((w, t));
            }
            let else_expr = match else_expr {
                None => None,
                Some(e) => Some(strip_aggs(e, false, specs)?),
            };
            CExpr::Case { operand: b(operand), branches: out, else_expr: b(else_expr) }
        }
        CExpr::Cast { expr, ty } => CExpr::Cast {
            expr: Box::new(strip_aggs(expr, strict, specs)?),
            ty: ty.clone(),
        },
    })
}

fn contains_agg(e: &CExpr) -> bool {
    match e {
        CExpr::Lit(_) | CExpr::Col(_) | CExpr::Pre(_) => false,
        CExpr::AggCountStar | CExpr::Agg { .. } => true,
        CExpr::Func { args, .. } => args.iter().any(contains_agg),
        CExpr::Binary { left, right, .. } => contains_agg(left) || contains_agg(right),
        CExpr::Unary { expr, .. } | CExpr::IsNull { expr, .. } | CExpr::Cast { expr, .. } => {
            contains_agg(expr)
        }
        CExpr::Between { expr, low, high, .. } => {
            contains_agg(expr) || contains_agg(low) || contains_agg(high)
        }
        CExpr::InList { expr, list, .. } => contains_agg(expr) || list.iter().any(contains_agg),
        CExpr::Like { expr, pattern, .. } => contains_agg(expr) || contains_agg(pattern),
        CExpr::Case { operand, branches, else_expr } => {
            operand.as_deref().map(contains_agg).unwrap_or(false)
                || branches.iter().any(|(w, t)| contains_agg(w) || contains_agg(t))
                || else_expr.as_deref().map(contains_agg).unwrap_or(false)
        }
    }
}

fn kernelize(e: &CExpr) -> Option<Kernel> {
    let cmp_op = |op: &BinOp| match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::NotEq => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::LtEq => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::GtEq => Some(CmpOp::Ge),
        _ => None,
    };
    match e {
        CExpr::Binary { op, left, right } => {
            let op = cmp_op(op)?;
            match (left.as_ref(), right.as_ref()) {
                (CExpr::Col(c), CExpr::Lit(v)) if !v.is_null() => {
                    Some(Kernel::Cmp { col: *c, op, lit: v.clone() })
                }
                (CExpr::Lit(v), CExpr::Col(c)) if !v.is_null() => {
                    let flipped = match op {
                        CmpOp::Eq => CmpOp::Eq,
                        CmpOp::Ne => CmpOp::Ne,
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                    };
                    Some(Kernel::Cmp { col: *c, op: flipped, lit: v.clone() })
                }
                _ => None,
            }
        }
        CExpr::Between { expr, negated, low, high } => {
            match (expr.as_ref(), low.as_ref(), high.as_ref()) {
                (CExpr::Col(c), CExpr::Lit(lo), CExpr::Lit(hi))
                    if !lo.is_null() && !hi.is_null() =>
                {
                    Some(Kernel::Between {
                        col: *c,
                        lo: lo.clone(),
                        hi: hi.clone(),
                        negated: *negated,
                    })
                }
                _ => None,
            }
        }
        CExpr::IsNull { expr, negated } => match expr.as_ref() {
            CExpr::Col(c) => Some(Kernel::IsNull { col: *c, negated: *negated }),
            _ => None,
        },
        CExpr::Like { expr, negated, pattern } => {
            match (expr.as_ref(), pattern.as_ref()) {
                (CExpr::Col(c), CExpr::Lit(p)) if !p.is_null() => Some(Kernel::Like {
                    col: *c,
                    pattern: p.render(),
                    negated: *negated,
                }),
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// filter kernels (execution time)
// ---------------------------------------------------------------------------

fn cmp_f64(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        _ => std::cmp::Ordering::Greater,
    })
}

fn ord_passes(op: CmpOp, o: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => o == Equal,
        CmpOp::Ne => o != Equal,
        CmpOp::Lt => o == Less,
        CmpOp::Le => o != Greater,
        CmpOp::Gt => o == Greater,
        CmpOp::Ge => o != Less,
    }
}

impl Kernel {
    /// Conservative zone test: `false` only when *no* row of the zone can
    /// pass. Literal cells compare through the same `as f64` projection the
    /// row comparison uses, which is monotone, so min/max bounds transfer.
    fn zone_may_match(&self, t: &Table, zi: usize) -> bool {
        let (col, numeric) = match self {
            Kernel::Cmp { col, lit, .. } => (*col, lit.as_f64()),
            Kernel::Between { col, negated: false, lo, hi } => {
                // range check below needs both bounds numeric
                match (lo.as_f64(), hi.as_f64()) {
                    (Some(_), Some(_)) => (*col, None),
                    _ => return true,
                }
            }
            Kernel::Like { col, .. } => (*col, None),
            // IS [NOT] NULL passes NULL cells; zones say nothing useful
            Kernel::IsNull { .. } => return true,
            Kernel::Between { .. } => return true, // negated: no pruning
        };
        // text literals compare by type rank, not magnitude — no pruning
        if matches!(self, Kernel::Cmp { lit: Value::Text(_), .. }) {
            return true;
        }
        let Some(zones) = t.column(col).zones() else { return true };
        let (zmin, zmax, any_valid) = match zones {
            Zones::Int(z) => {
                let z = &z[zi];
                (z.min as f64, z.max as f64, z.any_valid)
            }
            Zones::Real(z) => {
                let z = &z[zi];
                (z.min, z.max, z.any_valid)
            }
        };
        // NULL cells fail every kernel here; an all-NULL zone can't match
        if !any_valid {
            return false;
        }
        match self {
            Kernel::Cmp { op, .. } => {
                let Some(b) = numeric else { return true };
                match op {
                    CmpOp::Eq => !(b < zmin || b > zmax),
                    CmpOp::Lt => zmin < b,
                    CmpOp::Le => zmin <= b,
                    CmpOp::Gt => zmax > b,
                    CmpOp::Ge => zmax >= b,
                    CmpOp::Ne => true,
                }
            }
            Kernel::Between { negated: false, lo, hi, .. } => {
                let (lo, hi) = (lo.as_f64().unwrap(), hi.as_f64().unwrap());
                !(zmax < lo || zmin > hi)
            }
            _ => true,
        }
    }

    /// Drop candidate row ids that fail this kernel. Typed fast paths pick
    /// the storage/literal combination once per batch; everything else goes
    /// through cell-level [`Value`] comparison with identical semantics.
    fn filter(&self, t: &Table, cand: &mut Vec<u32>) {
        match self {
            Kernel::Cmp { col, op, lit } => {
                let c = t.column(*col);
                let va = c.validity();
                match (c.data(), lit) {
                    (ColumnData::Int(d), Value::Int(b)) => {
                        cand.retain(|&i| {
                            let i = i as usize;
                            va.get(i) && ord_passes(*op, d[i].cmp(b))
                        });
                    }
                    (ColumnData::Int(d), Value::Real(b)) => {
                        cand.retain(|&i| {
                            let i = i as usize;
                            va.get(i) && ord_passes(*op, cmp_f64(d[i] as f64, *b))
                        });
                    }
                    (ColumnData::Real(d), _) if lit.as_f64().is_some() => {
                        let b = lit.as_f64().unwrap();
                        cand.retain(|&i| {
                            let i = i as usize;
                            va.get(i) && ord_passes(*op, cmp_f64(d[i], b))
                        });
                    }
                    (ColumnData::Text(d), Value::Text(b)) => {
                        cand.retain(|&i| {
                            let i = i as usize;
                            va.get(i) && ord_passes(*op, d[i].as_str().cmp(b.as_str()))
                        });
                    }
                    _ => {
                        cand.retain(|&i| {
                            c.get(i as usize)
                                .sql_ord(lit)
                                .map(|o| ord_passes(*op, o))
                                == Some(true)
                        });
                    }
                }
            }
            Kernel::Between { col, lo, hi, negated } => {
                let c = t.column(*col);
                // bounds are non-null, so for a non-null cell both sides of
                // the AND resolve and the result is total
                cand.retain(|&i| {
                    let v = c.get(i as usize);
                    match (v.sql_ord(lo), v.sql_ord(hi)) {
                        (Some(ge), Some(le)) => {
                            let inside = ge != std::cmp::Ordering::Less
                                && le != std::cmp::Ordering::Greater;
                            inside ^ negated
                        }
                        _ => false, // NULL cell: three-valued AND never true
                    }
                });
            }
            Kernel::IsNull { col, negated } => {
                let va = t.column(*col).validity();
                cand.retain(|&i| !va.get(i as usize) ^ negated);
            }
            Kernel::Like { col, pattern, negated } => {
                let c = t.column(*col);
                let va = c.validity();
                match c.data() {
                    ColumnData::Text(d) => {
                        cand.retain(|&i| {
                            let i = i as usize;
                            va.get(i) && (like_match(pattern, &d[i]) ^ negated)
                        });
                    }
                    _ => {
                        cand.retain(|&i| {
                            let v = c.get(i as usize);
                            !v.is_null() && (like_match(pattern, &v.render()) ^ negated)
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// relation of row ids
// ---------------------------------------------------------------------------

/// The joined/filtered relation as row-id vectors into the source tables —
/// rows materialize only when an expression actually reads them.
struct Rel<'a> {
    tables: Vec<&'a Table>,
    /// Flat-offset start of each table in the concatenated row.
    starts: Vec<usize>,
    /// Per table: one source row id per relation row ([`SENT`] = NULL pad).
    idx: Vec<Vec<u32>>,
    len: usize,
}

impl<'a> Rel<'a> {
    fn locate(&self, off: usize) -> (usize, usize) {
        let mut t = 0;
        while t + 1 < self.tables.len() && off >= self.starts[t + 1] {
            t += 1;
        }
        (t, off - self.starts[t])
    }

    fn cell(&self, row: usize, off: usize) -> Value {
        let (t, c) = self.locate(off);
        let ri = self.idx[t][row];
        if ri == SENT {
            return Value::Null;
        }
        self.tables[t].column(c).get(ri as usize)
    }

}

struct RelRow<'a, 'b> {
    rel: &'b Rel<'a>,
    row: usize,
}

impl RowView for RelRow<'_, '_> {
    fn cell(&self, i: usize) -> Value {
        self.rel.cell(self.row, i)
    }
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Build-side hash table keyed by raw `i64` when the right column has `Int`
/// storage; otherwise by the same [`KeyPart`] canonicalization the
/// interpreter uses, so match sets are identical.
enum JoinMap {
    Int(IntMap<Vec<u32>>),
    Gen(HashMap<KeyPart, Vec<u32>>),
}

impl JoinMap {
    fn build(rt: &Table, rcol: usize, counters: &Counters) -> ExecResult<Self> {
        let n = rt.n_rows();
        counters.charge(WorkOp::Join, n as u64)?;
        let c = rt.column(rcol);
        Ok(match c.data() {
            ColumnData::Int(d) => {
                let va = c.validity();
                let mut m: IntMap<Vec<u32>> =
                    IntMap::with_capacity_and_hasher(n, Default::default());
                for (i, &v) in d.iter().enumerate() {
                    if va.get(i) {
                        m.entry(v).or_default().push(i as u32);
                    }
                }
                JoinMap::Int(m)
            }
            _ => {
                let mut m: HashMap<KeyPart, Vec<u32>> = HashMap::with_capacity(n);
                for i in 0..n {
                    let v = c.get(i);
                    if !v.is_null() {
                        m.entry(v.key_part()).or_default().push(i as u32);
                    }
                }
                JoinMap::Gen(m)
            }
        })
    }

    /// Probe with a base-row key value (NULL never matches, as in the
    /// interpreter's build-side NULL skip + probe-side NULL check).
    fn probe(&self, key: &Value) -> &[u32] {
        if key.is_null() {
            return &[];
        }
        match (self, key.key_part()) {
            (JoinMap::Int(m), KeyPart::Num(a)) => m.get(&a).map(Vec::as_slice).unwrap_or(&[]),
            (JoinMap::Int(_), _) => &[], // non-integral key can't equal an Int cell
            (JoinMap::Gen(m), kp) => m.get(&kp).map(Vec::as_slice).unwrap_or(&[]),
        }
    }
}

// ---------------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------------

/// Execute a lowered core. Charges exactly the per-[`WorkOp`] totals of the
/// row-wise compiled path (itself parity-locked to the interpreter).
pub(crate) fn exec_core(
    db: &Database,
    core: &CompiledCore,
    v: &VecCore,
    counters: &Counters,
) -> ExecResult<ResultSet> {
    let base = core.base.as_ref().expect("vectorized core always has a base scan");
    let base_t = scan_table(db, base)?;
    let n_base = base_t.n_rows();
    counters.charge(WorkOp::Scan, n_base as u64)?;

    let rel = match &v.join {
        None => {
            let ids = if core.has_where {
                counters.charge(WorkOp::Filter, n_base as u64)?;
                select_base(base_t, &v.kernels, &v.residual, counters)?
            } else {
                (0..n_base as u32).collect()
            };
            let len = ids.len();
            Rel { tables: vec![base_t], starts: vec![0], idx: vec![ids], len }
        }
        Some(j) => {
            let scan = &core.joins[0].1;
            let rt = scan_table(db, scan)?;
            counters.charge(WorkOp::Scan, rt.n_rows() as u64)?;
            let map = JoinMap::build(rt, j.rcol, counters)?;
            let lc = base_t.column(j.lcol);
            let mut lids: Vec<u32> = Vec::new();
            let mut rids: Vec<u32> = Vec::new();
            if !core.pushed.is_empty() {
                // pushdown shape: probe/emit/WHERE charges cover every base
                // row (the row path prices phantom rows before filtering),
                // but only selected base rows materialize join pairs
                let sel = select_base(base_t, &v.kernels, &v.residual, counters)?;
                let mut sp = 0usize;
                let mut emits = 0u64;
                let mut filt = 0u64;
                for i in 0..n_base {
                    let matches = map.probe(&lc.get(i));
                    let m = matches.len() as u64;
                    emits += m;
                    let padded = matches.is_empty() && j.kind == JoinKind::Left;
                    filt += if padded { 1 } else { m };
                    let selected = sp < sel.len() && sel[sp] == i as u32;
                    if selected {
                        sp += 1;
                        if padded {
                            lids.push(i as u32);
                            rids.push(SENT);
                        } else {
                            for &ri in matches {
                                lids.push(i as u32);
                                rids.push(ri);
                            }
                        }
                    }
                }
                counters.charge(WorkOp::Join, n_base as u64 + emits)?;
                counters.charge(WorkOp::Filter, filt)?;
            } else {
                // general shape: probe + emit charges, then one WHERE unit
                // per joined row when a WHERE clause exists
                let mut emits = 0u64;
                for i in 0..n_base {
                    let matches = map.probe(&lc.get(i));
                    emits += matches.len() as u64;
                    if matches.is_empty() && j.kind == JoinKind::Left {
                        lids.push(i as u32);
                        rids.push(SENT);
                    } else {
                        for &ri in matches {
                            lids.push(i as u32);
                            rids.push(ri);
                        }
                    }
                }
                counters.charge(WorkOp::Join, n_base as u64 + emits)?;
                if core.has_where {
                    counters.charge(WorkOp::Filter, lids.len() as u64)?;
                }
            }
            let mut rel = Rel {
                tables: vec![base_t, rt],
                starts: vec![0, base.width],
                idx: vec![lids, rids],
                len: 0,
            };
            rel.len = rel.idx[0].len();
            if !core.where_rest.is_empty() {
                retain_rel(&mut rel, &core.where_rest, counters)?;
            }
            rel
        }
    };

    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    if let Some(agg) = &v.agg {
        exec_agg(core, agg, &rel, counters, &mut keyed)?;
    } else {
        counters.charge(WorkOp::Project, rel.len as u64)?;
        return exec_project(core, &rel, counters);
    }

    finish(core, keyed)
}

/// Fused scan + filter: zone-pruned kernel passes build the selection
/// vector; residual conjuncts evaluate per surviving row. All of this is
/// charge-free (the per-row WHERE units are bulk-charged by the caller) and
/// infallible, so kernel order is unobservable.
fn select_base(
    t: &Table,
    kernels: &[Kernel],
    residual: &[CExpr],
    counters: &Counters,
) -> ExecResult<Vec<u32>> {
    let n = t.n_rows();
    let mut sel: Vec<u32> = Vec::new();
    let mut zs = 0usize;
    let mut zi = 0usize;
    while zs < n {
        let ze = (zs + ZONE_ROWS).min(n);
        if kernels.iter().all(|k| k.zone_may_match(t, zi)) {
            let mut cand: Vec<u32> = (zs as u32..ze as u32).collect();
            for k in kernels {
                if cand.is_empty() {
                    break;
                }
                k.filter(t, &mut cand);
            }
            if !residual.is_empty() && !cand.is_empty() {
                let mut keep = Vec::with_capacity(cand.len());
                for &i in &cand {
                    let view = TableRow { t, row: i as usize };
                    if pass_all_view(counters, &view, residual)? {
                        keep.push(i);
                    }
                }
                cand = keep;
            }
            sel.extend(cand);
        }
        zs = ze;
        zi += 1;
    }
    Ok(sel)
}

struct TableRow<'a> {
    t: &'a Table,
    row: usize,
}

impl RowView for TableRow<'_> {
    fn cell(&self, i: usize) -> Value {
        self.t.column(i).get(self.row)
    }
}

fn pass_all_view<R: RowView + ?Sized>(
    counters: &Counters,
    row: &R,
    preds: &[CExpr],
) -> ExecResult<bool> {
    for p in preds {
        if ceval(counters, row, None, &[], p)?.truth() != Some(true) {
            return Ok(false);
        }
    }
    Ok(true)
}

fn retain_rel(rel: &mut Rel<'_>, preds: &[CExpr], counters: &Counters) -> ExecResult<()> {
    let mut keep: Vec<usize> = Vec::with_capacity(rel.len);
    for row in 0..rel.len {
        if pass_all_view(counters, &RelRow { rel, row }, preds)? {
            keep.push(row);
        }
    }
    if keep.len() != rel.len {
        for col in &mut rel.idx {
            let mut out = Vec::with_capacity(keep.len());
            for &r in &keep {
                out.push(col[r]);
            }
            *col = out;
        }
        rel.len = keep.len();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

fn exec_agg(
    core: &CompiledCore,
    agg: &AggPlan,
    rel: &Rel<'_>,
    counters: &Counters,
    keyed: &mut Vec<(Vec<Value>, Vec<Value>)>,
) -> ExecResult<()> {
    // group rows by key, first-encounter order
    let mut groups: Vec<Vec<u32>> = Vec::new();
    if core.group_by.is_empty() {
        groups.push((0..rel.len as u32).collect());
    } else {
        counters.charge(WorkOp::Group, rel.len as u64)?;
        if !group_by_int_column(core, rel, &mut groups) {
            let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
            for row in 0..rel.len {
                let view = RelRow { rel, row };
                let mut key = Vec::with_capacity(core.group_by.len());
                for g in &core.group_by {
                    key.push(ceval(counters, &view, None, &[], g)?.key_part());
                }
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(row as u32);
            }
        }
    }

    for group in &groups {
        counters.charge(WorkOp::Group, 1)?;
        let glen = group.len() as u64;
        // Lazy head: non-aggregate column references read straight from the
        // columns of the group's first row instead of materializing the full
        // joined row (most aggregate queries touch one or two grouped
        // columns out of a wide relation).
        let head = GroupHead { rel, row: group.first().map(|&r| r as usize) };
        if let Some(having) = &agg.having {
            counters.charge(WorkOp::Group, glen * argful(&agg.having_specs))?;
            let pre = fold_specs(rel, group, &agg.having_specs, counters)?;
            if ceval(counters, &head, None, &pre, having)?.truth() != Some(true) {
                continue;
            }
        }
        counters
            .charge(WorkOp::Group, glen * (argful(&agg.item_specs) + argful(&agg.okey_specs)))?;
        let pre_i = fold_specs(rel, group, &agg.item_specs, counters)?;
        let mut out = Vec::with_capacity(agg.items.len());
        for item in &agg.items {
            match item {
                CItem::Range(s, e) => out.extend((*s..*e).map(|off| head.cell(off))),
                CItem::Expr(e) => out.push(ceval(counters, &head, None, &pre_i, e)?),
            }
        }
        let pre_o = fold_specs(rel, group, &agg.okey_specs, counters)?;
        let mut keys = Vec::with_capacity(agg.okeys.len());
        for k in &agg.okeys {
            keys.push(match k {
                COrderKey::Projected(idx) => out[*idx].clone(),
                COrderKey::Expr(e) => ceval(counters, &head, None, &pre_o, e)?,
            });
        }
        keyed.push((keys, out));
    }
    Ok(())
}

/// Row view over a group's first row; an empty group (global aggregate over
/// an empty relation) reads NULL for every column, matching the
/// all-NULL head row the row-wise path synthesizes.
struct GroupHead<'r, 'a> {
    rel: &'r Rel<'a>,
    row: Option<usize>,
}

impl RowView for GroupHead<'_, '_> {
    fn cell(&self, i: usize) -> Value {
        match self.row {
            Some(r) => self.rel.cell(r, i),
            None => Value::Null,
        }
    }
}

/// Fast grouping for a single bare-column key over `Int` storage: hash raw
/// `i64`s, with a dedicated NULL group (all NULLs group together, matching
/// [`KeyPart::Null`]).
fn group_by_int_column(core: &CompiledCore, rel: &Rel<'_>, groups: &mut Vec<Vec<u32>>) -> bool {
    let [CExpr::Col(off)] = core.group_by.as_slice() else { return false };
    let (t, c) = rel.locate(*off);
    let col = rel.tables[t].column(c);
    let ColumnData::Int(d) = col.data() else { return false };
    let va = col.validity();
    let ids = &rel.idx[t];
    let mut index: IntMap<usize> = IntMap::default();
    let mut null_g: Option<usize> = None;
    for (row, &ri) in ids.iter().enumerate().take(rel.len) {
        let gi = if ri == SENT || !va.get(ri as usize) {
            *null_g.get_or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            })
        } else {
            *index.entry(d[ri as usize]).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            })
        };
        groups[gi].push(row as u32);
    }
    true
}

/// Fold each pre-slot aggregate over the group's rows. Values gather in row
/// order (float summation order is observable); NULL arguments are skipped
/// exactly as the interpreter's per-row accumulation does.
fn fold_specs(
    rel: &Rel<'_>,
    group: &[u32],
    specs: &[AggSpec],
    counters: &Counters,
) -> ExecResult<Vec<Value>> {
    let mut out = Vec::with_capacity(specs.len());
    for s in specs {
        match s {
            AggSpec::CountStar => out.push(Value::Int(group.len() as i64)),
            AggSpec::Fold { func, distinct, arg } => {
                if !*distinct {
                    if let CExpr::Col(off) = arg {
                        if let Some(v) = fold_int_col(rel, group, *off, *func) {
                            out.push(v);
                            continue;
                        }
                    }
                }
                let mut vals = Vec::with_capacity(group.len());
                for &row in group {
                    let v = ceval(counters, &RelRow { rel, row: row as usize }, None, &[], arg)?;
                    if !v.is_null() {
                        vals.push(v);
                    }
                }
                out.push(fold_aggregate(*func, vals, *distinct));
            }
        }
    }
    Ok(out)
}

/// Column-at-a-time fold for a bare `Int`-storage column: no `Value`
/// allocation per cell. Semantics mirror [`fold_aggregate`] over all-`Int`
/// inputs: empty → NULL (except COUNT), SUM does checked `i64` addition and
/// degrades to an in-order `f64` sum on overflow.
fn fold_int_col(rel: &Rel<'_>, group: &[u32], off: usize, func: AggFunc) -> Option<Value> {
    let (t, c) = rel.locate(off);
    let col = rel.tables[t].column(c);
    let ColumnData::Int(d) = col.data() else { return None };
    let va = col.validity();
    let ids = &rel.idx[t];
    let valid = |row: u32| -> Option<i64> {
        let ri = ids[row as usize];
        if ri == SENT || !va.get(ri as usize) {
            None
        } else {
            Some(d[ri as usize])
        }
    };
    Some(match func {
        AggFunc::Count => Value::Int(group.iter().filter(|&&r| valid(r).is_some()).count() as i64),
        AggFunc::Min => match group.iter().filter_map(|&r| valid(r)).min() {
            Some(v) => Value::Int(v),
            None => Value::Null,
        },
        AggFunc::Max => match group.iter().filter_map(|&r| valid(r)).max() {
            Some(v) => Value::Int(v),
            None => Value::Null,
        },
        AggFunc::Sum => {
            let mut any = false;
            let mut acc: i64 = 0;
            let mut overflow = false;
            for &r in group {
                let Some(v) = valid(r) else { continue };
                any = true;
                match acc.checked_add(v) {
                    Some(s) => acc = s,
                    None => {
                        overflow = true;
                        break;
                    }
                }
            }
            if !any {
                Value::Null
            } else if !overflow {
                Value::Int(acc)
            } else {
                let sum: f64 = group.iter().filter_map(|&r| valid(r)).map(|v| v as f64).sum();
                Value::Real(sum)
            }
        }
        AggFunc::Avg => {
            let mut n = 0u64;
            let mut sum = 0f64;
            for &r in group {
                if let Some(v) = valid(r) {
                    n += 1;
                    sum += v as f64;
                }
            }
            if n == 0 {
                Value::Null
            } else {
                Value::Real(sum / n as f64)
            }
        }
    })
}

// ---------------------------------------------------------------------------
// projection (non-aggregate) with late materialization
// ---------------------------------------------------------------------------

fn exec_project(
    core: &CompiledCore,
    rel: &Rel<'_>,
    counters: &Counters,
) -> ExecResult<ResultSet> {
    let project = |row: usize| -> ExecResult<Vec<Value>> {
        let view = RelRow { rel, row };
        let mut out = Vec::with_capacity(core.items.len());
        for item in &core.items {
            match item {
                CItem::Range(s, e) => {
                    for off in *s..*e {
                        out.push(rel.cell(row, off));
                    }
                }
                CItem::Expr(e) => out.push(ceval(counters, &view, None, &[], e)?),
            }
        }
        Ok(out)
    };

    if core.distinct {
        // DISTINCT needs every projected row up front; no late win here
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(rel.len);
        let mut seen = HashSet::new();
        for row in 0..rel.len {
            let out = project(row)?;
            if !seen.insert(row_key_parts(&out)) {
                continue;
            }
            let keys = order_keys_for(core, rel, row, &out, counters)?;
            keyed.push((keys, out));
        }
        return finish(core, keyed);
    }

    if !core.order_keys.is_empty() {
        // sort (keys, row-id), apply the limit, then materialize only the
        // surviving window
        let mut keyed: Vec<(Vec<Value>, usize)> = Vec::with_capacity(rel.len);
        for row in 0..rel.len {
            let mut keys = Vec::with_capacity(core.order_keys.len());
            for k in &core.order_keys {
                keys.push(match k {
                    COrderKey::Projected(idx) => projected_pos_value(core, rel, row, *idx, counters)?,
                    COrderKey::Expr(e) => {
                        ceval(counters, &RelRow { rel, row }, None, &[], e)?
                    }
                });
            }
            keyed.push((keys, row));
        }
        crate::exec::sort_keyed(&mut keyed, &core.order_desc);
        let mut ids: Vec<usize> = keyed.into_iter().map(|(_, r)| r).collect();
        if let Some(limit) = core.limit {
            ids = crate::exec::apply_limit(ids, limit);
        }
        let mut rows = Vec::with_capacity(ids.len());
        for row in ids {
            rows.push(project(row)?);
        }
        return Ok(ResultSet {
            columns: core.columns.clone(),
            rows,
            ordered: true,
            work: 0,
        });
    }

    let mut ids: Vec<usize> = (0..rel.len).collect();
    if let Some(limit) = core.limit {
        ids = crate::exec::apply_limit(ids, limit);
    }
    let mut rows = Vec::with_capacity(ids.len());
    for row in ids {
        rows.push(project(row)?);
    }
    Ok(ResultSet { columns: core.columns.clone(), rows, ordered: false, work: 0 })
}

fn order_keys_for(
    core: &CompiledCore,
    rel: &Rel<'_>,
    row: usize,
    projected: &[Value],
    counters: &Counters,
) -> ExecResult<Vec<Value>> {
    let mut keys = Vec::with_capacity(core.order_keys.len());
    for k in &core.order_keys {
        keys.push(match k {
            COrderKey::Projected(idx) => projected[*idx].clone(),
            COrderKey::Expr(e) => ceval(counters, &RelRow { rel, row }, None, &[], e)?,
        });
    }
    Ok(keys)
}

/// Value at flattened projected position `idx` without materializing the
/// whole projected row (alias order keys resolve against the projected row
/// in the row path; this reproduces that lookup cell-by-cell).
fn projected_pos_value(
    core: &CompiledCore,
    rel: &Rel<'_>,
    row: usize,
    idx: usize,
    counters: &Counters,
) -> ExecResult<Value> {
    let mut acc = 0usize;
    for item in &core.items {
        match item {
            CItem::Range(s, e) => {
                let w = e - s;
                if idx < acc + w {
                    return Ok(rel.cell(row, s + (idx - acc)));
                }
                acc += w;
            }
            CItem::Expr(e) => {
                if idx == acc {
                    return ceval(counters, &RelRow { rel, row }, None, &[], e);
                }
                acc += 1;
            }
        }
    }
    unreachable!("projected order-key index {idx} out of range");
}

/// DISTINCT / sort / limit tail shared with the aggregate path — identical
/// to the row path's ending.
fn finish(core: &CompiledCore, mut keyed: Vec<(Vec<Value>, Vec<Value>)>) -> ExecResult<ResultSet> {
    if core.distinct {
        let mut seen = HashSet::new();
        keyed.retain(|(_, row)| seen.insert(row_key_parts(row)));
    }
    if !core.order_keys.is_empty() {
        crate::exec::sort_keyed(&mut keyed, &core.order_desc);
    }
    let mut rows: Vec<Vec<Value>> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = core.limit {
        rows = crate::exec::apply_limit(rows, limit);
    }
    Ok(ResultSet {
        columns: core.columns.clone(),
        rows,
        ordered: !core.order_keys.is_empty(),
        work: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TableBuilder;
    use crate::plan::compile;
    use crate::Database;

    fn db() -> Database {
        let mut db = Database::new("v");
        let mut people = TableBuilder::new("people")
            .column_int("id")
            .column_text("name")
            .column_int("dept")
            .column_int("score");
        for i in 0..600i64 {
            let score = if i % 7 == 0 { Value::Null } else { Value::Int(i % 97) };
            people = people.row(vec![
                Value::Int(i),
                Value::text(format!("p{i}")),
                Value::Int(i % 5),
                score,
            ]);
        }
        db.add_table(people.build()).unwrap();
        let mut depts = TableBuilder::new("depts").column_int("dno").column_text("dname");
        for d in 0..4i64 {
            depts = depts.row(vec![Value::Int(d), Value::text(format!("d{d}"))]);
        }
        db.add_table(depts.build()).unwrap();
        db
    }

    fn assert_vec_parity(sql: &str) {
        let db = db();
        let q = sqlkit::parse_query(sql).expect("parse");
        let plan = compile(&db, &q).expect("compiles");
        let vec_rs = plan.execute(&db).expect("vectorized");
        let row_rs = plan.execute_rowwise(&db).expect("rowwise");
        let int_rs = crate::exec::execute(&db, &q).expect("interpreter");
        assert_eq!(vec_rs.columns, row_rs.columns);
        assert_eq!(format!("{:?}", vec_rs.rows), format!("{:?}", row_rs.rows), "{sql}");
        assert_eq!(format!("{:?}", vec_rs.rows), format!("{:?}", int_rs.rows), "{sql}");
        assert_eq!(vec_rs.work, row_rs.work, "work parity vs rowwise: {sql}");
        assert_eq!(vec_rs.work, int_rs.work, "work parity vs interpreter: {sql}");
        assert_eq!(vec_rs.ordered, int_rs.ordered);
    }

    #[test]
    fn filter_scan_parity() {
        assert_vec_parity("SELECT name FROM people WHERE score > 40");
        assert_vec_parity("SELECT name FROM people WHERE score > 40 AND id < 300");
        assert_vec_parity("SELECT name FROM people WHERE score BETWEEN 10 AND 20");
        assert_vec_parity("SELECT name FROM people WHERE score NOT BETWEEN 10 AND 90");
        assert_vec_parity("SELECT id FROM people WHERE score IS NULL");
        assert_vec_parity("SELECT id FROM people WHERE name LIKE 'p1%'");
        assert_vec_parity("SELECT id FROM people WHERE 50 < id");
        assert_vec_parity("SELECT id FROM people WHERE id % 10 = 3");
    }

    #[test]
    fn join_parity() {
        assert_vec_parity(
            "SELECT name, dname FROM people JOIN depts ON people.dept = depts.dno WHERE score > 50",
        );
        assert_vec_parity(
            "SELECT name, dname FROM people LEFT JOIN depts ON people.dept = depts.dno",
        );
        assert_vec_parity(
            "SELECT name, dname FROM people LEFT JOIN depts ON people.dept = depts.dno WHERE id < 100",
        );
        assert_vec_parity(
            "SELECT name FROM people JOIN depts ON people.dept = depts.dno WHERE dname = 'd1'",
        );
    }

    #[test]
    fn aggregate_parity() {
        assert_vec_parity("SELECT dept, COUNT(*), SUM(score) FROM people GROUP BY dept");
        assert_vec_parity(
            "SELECT dept, AVG(score) FROM people GROUP BY dept HAVING COUNT(*) > 100",
        );
        assert_vec_parity("SELECT MIN(score), MAX(score), COUNT(score) FROM people");
        assert_vec_parity("SELECT COUNT(*) FROM people WHERE score IS NULL");
        assert_vec_parity(
            "SELECT name, SUM(score) FROM people GROUP BY name ORDER BY SUM(score) DESC LIMIT 5",
        );
        assert_vec_parity("SELECT dept, COUNT(DISTINCT score) FROM people GROUP BY dept");
        assert_vec_parity("SELECT SUM(score) FROM people WHERE id > 1000");
    }

    #[test]
    fn order_and_set_parity() {
        assert_vec_parity("SELECT name, score FROM people ORDER BY score DESC, name LIMIT 7");
        assert_vec_parity("SELECT id AS x FROM people ORDER BY x DESC LIMIT 3");
        assert_vec_parity("SELECT DISTINCT dept FROM people ORDER BY dept");
        assert_vec_parity(
            "SELECT id FROM people WHERE score > 90 UNION SELECT dno FROM depts ORDER BY id",
        );
        assert_vec_parity("SELECT id FROM people WHERE id < 5 LIMIT 2");
    }

    #[test]
    fn budget_trips_identically() {
        let db = db();
        let q = sqlkit::parse_query(
            "SELECT dept, SUM(score) FROM people GROUP BY dept",
        )
        .unwrap();
        let plan = compile(&db, &q).unwrap();
        let full = plan.execute(&db).unwrap().work;
        // one unit short of the total must trip both paths with the same error
        let ve = plan.execute_with_budget(&db, full - 1).unwrap_err();
        let ie = crate::exec::execute_with_budget(&db, &q, full - 1).unwrap_err();
        assert_eq!(ve.to_string(), ie.to_string());
        // and exactly the total succeeds
        assert_eq!(plan.execute_with_budget(&db, full).unwrap().work, full);
    }

    #[test]
    fn strictness_declines_conditional_aggregates() {
        // an argful aggregate on the lazy side of AND has data-dependent
        // charges: the shape must not vectorize (it still runs, via the
        // row path, with identical results)
        let db = db();
        let q = sqlkit::parse_query(
            "SELECT dept FROM people GROUP BY dept HAVING COUNT(*) > 100 AND SUM(score) > 0",
        )
        .unwrap();
        let plan = compile(&db, &q).unwrap();
        let a = plan.execute(&db).unwrap();
        let b = crate::exec::execute(&db, &q).unwrap();
        assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows));
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn zone_pruning_skips_batches() {
        // monotone ids: an equality probe touches exactly one zone; the
        // result must still be identical to the unpruned paths
        assert_vec_parity("SELECT name FROM people WHERE id = 431");
        assert_vec_parity("SELECT name FROM people WHERE id > 590");
        assert_vec_parity("SELECT COUNT(*) FROM people WHERE id <= 3");
        assert_vec_parity("SELECT name FROM people WHERE id = -1");
    }

    #[test]
    fn null_heavy_and_empty_tables() {
        let mut db = Database::new("edge");
        let mut t = TableBuilder::new("t").column_int("a").column_int("b");
        for i in 0..300i64 {
            t = t.row(vec![Value::Null, Value::Int(i)]);
        }
        db.add_table(t.build()).unwrap();
        db.add_table(TableBuilder::new("e").column_int("x").build()).unwrap();
        for sql in [
            "SELECT COUNT(a), COUNT(*), SUM(a) FROM t",
            "SELECT b FROM t WHERE a = 5",
            "SELECT a, COUNT(*) FROM t GROUP BY a",
            "SELECT SUM(x), COUNT(*) FROM e",
            "SELECT x FROM e WHERE x > 0",
        ] {
            let q = sqlkit::parse_query(sql).unwrap();
            let plan = compile(&db, &q).unwrap();
            let a = plan.execute(&db).unwrap();
            let b = crate::exec::execute(&db, &q).unwrap();
            assert_eq!(format!("{:?}", a.rows), format!("{:?}", b.rows), "{sql}");
            assert_eq!(a.work, b.work, "{sql}");
        }
    }
}
