//! Database catalog and storage.

use crate::error::{ExecError, ExecResult};
use crate::result::ResultSet;
use crate::schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stored table: schema plus row data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table schema.
    pub schema: TableSchema,
    /// Row-major data; every row has `schema.columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

/// An in-memory database: a named collection of tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), tables: BTreeMap::new() }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a table (schema + rows). Fails on duplicate names or rows
    /// whose width disagrees with the schema.
    pub fn add_table(&mut self, table: Table) -> ExecResult<()> {
        let key = table.schema.name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(ExecError::DuplicateTable(table.schema.name.clone()));
        }
        let width = table.schema.columns.len();
        for (i, row) in table.rows.iter().enumerate() {
            if row.len() != width {
                return Err(ExecError::Arity(format!(
                    "table {} row {} has {} values, schema has {} columns",
                    table.schema.name,
                    i,
                    row.len(),
                    width
                )));
            }
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> ExecResult<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Append rows to an existing table.
    pub fn insert(&mut self, table: &str, rows: Vec<Vec<Value>>) -> ExecResult<()> {
        let t = self
            .tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        let width = t.schema.columns.len();
        for row in &rows {
            if row.len() != width {
                return Err(ExecError::Arity(format!(
                    "insert into {table}: row width {} != {width}",
                    row.len()
                )));
            }
        }
        t.rows.extend(rows);
        Ok(())
    }

    /// Parse and execute a SELECT statement.
    pub fn run(&self, sql: &str) -> ExecResult<ResultSet> {
        let query = sqlkit::parse_query(sql)?;
        self.run_query(&query)
    }

    /// Execute an already-parsed query: the compiled-plan fast path when the
    /// query lowers, the AST interpreter otherwise. Results and deterministic
    /// work units are identical either way (property-tested).
    pub fn run_query(&self, query: &sqlkit::Query) -> ExecResult<ResultSet> {
        match crate::plan::compile(self, query) {
            Some(plan) => {
                obs::count("minidb.dispatch.compiled", 1);
                plan.execute(self)
            }
            None => {
                obs::count("minidb.dispatch.interpreter", 1);
                crate::exec::execute(self, query)
            }
        }
    }

    /// Compile a query into a reusable plan for this database's schema, or
    /// `None` when the query needs the interpreter. A prepared plan can be
    /// re-executed without re-lowering (and across content changes, as long
    /// as the schema is unchanged).
    pub fn prepare(&self, query: &sqlkit::Query) -> Option<crate::plan::CompiledQuery> {
        let plan = crate::plan::compile(self, query);
        let outcome = if plan.is_some() { "minidb.plan.compiled" } else { "minidb.plan.fallback" };
        obs::count(outcome, 1);
        plan
    }

    /// All `CREATE TABLE` statements, for prompt construction.
    pub fn schema_sql(&self) -> String {
        let mut out = String::new();
        for t in self.tables.values() {
            out.push_str(&t.schema.create_table_sql());
            out.push_str("\n\n");
        }
        out
    }
}

/// Fluent builder for tables, used heavily by tests and the data generator.
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { schema: TableSchema::new(name, Vec::new()), rows: Vec::new() }
    }

    /// Add an INTEGER column.
    pub fn column_int(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Integer));
        self
    }

    /// Add a REAL column.
    pub fn column_real(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Real));
        self
    }

    /// Add a TEXT column.
    pub fn column_text(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Text));
        self
    }

    /// Declare the primary key by column names (unknown names are ignored).
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.schema.primary_key =
            names.iter().filter_map(|n| self.schema.column_index(n)).collect();
        self
    }

    /// Declare a foreign key from `column` to `ref_table.ref_column`.
    pub fn foreign_key(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        if let Some(idx) = self.schema.column_index(column) {
            self.schema.foreign_keys.push(ForeignKey {
                column: idx,
                ref_table: ref_table.to_string(),
                ref_column: ref_column.to_string(),
            });
        }
        self
    }

    /// Append one row.
    pub fn row(mut self, row: Vec<Value>) -> Self {
        self.rows.push(row);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Finish building.
    pub fn build(self) -> Table {
        Table { schema: self.schema, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Database {
        let mut db = Database::new("demo");
        db.add_table(
            TableBuilder::new("t")
                .column_int("a")
                .column_text("b")
                .row(vec![Value::Int(1), Value::text("x")])
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = demo();
        let t = TableBuilder::new("T").column_int("z").build();
        assert!(matches!(db.add_table(t), Err(ExecError::DuplicateTable(_))));
    }

    #[test]
    fn row_width_checked() {
        let mut db = Database::new("d");
        let t = TableBuilder::new("t").column_int("a").row(vec![]).build();
        assert!(matches!(db.add_table(t), Err(ExecError::Arity(_))));
    }

    #[test]
    fn insert_appends() {
        let mut db = demo();
        db.insert("t", vec![vec![Value::Int(2), Value::text("y")]]).unwrap();
        assert_eq!(db.table("t").unwrap().rows.len(), 2);
        assert!(db.insert("t", vec![vec![Value::Int(3)]]).is_err());
        assert!(db.insert("nope", vec![]).is_err());
    }

    #[test]
    fn lookup_case_insensitive() {
        let db = demo();
        assert!(db.table("T").is_ok());
        assert!(matches!(db.table("u"), Err(ExecError::UnknownTable(_))));
    }

    #[test]
    fn schema_sql_lists_tables() {
        let db = demo();
        assert!(db.schema_sql().contains("CREATE TABLE t ("));
    }
}
