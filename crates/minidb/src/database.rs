//! Database catalog and storage.
//!
//! Tables are stored **columnar**: one typed [`Column`] per schema column
//! (see [`crate::column`]). Row-oriented callers go through the row-view
//! shim (`row(i)` / `to_rows()`); the vectorized executor reads the typed
//! vectors directly. Ingest (`add_table` / `insert` / [`TableBuilder`])
//! validates row arity *and* value affinity against the schema, so a typed
//! column vector can never be poisoned by a mixed-type cell sneaking in.

use crate::column::Column;
use crate::error::{ExecError, ExecResult};
use crate::result::ResultSet;
use crate::schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stored table: schema plus columnar row data.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table schema.
    pub schema: TableSchema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Build a table from row-major data, validating every cell: each row
    /// must have exactly `schema.columns.len()` values, and each value must
    /// be storable under its column's affinity ([`ColumnType::accepts`]).
    pub fn from_rows(schema: TableSchema, rows: Vec<Vec<Value>>) -> ExecResult<Self> {
        for (i, row) in rows.iter().enumerate() {
            validate_row(&schema, row).map_err(|e| at_row(&schema.name, i, e))?;
        }
        let n_rows = rows.len();
        let columns = schema
            .columns
            .iter()
            .enumerate()
            .map(|(c, def)| {
                let cells: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
                Column::from_values(def.ty, &cells)
            })
            .collect();
        Ok(Table { schema, columns, n_rows })
    }

    /// Number of stored rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// One stored column.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Materialize row `i` (row-view shim).
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Materialize the whole table row-major (row-view shim; what the
    /// interpreter scans, equivalent to the old `rows.clone()`).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        (0..self.n_rows).map(|i| self.row(i)).collect()
    }

    /// Append validated rows. All rows are checked before any is stored, so
    /// a failed append leaves the table unchanged.
    pub fn push_rows(&mut self, rows: Vec<Vec<Value>>) -> ExecResult<()> {
        for row in &rows {
            validate_row(&self.schema, row)?;
        }
        for row in rows {
            for (c, v) in row.into_iter().enumerate() {
                self.columns[c].push(v);
            }
            self.n_rows += 1;
        }
        Ok(())
    }
}

fn validate_row(schema: &TableSchema, row: &[Value]) -> ExecResult<()> {
    let width = schema.columns.len();
    if row.len() != width {
        return Err(ExecError::Arity(format!(
            "row has {} values, schema has {} columns",
            row.len(),
            width
        )));
    }
    for (def, v) in schema.columns.iter().zip(row) {
        if !def.ty.accepts(v) {
            return Err(ExecError::Type(format!(
                "column {} is {}, got {} value",
                def.name,
                def.ty.sql_name(),
                v.type_name()
            )));
        }
    }
    Ok(())
}

fn at_row(table: &str, i: usize, e: ExecError) -> ExecError {
    match e {
        ExecError::Arity(m) => ExecError::Arity(format!("table {table} row {i}: {m}")),
        ExecError::Type(m) => ExecError::Type(format!("table {table} row {i}: {m}")),
        other => other,
    }
}

// Serde keeps the row-major wire shape: the columnar layout is an in-memory
// execution detail, and row-major stays readable and stable for any stored
// snapshots.
impl Serialize for Table {
    fn serialize(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("schema".to_string(), self.schema.serialize()),
            ("rows".to_string(), self.to_rows().serialize()),
        ])
    }
}

impl Deserialize for Table {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let schema = TableSchema::deserialize(
            v.get("schema").ok_or_else(|| serde::Error::msg("Table: missing schema"))?,
        )?;
        let rows = Vec::<Vec<Value>>::deserialize(
            v.get("rows").ok_or_else(|| serde::Error::msg("Table: missing rows"))?,
        )?;
        // re-validates on the way in: a snapshot can't smuggle mixed-type
        // cells past the columnar affinity check
        Table::from_rows(schema, rows).map_err(|e| serde::Error::msg(e.to_string()))
    }
}

/// An in-memory database: a named collection of tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Database {
    name: String,
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), tables: BTreeMap::new() }
    }

    /// Database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a table — either an already-columnar [`Table`] or a
    /// [`PendingTable`] fresh off a [`TableBuilder`]. Fails on duplicate
    /// names or on builder rows with bad arity or a type/affinity mismatch.
    pub fn add_table(&mut self, table: impl IntoTable) -> ExecResult<()> {
        let table = table.into_table()?;
        let key = table.schema.name.to_lowercase();
        if self.tables.contains_key(&key) {
            return Err(ExecError::DuplicateTable(table.schema.name.clone()));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Look up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> ExecResult<&Table> {
        self.tables
            .get(&name.to_lowercase())
            .ok_or_else(|| ExecError::UnknownTable(name.to_string()))
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Append rows to an existing table. Every row is validated (arity and
    /// value affinity) before any row is stored.
    pub fn insert(&mut self, table: &str, rows: Vec<Vec<Value>>) -> ExecResult<()> {
        let t = self
            .tables
            .get_mut(&table.to_lowercase())
            .ok_or_else(|| ExecError::UnknownTable(table.to_string()))?;
        t.push_rows(rows).map_err(|e| match e {
            ExecError::Arity(m) => ExecError::Arity(format!("insert into {table}: {m}")),
            ExecError::Type(m) => ExecError::Type(format!("insert into {table}: {m}")),
            other => other,
        })
    }

    /// Parse and execute a SELECT statement.
    pub fn run(&self, sql: &str) -> ExecResult<ResultSet> {
        let query = sqlkit::parse_query(sql)?;
        self.run_query(&query)
    }

    /// Execute an already-parsed query: the compiled-plan fast path when the
    /// query lowers, the AST interpreter otherwise. Results and deterministic
    /// work units are identical either way (property-tested).
    pub fn run_query(&self, query: &sqlkit::Query) -> ExecResult<ResultSet> {
        match crate::plan::compile(self, query) {
            Some(plan) => {
                obs::count("minidb.dispatch.compiled", 1);
                plan.execute(self)
            }
            None => {
                obs::count("minidb.dispatch.interpreter", 1);
                crate::exec::execute(self, query)
            }
        }
    }

    /// Compile a query into a reusable plan for this database's schema, or
    /// `None` when the query needs the interpreter. A prepared plan can be
    /// re-executed without re-lowering (and across content changes, as long
    /// as the schema is unchanged).
    pub fn prepare(&self, query: &sqlkit::Query) -> Option<crate::plan::CompiledQuery> {
        let plan = crate::plan::compile(self, query);
        let outcome = if plan.is_some() { "minidb.plan.compiled" } else { "minidb.plan.fallback" };
        obs::count(outcome, 1);
        plan
    }

    /// All `CREATE TABLE` statements, for prompt construction.
    pub fn schema_sql(&self) -> String {
        let mut out = String::new();
        for t in self.tables.values() {
            out.push_str(&t.schema.create_table_sql());
            out.push_str("\n\n");
        }
        out
    }
}

/// Output of [`TableBuilder::build`]: schema + rows awaiting validation.
/// Validation happens in [`Database::add_table`] (or [`PendingTable::validate`])
/// so builder misuse surfaces as an `Err`, not a panic.
#[derive(Debug)]
pub struct PendingTable {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl PendingTable {
    /// Validate arity and affinity of every row, producing columnar storage.
    pub fn validate(self) -> ExecResult<Table> {
        Table::from_rows(self.schema, self.rows)
    }
}

/// Anything [`Database::add_table`] can ingest.
pub trait IntoTable {
    /// Produce a validated columnar table.
    fn into_table(self) -> ExecResult<Table>;
}

impl IntoTable for Table {
    fn into_table(self) -> ExecResult<Table> {
        Ok(self)
    }
}

impl IntoTable for PendingTable {
    fn into_table(self) -> ExecResult<Table> {
        self.validate()
    }
}

/// Fluent builder for tables, used heavily by tests and the data generator.
#[derive(Debug)]
pub struct TableBuilder {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { schema: TableSchema::new(name, Vec::new()), rows: Vec::new() }
    }

    /// Add an INTEGER column.
    pub fn column_int(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Integer));
        self
    }

    /// Add a REAL column.
    pub fn column_real(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Real));
        self
    }

    /// Add a TEXT column.
    pub fn column_text(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ColumnType::Text));
        self
    }

    /// Declare the primary key by column names (unknown names are ignored).
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.schema.primary_key =
            names.iter().filter_map(|n| self.schema.column_index(n)).collect();
        self
    }

    /// Declare a foreign key from `column` to `ref_table.ref_column`.
    pub fn foreign_key(mut self, column: &str, ref_table: &str, ref_column: &str) -> Self {
        if let Some(idx) = self.schema.column_index(column) {
            self.schema.foreign_keys.push(ForeignKey {
                column: idx,
                ref_table: ref_table.to_string(),
                ref_column: ref_column.to_string(),
            });
        }
        self
    }

    /// Append one row.
    pub fn row(mut self, row: Vec<Value>) -> Self {
        self.rows.push(row);
        self
    }

    /// Append many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        self.rows.extend(rows);
        self
    }

    /// Finish building. The result is validated by `Database::add_table`
    /// (or explicitly via [`PendingTable::validate`]).
    pub fn build(self) -> PendingTable {
        PendingTable { schema: self.schema, rows: self.rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Database {
        let mut db = Database::new("demo");
        db.add_table(
            TableBuilder::new("t")
                .column_int("a")
                .column_text("b")
                .row(vec![Value::Int(1), Value::text("x")])
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = demo();
        let t = TableBuilder::new("T").column_int("z").build();
        assert!(matches!(db.add_table(t), Err(ExecError::DuplicateTable(_))));
    }

    #[test]
    fn row_width_checked() {
        let mut db = Database::new("d");
        let t = TableBuilder::new("t").column_int("a").row(vec![]).build();
        assert!(matches!(db.add_table(t), Err(ExecError::Arity(_))));
    }

    #[test]
    fn value_affinity_checked_at_add_table() {
        let mut db = Database::new("d");
        let t = TableBuilder::new("t")
            .column_int("a")
            .row(vec![Value::text("not an int")])
            .build();
        let err = db.add_table(t).unwrap_err();
        assert!(matches!(&err, ExecError::Type(m) if m.contains("column a is int")), "{err}");
    }

    #[test]
    fn value_affinity_checked_at_insert() {
        let mut db = demo();
        // wrong type in column b (text): reject, and reject atomically —
        // a valid row in the same batch must not be stored either.
        let err = db
            .insert(
                "t",
                vec![vec![Value::Int(2), Value::text("ok")], vec![Value::Int(3), Value::Int(9)]],
            )
            .unwrap_err();
        assert!(matches!(err, ExecError::Type(_)), "{err}");
        assert_eq!(db.table("t").unwrap().n_rows(), 1);
        // REAL columns accept Int (SQLite affinity) but never text
        let mut db2 = Database::new("d2");
        db2.add_table(TableBuilder::new("r").column_real("x").build()).unwrap();
        db2.insert("r", vec![vec![Value::Int(7)], vec![Value::Real(1.5)], vec![Value::Null]])
            .unwrap();
        assert!(db2.insert("r", vec![vec![Value::text("nope")]]).is_err());
        assert_eq!(db2.table("r").unwrap().n_rows(), 3);
    }

    #[test]
    fn insert_appends() {
        let mut db = demo();
        db.insert("t", vec![vec![Value::Int(2), Value::text("y")]]).unwrap();
        assert_eq!(db.table("t").unwrap().n_rows(), 2);
        assert!(db.insert("t", vec![vec![Value::Int(3)]]).is_err());
        assert!(db.insert("nope", vec![]).is_err());
    }

    #[test]
    fn row_view_shim_roundtrips() {
        let mut db = demo();
        db.insert("t", vec![vec![Value::Null, Value::Null]]).unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.row(0), vec![Value::Int(1), Value::text("x")]);
        assert_eq!(t.to_rows(), vec![
            vec![Value::Int(1), Value::text("x")],
            vec![Value::Null, Value::Null],
        ]);
    }

    #[test]
    fn serde_roundtrip_is_row_major() {
        let db = demo();
        let json = serde_json::to_string(&db).unwrap();
        assert!(json.contains("\"rows\""), "{json}");
        let back: Database = serde_json::from_str(&json).unwrap();
        assert_eq!(back.table("t").unwrap().to_rows(), db.table("t").unwrap().to_rows());
    }

    #[test]
    fn lookup_case_insensitive() {
        let db = demo();
        assert!(db.table("T").is_ok());
        assert!(matches!(db.table("u"), Err(ExecError::UnknownTable(_))));
    }

    #[test]
    fn schema_sql_lists_tables() {
        let db = demo();
        assert!(db.schema_sql().contains("CREATE TABLE t ("));
    }
}
