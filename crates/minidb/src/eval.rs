//! Expression evaluation with scopes, three-valued logic, and aggregates.

use crate::database::Database;
use crate::error::{ExecError, ExecResult};
use crate::value::Value;
use sqlkit::ast::*;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::HashSet;

/// Logical operator class a work charge is attributed to. The tags feed
/// per-operator observability counters; the *total* work (what VES sees)
/// is the plain sum over all tags, so attribution never changes scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WorkOp {
    Scan,
    Filter,
    Join,
    Group,
    Sort,
    Project,
    SetOp,
}

/// (tag, obs counter name) for every operator class, in flush order.
pub(crate) const WORK_OPS: [(WorkOp, &str); 7] = [
    (WorkOp::Scan, "minidb.work.scan"),
    (WorkOp::Filter, "minidb.work.filter"),
    (WorkOp::Join, "minidb.work.join"),
    (WorkOp::Group, "minidb.work.group"),
    (WorkOp::Sort, "minidb.work.sort"),
    (WorkOp::Project, "minidb.work.project"),
    (WorkOp::SetOp, "minidb.work.set_op"),
];

/// Shared execution counters: deterministic work units plus a budget guard
/// against runaway cross joins in corrupted predictions. Work is tagged by
/// operator class ([`WorkOp`]) for latency/work attribution; the total is
/// unchanged by tagging.
#[derive(Debug)]
pub(crate) struct Counters {
    work: Cell<u64>,
    budget: u64,
    ops: [Cell<u64>; WORK_OPS.len()],
}

impl Counters {
    pub(crate) fn new(budget: u64) -> Self {
        Self { work: Cell::new(0), budget, ops: Default::default() }
    }

    /// Charge `n` work units against operator class `op`; errors when the
    /// budget is exhausted.
    pub(crate) fn charge(&self, op: WorkOp, n: u64) -> ExecResult<()> {
        let cell = &self.ops[op as usize];
        cell.set(cell.get().saturating_add(n));
        let w = self.work.get().saturating_add(n);
        self.work.set(w);
        if w > self.budget {
            Err(ExecError::ResourceExhausted(format!("work budget {} exceeded", self.budget)))
        } else {
            Ok(())
        }
    }

    pub(crate) fn work(&self) -> u64 {
        self.work.get()
    }

    /// Work charged against one operator class so far.
    pub(crate) fn op_work(&self, op: WorkOp) -> u64 {
        self.ops[op as usize].get()
    }

    /// Publish per-operator work to the global obs recorder. Free (one
    /// relaxed load) when the recorder is disabled; called once per query
    /// at the execution flush points, never per row.
    pub(crate) fn flush_obs(&self) {
        if !obs::enabled() {
            return;
        }
        for (op, name) in WORK_OPS {
            obs::count(name, self.op_work(op));
        }
        obs::count("minidb.work.total", self.work());
    }
}

/// One FROM binding: an optional binding name (table name or alias) and the
/// column names it contributes, at `offset` within the concatenated row.
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    pub(crate) name: Option<String>,
    pub(crate) columns: Vec<String>,
    pub(crate) offset: usize,
}

/// A name-resolution scope: bindings + the current concatenated row, chained
/// to an optional outer scope for correlated subqueries.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scope<'a> {
    pub(crate) bindings: &'a [Binding],
    pub(crate) row: &'a [Value],
    pub(crate) parent: Option<&'a Scope<'a>>,
}

impl<'a> Scope<'a> {
    /// Resolve a (possibly qualified) column to its value, walking outward
    /// through parent scopes.
    fn resolve(&self, table: Option<&str>, column: &str) -> Option<Value> {
        for b in self.bindings {
            if let Some(t) = table {
                let matches_binding =
                    b.name.as_deref().map(|n| n.eq_ignore_ascii_case(t)).unwrap_or(false);
                if !matches_binding {
                    continue;
                }
            }
            if let Some(ci) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(column)) {
                return Some(self.row[b.offset + ci].clone());
            }
        }
        self.parent.and_then(|p| p.resolve(table, column))
    }
}

/// Evaluation context: database (for subqueries), scope, optional group rows
/// (aggregate mode), and the shared counters.
#[derive(Clone, Copy)]
pub(crate) struct EvalCtx<'a> {
    pub(crate) db: &'a Database,
    pub(crate) scope: &'a Scope<'a>,
    /// In aggregate mode, the full rows of the current group.
    pub(crate) group: Option<&'a [Vec<Value>]>,
    pub(crate) counters: &'a Counters,
}

impl<'a> EvalCtx<'a> {
    fn with_row<'b>(&'b self, scope: &'b Scope<'b>) -> EvalCtx<'b> {
        EvalCtx { db: self.db, scope, group: None, counters: self.counters }
    }
}

/// Evaluate an expression to a value.
pub(crate) fn eval(ctx: &EvalCtx<'_>, expr: &Expr) -> ExecResult<Value> {
    match expr {
        Expr::Literal(lit) => Ok(literal_value(lit)),
        Expr::Column { table, column } => ctx
            .scope
            .resolve(table.as_deref(), column)
            .ok_or_else(|| ExecError::UnknownColumn(render_col(table.as_deref(), column))),
        Expr::AggWildcard(func) => eval_aggregate(ctx, *func, None, false),
        Expr::Agg { func, distinct, arg } => eval_aggregate(ctx, *func, Some(arg), *distinct),
        Expr::Func { name, args } => eval_function(ctx, name, args),
        Expr::Binary { op, left, right } => eval_binary(ctx, *op, left, right),
        Expr::Unary { op, expr } => {
            let v = eval(ctx, expr)?;
            Ok(apply_unary(*op, v))
        }
        Expr::Between { expr, negated, low, high } => {
            let v = eval(ctx, expr)?;
            let lo = eval(ctx, low)?;
            let hi = eval(ctx, high)?;
            let ge = v.sql_ord(&lo).map(|o| o != Ordering::Less);
            let le = v.sql_ord(&hi).map(|o| o != Ordering::Greater);
            Ok(bool3_to_value(and3(ge, le).map(|b| b ^ negated)))
        }
        Expr::InList { expr, negated, list } => {
            let v = eval(ctx, expr)?;
            let mut saw_null = v.is_null();
            let mut found = false;
            for item in list {
                let iv = eval(ctx, item)?;
                match v.sql_eq(&iv) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let r = if found {
                Some(true)
            } else if saw_null {
                None
            } else {
                Some(false)
            };
            Ok(bool3_to_value(r.map(|b| b ^ negated)))
        }
        Expr::InSubquery { expr, negated, query } => {
            let v = eval(ctx, expr)?;
            let rs = crate::exec::execute_query(ctx.db, query, Some(ctx.scope), ctx.counters)?;
            if rs.columns.len() != 1 {
                return Err(ExecError::CardinalityViolation(format!(
                    "IN subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            let mut saw_null = v.is_null();
            let mut found = false;
            for row in &rs.rows {
                match v.sql_eq(&row[0]) {
                    Some(true) => {
                        found = true;
                        break;
                    }
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            let r = if found {
                Some(true)
            } else if saw_null {
                None
            } else {
                Some(false)
            };
            Ok(bool3_to_value(r.map(|b| b ^ negated)))
        }
        Expr::Exists { negated, query } => {
            let rs = crate::exec::execute_query(ctx.db, query, Some(ctx.scope), ctx.counters)?;
            Ok(Value::Int(i64::from(!rs.rows.is_empty() ^ negated)))
        }
        Expr::Subquery(query) => {
            let rs = crate::exec::execute_query(ctx.db, query, Some(ctx.scope), ctx.counters)?;
            if rs.columns.len() != 1 {
                return Err(ExecError::CardinalityViolation(format!(
                    "scalar subquery returns {} columns",
                    rs.columns.len()
                )));
            }
            // SQLite takes the first row and yields NULL on empty results.
            Ok(rs.rows.first().map(|r| r[0].clone()).unwrap_or(Value::Null))
        }
        Expr::Like { expr, negated, pattern } => {
            let v = eval(ctx, expr)?;
            let p = eval(ctx, pattern)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let matched = like_match(&p.render(), &v.render());
            Ok(Value::Int(i64::from(matched ^ negated)))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(ctx, expr)?;
            Ok(Value::Int(i64::from(v.is_null() ^ negated)))
        }
        Expr::Case { operand, branches, else_expr } => {
            for (when, then) in branches {
                let hit = match operand {
                    Some(op) => {
                        let ov = eval(ctx, op)?;
                        let wv = eval(ctx, when)?;
                        ov.sql_eq(&wv) == Some(true)
                    }
                    None => eval(ctx, when)?.truth() == Some(true),
                };
                if hit {
                    return eval(ctx, then);
                }
            }
            match else_expr {
                Some(e) => eval(ctx, e),
                None => Ok(Value::Null),
            }
        }
        Expr::Cast { expr, ty } => {
            let v = eval(ctx, expr)?;
            Ok(cast_value(v, ty))
        }
    }
}

fn render_col(table: Option<&str>, column: &str) -> String {
    match table {
        Some(t) => format!("{t}.{column}"),
        None => column.to_string(),
    }
}

/// Apply a unary operator to an evaluated operand.
pub(crate) fn apply_unary(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::Not => match v.truth() {
            None => Value::Null,
            Some(b) => Value::Int(i64::from(!b)),
        },
        UnOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Real(r) => Value::Real(-r),
            Value::Text(s) => {
                s.trim().parse::<f64>().map(|f| Value::Real(-f)).unwrap_or(Value::Int(0))
            }
        },
    }
}

pub(crate) fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Real(*v),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Int(i64::from(*b)),
    }
}

pub(crate) fn bool3_to_value(b: Option<bool>) -> Value {
    match b {
        None => Value::Null,
        Some(b) => Value::Int(i64::from(b)),
    }
}

/// Three-valued AND.
pub(crate) fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

/// Three-valued OR.
pub(crate) fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

fn eval_binary(ctx: &EvalCtx<'_>, op: BinOp, left: &Expr, right: &Expr) -> ExecResult<Value> {
    match op {
        BinOp::And => {
            // short-circuit to avoid needless correlated-subquery execution
            let l = eval(ctx, left)?.truth();
            if l == Some(false) {
                return Ok(Value::Int(0));
            }
            let r = eval(ctx, right)?.truth();
            Ok(bool3_to_value(and3(l, r)))
        }
        BinOp::Or => {
            let l = eval(ctx, left)?.truth();
            if l == Some(true) {
                return Ok(Value::Int(1));
            }
            let r = eval(ctx, right)?.truth();
            Ok(bool3_to_value(or3(l, r)))
        }
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
            let l = eval(ctx, left)?;
            let r = eval(ctx, right)?;
            let ord = l.sql_ord(&r);
            let b = ord.map(|o| match op {
                BinOp::Eq => o == Ordering::Equal,
                BinOp::NotEq => o != Ordering::Equal,
                BinOp::Lt => o == Ordering::Less,
                BinOp::LtEq => o != Ordering::Greater,
                BinOp::Gt => o == Ordering::Greater,
                BinOp::GtEq => o != Ordering::Less,
                _ => unreachable!(),
            });
            Ok(bool3_to_value(b))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let l = eval(ctx, left)?;
            let r = eval(ctx, right)?;
            eval_arith(op, l, r)
        }
        BinOp::Concat => {
            let l = eval(ctx, left)?;
            let r = eval(ctx, right)?;
            if l.is_null() || r.is_null() {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(format!("{}{}", l.render(), r.render())))
            }
        }
    }
}

pub(crate) fn eval_arith(op: BinOp, l: Value, r: Value) -> ExecResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // SQLite: integer op integer stays integer (with / as int division);
    // anything else is float. Non-numeric text coerces to 0.
    let both_int = matches!((&l, &r), (Value::Int(_), Value::Int(_)));
    if both_int {
        let (a, b) = match (&l, &r) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            _ => unreachable!(),
        };
        let v = match op {
            BinOp::Add => a.checked_add(b).map(Value::Int),
            BinOp::Sub => a.checked_sub(b).map(Value::Int),
            BinOp::Mul => a.checked_mul(b).map(Value::Int),
            BinOp::Div => {
                if b == 0 {
                    return Ok(Value::Null);
                }
                a.checked_div(b).map(Value::Int)
            }
            BinOp::Mod => {
                if b == 0 {
                    return Ok(Value::Null);
                }
                a.checked_rem(b).map(Value::Int)
            }
            _ => unreachable!(),
        };
        // overflow degrades to float, as SQLite does
        return Ok(v.unwrap_or_else(|| {
            let (af, bf) = (a as f64, b as f64);
            Value::Real(match op {
                BinOp::Add => af + bf,
                BinOp::Sub => af - bf,
                BinOp::Mul => af * bf,
                _ => unreachable!(),
            })
        }));
    }
    let a = l.as_f64().unwrap_or(0.0);
    let b = r.as_f64().unwrap_or(0.0);
    let v = match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        BinOp::Mod => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Real(v))
}

pub(crate) fn cast_value(v: Value, ty: &str) -> Value {
    match ty.to_ascii_uppercase().as_str() {
        "INT" | "INTEGER" | "BIGINT" => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(i),
            Value::Real(r) => Value::Int(r as i64),
            Value::Text(s) => Value::Int(parse_prefix_f64(&s) as i64),
        },
        "REAL" | "FLOAT" | "DOUBLE" | "NUMERIC" | "DECIMAL" => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Real(i as f64),
            Value::Real(r) => Value::Real(r),
            Value::Text(s) => Value::Real(parse_prefix_f64(&s)),
        },
        "TEXT" | "VARCHAR" | "CHAR" | "STRING" => match v {
            Value::Null => Value::Null,
            other => Value::Text(other.render()),
        },
        _ => v,
    }
}

/// Parse the longest numeric prefix, as SQLite CAST does ("12abc" -> 12).
fn parse_prefix_f64(s: &str) -> f64 {
    let t = s.trim_start();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    for (i, c) in t.char_indices() {
        match c {
            '+' | '-' if i == 0 => end = i + 1,
            '0'..='9' => {
                seen_digit = true;
                end = i + 1;
            }
            '.' if !seen_dot => {
                seen_dot = true;
                end = i + 1;
            }
            _ => break,
        }
    }
    if !seen_digit {
        return 0.0;
    }
    t[..end].parse().unwrap_or(0.0)
}

/// SQL LIKE with `%` and `_`, ASCII case-insensitive (SQLite default).
pub(crate) fn like_match(pattern: &str, text: &str) -> bool {
    fn inner(p: &[u8], t: &[u8]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            b'%' => {
                // try consuming 0..=len chars
                for skip in 0..=t.len() {
                    if inner(&p[1..], &t[skip..]) {
                        return true;
                    }
                }
                false
            }
            b'_' => !t.is_empty() && inner(&p[1..], &t[1..]),
            c => {
                !t.is_empty()
                    && t[0].eq_ignore_ascii_case(&c)
                    && inner(&p[1..], &t[1..])
            }
        }
    }
    inner(pattern.as_bytes(), text.as_bytes())
}

fn eval_function(ctx: &EvalCtx<'_>, name: &str, args: &[Expr]) -> ExecResult<Value> {
    // arity errors fire before any argument is evaluated
    check_function_arity(name, args.len())?;
    // IIF and COALESCE stay lazy: skipping an argument also skips any work
    // its aggregates would charge, which is observable through the
    // deterministic work counter.
    match name {
        "IIF" => {
            return if eval(ctx, &args[0])?.truth() == Some(true) {
                eval(ctx, &args[1])
            } else {
                eval(ctx, &args[2])
            };
        }
        "COALESCE" => {
            for a in args {
                let v = eval(ctx, a)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            return Ok(Value::Null);
        }
        _ => {}
    }
    let mut vals = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(ctx, a)?);
    }
    apply_scalar_function(name, vals)
}

/// Validate a scalar function's argument count before evaluating any
/// argument, so arity errors fire ahead of argument-evaluation errors in
/// both the interpreter and the compiled-plan executor.
pub(crate) fn check_function_arity(name: &str, n: usize) -> ExecResult<()> {
    match name {
        "ABS" | "LENGTH" | "UPPER" | "LOWER" if n != 1 => {
            Err(ExecError::Arity(format!("{name} expects 1 args, got {n}")))
        }
        "ROUND" if n == 0 || n > 2 => Err(ExecError::Arity("ROUND expects 1 or 2 args".into())),
        "SUBSTR" | "SUBSTRING" if n != 2 && n != 3 => {
            Err(ExecError::Arity("SUBSTR expects 2 or 3 args".into()))
        }
        "IIF" if n != 3 => Err(ExecError::Arity(format!("IIF expects 3 args, got {n}"))),
        "NULLIF" | "INSTR" if n != 2 => {
            Err(ExecError::Arity(format!("{name} expects 2 args, got {n}")))
        }
        _ => Ok(()),
    }
}

/// Is this a scalar function the evaluator implements? (Used by the plan
/// compiler to decide up front whether an expression can be lowered.)
pub(crate) fn known_function(name: &str) -> bool {
    matches!(
        name,
        "ABS"
            | "ROUND"
            | "LENGTH"
            | "UPPER"
            | "LOWER"
            | "SUBSTR"
            | "SUBSTRING"
            | "IIF"
            | "COALESCE"
            | "NULLIF"
            | "INSTR"
    )
}

/// Apply a strict (non-lazy) scalar function to already-evaluated arguments.
/// IIF and COALESCE are handled lazily by the callers and never reach here.
pub(crate) fn apply_scalar_function(name: &str, vals: Vec<Value>) -> ExecResult<Value> {
    let args = &vals;
    let arity = |n: usize| -> ExecResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(ExecError::Arity(format!("{name} expects {n} args, got {}", args.len())))
        }
    };
    match name {
        "ABS" => {
            arity(1)?;
            match args[0].clone() {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Real(r) => Ok(Value::Real(r.abs())),
                Value::Text(s) => {
                    Ok(Value::Real(s.trim().parse::<f64>().map(f64::abs).unwrap_or(0.0)))
                }
            }
        }
        "ROUND" => {
            if args.is_empty() || args.len() > 2 {
                return Err(ExecError::Arity("ROUND expects 1 or 2 args".into()));
            }
            let digits =
                if args.len() == 2 { args[1].as_f64().unwrap_or(0.0) as i32 } else { 0 };
            match args[0].as_f64() {
                None => Ok(Value::Null),
                Some(f) => {
                    let m = 10f64.powi(digits);
                    Ok(Value::Real((f * m).round() / m))
                }
            }
        }
        "LENGTH" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                other => Ok(Value::Int(other.render().chars().count() as i64)),
            }
        }
        "UPPER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                other => Ok(Value::Text(other.render().to_uppercase())),
            }
        }
        "LOWER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                other => Ok(Value::Text(other.render().to_lowercase())),
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(ExecError::Arity("SUBSTR expects 2 or 3 args".into()));
            }
            let s = match &args[0] {
                Value::Null => return Ok(Value::Null),
                other => other.render(),
            };
            let chars: Vec<char> = s.chars().collect();
            let start = args[1].as_f64().unwrap_or(1.0) as i64;
            let len = if args.len() == 3 {
                args[2].as_f64().unwrap_or(0.0) as i64
            } else {
                chars.len() as i64
            };
            // SQLite: 1-based; negative start counts from the end
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub((-start) as usize)
            } else {
                0
            };
            let take = len.max(0) as usize;
            Ok(Value::Text(chars.iter().skip(begin).take(take).collect()))
        }
        "NULLIF" => {
            arity(2)?;
            if args[0].sql_eq(&args[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "INSTR" => {
            arity(2)?;
            let (hay, needle) = (&args[0], &args[1]);
            if hay.is_null() || needle.is_null() {
                return Ok(Value::Null);
            }
            let h = hay.render();
            let n = needle.render();
            Ok(Value::Int(h.find(&n).map(|i| i as i64 + 1).unwrap_or(0)))
        }
        other => Err(ExecError::Unsupported(format!("function {other}"))),
    }
}

fn eval_aggregate(
    ctx: &EvalCtx<'_>,
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
) -> ExecResult<Value> {
    let group = ctx.group.ok_or_else(|| {
        ExecError::Unsupported(format!("aggregate {} outside GROUP context", func.as_str()))
    })?;

    // COUNT(*) is just the group size.
    if arg.is_none() {
        return Ok(Value::Int(group.len() as i64));
    }
    let arg = arg.expect("checked above");

    // Evaluate the argument per group row.
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        ctx.counters.charge(WorkOp::Group, 1)?;
        let scope = Scope { bindings: ctx.scope.bindings, row, parent: ctx.scope.parent };
        let sub = ctx.with_row(&scope);
        let v = eval(&sub, arg)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    Ok(fold_aggregate(func, values, distinct))
}

/// Fold the non-NULL argument values of an aggregate into its result.
/// Shared between the AST interpreter and the compiled-plan executor so the
/// two paths cannot drift.
pub(crate) fn fold_aggregate(func: AggFunc, mut values: Vec<Value>, distinct: bool) -> Value {
    if distinct {
        let mut seen = HashSet::new();
        values.retain(|v| seen.insert(v.key_part()));
    }
    match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum => {
            if values.is_empty() {
                return Value::Null;
            }
            let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
            if all_int {
                let mut acc: i64 = 0;
                let mut overflow = false;
                for v in &values {
                    if let Value::Int(i) = v {
                        match acc.checked_add(*i) {
                            Some(s) => acc = s,
                            None => {
                                overflow = true;
                                break;
                            }
                        }
                    }
                }
                if !overflow {
                    return Value::Int(acc);
                }
            }
            let sum: f64 = values.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
            Value::Real(sum)
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return Value::Null;
            }
            let sum: f64 = values.iter().map(|v| v.as_f64().unwrap_or(0.0)).sum();
            Value::Real(sum / values.len() as f64)
        }
        AggFunc::Min => {
            values.into_iter().min_by(|a, b| a.sql_cmp(b)).unwrap_or(Value::Null)
        }
        AggFunc::Max => {
            values.into_iter().max_by(|a, b| a.sql_cmp(b)).unwrap_or(Value::Null)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("%ab%", "xxabyy"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("ABC", "abc"), "ASCII case-insensitive");
        assert!(!like_match("a%z", "abc"));
        assert!(like_match("%end", "the end"));
        assert!(like_match("start%", "starting"));
    }

    #[test]
    fn three_valued_tables() {
        assert_eq!(and3(Some(true), None), None);
        assert_eq!(and3(Some(false), None), Some(false));
        assert_eq!(or3(Some(true), None), Some(true));
        assert_eq!(or3(Some(false), None), None);
        assert_eq!(or3(None, None), None);
    }

    #[test]
    fn prefix_parse() {
        assert_eq!(parse_prefix_f64("12abc"), 12.0);
        assert_eq!(parse_prefix_f64("-3.5x"), -3.5);
        assert_eq!(parse_prefix_f64("abc"), 0.0);
        assert_eq!(parse_prefix_f64("  7"), 7.0);
    }

    #[test]
    fn counters_budget() {
        let c = Counters::new(10);
        assert!(c.charge(WorkOp::Scan, 5).is_ok());
        assert!(c.charge(WorkOp::Scan, 5).is_ok());
        assert!(c.charge(WorkOp::Scan, 1).is_err());
        assert_eq!(c.work(), 11);
    }
}
