//! Runtime values with SQLite-flavoured dynamic typing.
//!
//! Values are `NULL`, 64-bit integers, 64-bit floats, or text. Comparison
//! and arithmetic follow SQLite's affinity rules closely enough for the
//! benchmark workloads: numeric types compare across Int/Real, NULL sorts
//! first and never equals anything under predicate evaluation (three-valued
//! logic lives in the evaluator; [`Value::sql_cmp`] is the deterministic
//! total order used for ORDER BY and DISTINCT).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A runtime SQL value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Real(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Human-readable type name, for ingest-validation error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Text(_) => "text",
        }
    }

    /// Numeric view: Int and Real yield a float; text parses if numeric
    /// (SQLite affinity); NULL and non-numeric text yield `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Real(v) => Some(*v),
            Value::Text(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// SQL truthiness: NULL → None (unknown), numbers → non-zero,
    /// text → parses-to-nonzero (SQLite semantics).
    pub fn truth(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Int(v) => Some(*v != 0),
            Value::Real(v) => Some(*v != 0.0),
            Value::Text(s) => Some(s.trim().parse::<f64>().map(|v| v != 0.0).unwrap_or(false)),
        }
    }

    /// Deterministic total order for sorting / DISTINCT / grouping:
    /// NULL < numbers < text; numbers compare numerically across Int/Real;
    /// NaN sorts before all other reals.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Real(_) => 1,
                Text(_) => 2,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Real(b)) => cmp_f64(*a as f64, *b),
            (Real(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Real(a), Real(b)) => cmp_f64(*a, *b),
            (Text(a), Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// Three-valued SQL equality for predicates: `None` when either side is
    /// NULL, otherwise whether the values compare equal (numeric across
    /// Int/Real; text equality is exact).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sql_cmp(other) == Ordering::Equal)
    }

    /// Three-valued SQL ordering comparison for predicates; `None` when
    /// either side is NULL or the types are incomparable in a meaningful way
    /// (number vs text compares by type rank, as SQLite does, so it still
    /// yields a result).
    pub fn sql_ord(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.sql_cmp(other))
    }

    /// Render the value the way a result cell prints (NULL as empty marker).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(v) => v.to_string(),
            Value::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            Value::Text(s) => s.clone(),
        }
    }

    /// Canonical key for hashing/equivalence in multiset comparison: floats
    /// that hold integral values collapse to the integer representation so
    /// `1` and `1.0` compare equal, mirroring the Spider execution-match
    /// convention.
    pub fn canonical_key(&self) -> String {
        match self {
            Value::Null => "\u{0}NULL".to_string(),
            Value::Int(v) => format!("n:{v}"),
            Value::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 9e15 {
                    format!("n:{}", *v as i64)
                } else {
                    // round to 1e-6 to absorb float noise across plans
                    format!("r:{:.6}", v)
                }
            }
            Value::Text(s) => format!("t:{s}"),
        }
    }

    /// Structured hash/equality key with exactly the [`Value::canonical_key`]
    /// equivalence classes, but without the string round-trip — and, when
    /// collected into a `Vec<KeyPart>` row key, without the separator-byte
    /// collision a joined string key has (a text value containing the
    /// separator could previously merge two distinct rows).
    pub fn key_part(&self) -> KeyPart {
        match self {
            Value::Null => KeyPart::Null,
            Value::Int(v) => KeyPart::Num(*v),
            Value::Real(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 9e15 {
                    KeyPart::Num(*v as i64)
                } else {
                    // same 1e-6 rounding as the canonical string key so the
                    // equivalence classes stay byte-for-byte identical
                    KeyPart::Real(format!("{v:.6}"))
                }
            }
            Value::Text(s) => KeyPart::Text(s.clone()),
        }
    }
}

/// One component of a structured row key: the hashable canonicalization of a
/// single [`Value`]. A whole row keys as `Vec<KeyPart>`, which is collision
/// free by construction (no in-band separator).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyPart {
    /// NULL (all NULLs group together under grouping/DISTINCT semantics).
    Null,
    /// Integers and integral floats, collapsed (`1` ≡ `1.0`).
    Num(i64),
    /// Non-integral floats, canonicalized to 6 decimal places.
    Real(String),
    /// Text, kept distinct from numbers (`1` ≢ `'1'`).
    Text(String),
}

/// Structured key for a whole row.
pub fn row_key_parts(row: &[Value]) -> Vec<KeyPart> {
    row.iter().map(Value::key_part).collect()
}

/// Fibonacci-multiplicative hasher for trusted in-memory keys (raw `i64`
/// cells, [`KeyPart`] rows). std's SipHash is DoS-hardened but costs tens
/// of ns per key, which dominates tight grouping / dedup / join-build
/// loops over engine-owned data. Only bucket placement depends on the
/// hasher — every caller preserves first-encounter order and never
/// iterates the map — so swapping it is unobservable in results.
#[derive(Default)]
pub(crate) struct KeyHasher(u64);

impl KeyHasher {
    #[inline]
    fn mix(&mut self, n: u64) {
        let h = (self.0 ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 29);
    }
}

impl std::hash::Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.mix(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // length in the top byte so "ab" and "ab\0" stay distinct
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.mix(n as u64);
    }
}

/// `HashMap`/`HashSet` state plugging in [`KeyHasher`].
pub(crate) type KeyHashBuilder = std::hash::BuildHasherDefault<KeyHasher>;

fn cmp_f64(a: f64, b: f64) -> Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        // NaN sorts before everything
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => unreachable!(),
        }
    })
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.sql_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_ordering() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), Ordering::Equal);
        assert_eq!(Value::text("a").sql_cmp(&Value::Int(99)), Ordering::Greater);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Real(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).sql_cmp(&Value::Real(2.5)), Ordering::Less);
        assert!(Value::Int(2) == Value::Real(2.0));
    }

    #[test]
    fn three_valued_eq() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::text("a").sql_eq(&Value::text("b")), Some(false));
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).truth(), Some(false));
        assert_eq!(Value::Int(3).truth(), Some(true));
        assert_eq!(Value::Null.truth(), None);
        assert_eq!(Value::text("2").truth(), Some(true));
        assert_eq!(Value::text("abc").truth(), Some(false));
    }

    #[test]
    fn text_numeric_affinity() {
        assert_eq!(Value::text(" 3.5 ").as_f64(), Some(3.5));
        assert_eq!(Value::text("x").as_f64(), None);
    }

    #[test]
    fn canonical_key_collapses_integral_floats() {
        assert_eq!(Value::Int(1).canonical_key(), Value::Real(1.0).canonical_key());
        assert_ne!(Value::Int(1).canonical_key(), Value::Real(1.5).canonical_key());
        assert_ne!(Value::Int(1).canonical_key(), Value::text("1").canonical_key());
    }

    #[test]
    fn nan_sorts_first_among_reals() {
        assert_eq!(Value::Real(f64::NAN).sql_cmp(&Value::Real(0.0)), Ordering::Less);
        assert_eq!(Value::Real(f64::NAN).sql_cmp(&Value::Real(f64::NAN)), Ordering::Equal);
    }

    #[test]
    fn render() {
        assert_eq!(Value::Real(2.0).render(), "2.0");
        assert_eq!(Value::Int(7).render(), "7");
        assert_eq!(Value::Null.render(), "NULL");
    }

    #[test]
    fn key_part_matches_canonical_key_classes() {
        let samples = [
            Value::Null,
            Value::Int(1),
            Value::Int(-7),
            Value::Real(1.0),
            Value::Real(1.5),
            Value::Real(0.000_000_4),
            Value::Real(-0.0),
            Value::text("1"),
            Value::text("a"),
            Value::text(""),
        ];
        for a in &samples {
            for b in &samples {
                assert_eq!(
                    a.key_part() == b.key_part(),
                    a.canonical_key() == b.canonical_key(),
                    "class mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn structured_row_key_has_no_separator_collision() {
        // the old "\u{1}"-joined key merged these two distinct rows
        let a = vec![Value::text("x\u{1}t:y"), Value::text("z")];
        let b = vec![Value::text("x"), Value::text("y\u{1}t:z")];
        assert_ne!(row_key_parts(&a), row_key_parts(&b));
    }
}
