//! Table schemas: column definitions, primary keys, foreign keys.
//!
//! Schemas carry the metadata NL2SQL360 needs beyond execution: the dataset
//! statistics of the paper's Table 2 (#tables, #columns, #PKs, #FKs per
//! database) are computed from these definitions, and the schema-linking
//! modules in the model zoo consume column names and types.

use serde::{Deserialize, Serialize};

/// Declared column types (SQLite-style affinities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// INTEGER affinity.
    Integer,
    /// REAL affinity.
    Real,
    /// TEXT affinity.
    Text,
}

impl ColumnType {
    /// SQL spelling used when rendering `CREATE TABLE` prompts.
    pub fn sql_name(&self) -> &'static str {
        match self {
            ColumnType::Integer => "int",
            ColumnType::Real => "real",
            ColumnType::Text => "text",
        }
    }

    /// Whether a value may be stored in a column of this affinity. NULL is
    /// always storable; REAL columns also accept integers (SQLite keeps the
    /// integer representation, which the `Mixed` column storage preserves).
    /// Anything else would poison a typed column vector and is rejected at
    /// ingest by [`crate::database::Database::insert`] / `add_table`.
    pub fn accepts(&self, v: &crate::value::Value) -> bool {
        use crate::value::Value;
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Integer, Value::Int(_))
                | (ColumnType::Real, Value::Int(_) | Value::Real(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }
}

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared affinity.
    pub ty: ColumnType,
}

impl ColumnDef {
    /// Create a column definition.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// A foreign-key edge from a column of this table to a column of another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Index of the referencing column in this table.
    pub column: usize,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column name.
    pub ref_column: String,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Indices of primary-key columns.
    pub primary_key: Vec<usize>,
    /// Outgoing foreign keys.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Create a schema with no keys.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        Self { name: name.into(), columns, primary_key: Vec::new(), foreign_keys: Vec::new() }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Render a `CREATE TABLE` statement (the SQL-style prompt format of
    /// Figure 10 in the paper).
    pub fn create_table_sql(&self) -> String {
        let mut out = format!("CREATE TABLE {} (\n", self.name);
        for (i, col) in self.columns.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&col.name);
            out.push(' ');
            out.push_str(col.ty.sql_name());
            if self.primary_key.len() == 1 && self.primary_key[0] == i {
                out.push_str(" primary key");
            }
            if i + 1 < self.columns.len() || !self.foreign_keys.is_empty() {
                out.push(',');
            }
            out.push('\n');
        }
        for (i, fk) in self.foreign_keys.iter().enumerate() {
            out.push_str(&format!(
                "  foreign key ({}) references {}({})",
                self.columns[fk.column].name, fk.ref_table, fk.ref_column
            ));
            if i + 1 < self.foreign_keys.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(')');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        let mut s = TableSchema::new(
            "concert",
            vec![
                ColumnDef::new("id", ColumnType::Integer),
                ColumnDef::new("name", ColumnType::Text),
                ColumnDef::new("singer_id", ColumnType::Integer),
            ],
        );
        s.primary_key = vec![0];
        s.foreign_keys = vec![ForeignKey {
            column: 2,
            ref_table: "singer".into(),
            ref_column: "id".into(),
        }];
        s
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("NAME"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn create_table_rendering() {
        let sql = schema().create_table_sql();
        assert!(sql.starts_with("CREATE TABLE concert ("), "{sql}");
        assert!(sql.contains("id int primary key"), "{sql}");
        assert!(sql.contains("foreign key (singer_id) references singer(id)"), "{sql}");
        assert!(sql.ends_with(')'), "{sql}");
    }

    #[test]
    fn column_names_in_order() {
        assert_eq!(schema().column_names(), vec!["id", "name", "singer_id"]);
    }
}
