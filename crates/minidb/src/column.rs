//! Columnar table storage: typed column vectors with validity bitmaps and
//! sorted-batch zone maps.
//!
//! Tables store one [`Column`] per schema column instead of row-major
//! `Vec<Vec<Value>>`. A column holds its cells in a typed vector (`i64`,
//! `f64`, or `String`) plus a validity bitmap marking non-NULL slots, so the
//! vectorized executor ([`crate::plan`]'s columnar path) can scan, filter,
//! hash and aggregate without materializing [`Value`]s. Columns whose cells
//! mix types (legal under SQLite dynamic typing, e.g. integers stored into a
//! REAL column) degrade to a `Mixed` vector of values — correct, just not
//! kernel-accelerated.
//!
//! Every Int/Real column also carries **zone maps**: min/max (over valid
//! cells) per fixed-size batch of rows. Equality/range predicates consult
//! them to skip whole batches; generated primary keys are sequential, so
//! point lookups typically touch one batch in [`ZONE_ROWS`].

use crate::value::Value;

/// Rows per zone-map batch. Small enough that benchmark tables (tens to a
/// few hundred rows) split into several prunable zones, large enough that
/// the per-zone bookkeeping is negligible.
pub const ZONE_ROWS: usize = 128;

/// Validity bitmap: bit set ⇒ the cell is non-NULL.
#[derive(Debug, Clone, Default)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
    invalid: usize,
}

impl Validity {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one validity bit.
    pub fn push(&mut self, valid: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if w == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[w] |= 1 << b;
        } else {
            self.invalid += 1;
        }
        self.len += 1;
    }

    /// Is cell `i` non-NULL?
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 != 0
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No bits at all?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Are all cells non-NULL? (Lets kernels skip per-row validity tests.)
    #[inline]
    pub fn all_valid(&self) -> bool {
        self.invalid == 0
    }

    /// Number of non-NULL cells.
    pub fn count_valid(&self) -> usize {
        self.len - self.invalid
    }
}

/// Min/max summary of one zone of rows (valid cells only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Zone<T> {
    pub(crate) min: T,
    pub(crate) max: T,
    /// Whether the zone has at least one non-NULL cell; `min`/`max` are
    /// meaningless when false.
    pub(crate) any_valid: bool,
}

impl<T: PartialOrd + Copy> Zone<T> {
    fn empty(init: T) -> Self {
        Zone { min: init, max: init, any_valid: false }
    }

    fn observe(&mut self, v: T) {
        if !self.any_valid {
            self.min = v;
            self.max = v;
            self.any_valid = true;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
    }
}

/// The typed cell store of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-NULL cells are integers; NULL slots hold 0.
    Int(Vec<i64>),
    /// All non-NULL cells are reals; NULL slots hold 0.0.
    Real(Vec<f64>),
    /// All non-NULL cells are text; NULL slots hold "".
    Text(Vec<String>),
    /// Mixed-type cells (dynamic typing); stored as-is.
    Mixed(Vec<Value>),
}

/// Zone maps for numeric columns (others carry none).
#[derive(Debug, Clone)]
pub(crate) enum Zones {
    Int(Vec<Zone<i64>>),
    Real(Vec<Zone<f64>>),
}

/// One stored column: typed data + validity + optional zone maps.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Validity,
    zones: Option<Zones>,
}

impl Column {
    /// Build a column from row-major cells. Storage type is chosen from the
    /// cells themselves: homogeneous Int/Real/Text get typed vectors,
    /// anything mixed degrades to [`ColumnData::Mixed`]. An all-NULL (or
    /// empty) column uses the declared affinity `ty`.
    pub fn from_values(ty: crate::schema::ColumnType, values: &[Value]) -> Self {
        use crate::schema::ColumnType as CT;
        let mut has_int = false;
        let mut has_real = false;
        let mut has_text = false;
        for v in values {
            match v {
                Value::Null => {}
                Value::Int(_) => has_int = true,
                Value::Real(_) => has_real = true,
                Value::Text(_) => has_text = true,
            }
        }
        let mut col = match (has_int, has_real, has_text) {
            (true, false, false) => Self::empty_typed(CT::Integer),
            (false, true, false) => Self::empty_typed(CT::Real),
            (false, false, true) => Self::empty_typed(CT::Text),
            (false, false, false) => Self::empty_typed(ty),
            _ => Column { data: ColumnData::Mixed(Vec::new()), validity: Validity::new(), zones: None },
        };
        for v in values {
            col.push(v.clone());
        }
        col
    }

    fn empty_typed(ty: crate::schema::ColumnType) -> Self {
        use crate::schema::ColumnType as CT;
        match ty {
            CT::Integer => Column {
                data: ColumnData::Int(Vec::new()),
                validity: Validity::new(),
                zones: Some(Zones::Int(Vec::new())),
            },
            CT::Real => Column {
                data: ColumnData::Real(Vec::new()),
                validity: Validity::new(),
                zones: Some(Zones::Real(Vec::new())),
            },
            CT::Text => Column {
                data: ColumnData::Text(Vec::new()),
                validity: Validity::new(),
                zones: None,
            },
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// No cells?
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Is cell `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        !self.validity.get(i)
    }

    /// Typed cell store.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity bitmap.
    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    pub(crate) fn zones(&self) -> Option<&Zones> {
        self.zones.as_ref()
    }

    /// Materialize cell `i` as a [`Value`] (the row-view shim's unit of
    /// work; the vectorized kernels read the typed vectors directly).
    pub fn get(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Real(v) => Value::Real(v[i]),
            ColumnData::Text(v) => Value::Text(v[i].clone()),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Append one cell, promoting typed storage to `Mixed` when the value's
    /// type does not fit (dynamic typing tolerated, kernels lost).
    pub fn push(&mut self, v: Value) {
        let i = self.validity.len();
        let fits = matches!(
            (&self.data, &v),
            (_, Value::Null)
                | (ColumnData::Int(_), Value::Int(_))
                | (ColumnData::Real(_), Value::Real(_))
                | (ColumnData::Text(_), Value::Text(_))
                | (ColumnData::Mixed(_), _)
        );
        if !fits {
            self.promote_to_mixed();
        }
        match (&mut self.data, &v) {
            (ColumnData::Int(cells), Value::Int(x)) => {
                cells.push(*x);
                if let Some(Zones::Int(zs)) = &mut self.zones {
                    if i / ZONE_ROWS == zs.len() {
                        zs.push(Zone::empty(0));
                    }
                    zs[i / ZONE_ROWS].observe(*x);
                }
            }
            (ColumnData::Real(cells), Value::Real(x)) => {
                cells.push(*x);
                if let Some(Zones::Real(zs)) = &mut self.zones {
                    if i / ZONE_ROWS == zs.len() {
                        zs.push(Zone::empty(0.0));
                    }
                    zs[i / ZONE_ROWS].observe(*x);
                }
            }
            (ColumnData::Text(cells), Value::Text(s)) => cells.push(s.clone()),
            (ColumnData::Mixed(cells), _) => cells.push(v.clone()),
            (ColumnData::Int(cells), Value::Null) => {
                cells.push(0);
                if let Some(Zones::Int(zs)) = &mut self.zones {
                    if i / ZONE_ROWS == zs.len() {
                        zs.push(Zone::empty(0));
                    }
                }
            }
            (ColumnData::Real(cells), Value::Null) => {
                cells.push(0.0);
                if let Some(Zones::Real(zs)) = &mut self.zones {
                    if i / ZONE_ROWS == zs.len() {
                        zs.push(Zone::empty(0.0));
                    }
                }
            }
            (ColumnData::Text(cells), Value::Null) => cells.push(String::new()),
            _ => unreachable!("promotion above guarantees fit"),
        }
        self.validity.push(!v.is_null());
    }

    fn promote_to_mixed(&mut self) {
        let n = self.len();
        let mut cells = Vec::with_capacity(n + 1);
        for i in 0..n {
            cells.push(self.get(i));
        }
        self.data = ColumnData::Mixed(cells);
        self.zones = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnType;

    #[test]
    fn typed_roundtrip_with_nulls() {
        let vals = vec![Value::Int(3), Value::Null, Value::Int(-7)];
        let c = Column::from_values(ColumnType::Integer, &vals);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        assert_eq!((0..3).map(|i| c.get(i)).collect::<Vec<_>>(), vals);
        assert!(c.is_null(1));
        assert_eq!(c.validity().count_valid(), 2);
    }

    #[test]
    fn mixed_cells_degrade_to_value_storage() {
        let vals = vec![Value::Int(1), Value::text("x")];
        let c = Column::from_values(ColumnType::Integer, &vals);
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert_eq!(c.get(1), Value::text("x"));
    }

    #[test]
    fn push_promotes_when_type_changes() {
        let mut c = Column::from_values(ColumnType::Integer, &[Value::Int(1)]);
        assert!(matches!(c.data(), ColumnData::Int(_)));
        c.push(Value::Real(2.5));
        assert!(matches!(c.data(), ColumnData::Mixed(_)));
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Real(2.5));
    }

    #[test]
    fn zone_maps_track_min_max_per_batch() {
        let vals: Vec<Value> = (0..300).map(Value::Int).collect();
        let c = Column::from_values(ColumnType::Integer, &vals);
        let Some(Zones::Int(zs)) = c.zones() else { panic!("int zones") };
        assert_eq!(zs.len(), 3);
        assert_eq!((zs[0].min, zs[0].max), (0, 127));
        assert_eq!((zs[1].min, zs[1].max), (128, 255));
        assert_eq!((zs[2].min, zs[2].max), (256, 299));
        assert!(zs.iter().all(|z| z.any_valid));
    }

    #[test]
    fn all_null_zone_has_no_valid_cells() {
        let c = Column::from_values(ColumnType::Integer, &[Value::Null, Value::Null]);
        let Some(Zones::Int(zs)) = c.zones() else { panic!("int zones") };
        assert_eq!(zs.len(), 1);
        assert!(!zs[0].any_valid);
        assert!(!c.validity().all_valid());
    }
}
