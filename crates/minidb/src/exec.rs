//! Query execution: FROM materialization, joins, filtering, grouping,
//! projection, set operations, ordering, and limits.
//!
//! The executor is a direct interpreter over the `sqlkit` AST — no separate
//! plan stage. Benchmark databases are small (hundreds of rows per table),
//! so nested-loop joins with a work budget are both sufficient and fully
//! deterministic, which matters for the Valid Efficiency Score.

use crate::database::Database;
use crate::error::{ExecError, ExecResult};
use crate::eval::{eval, Binding, Counters, EvalCtx, Scope, WorkOp};
use crate::result::ResultSet;
use crate::value::{row_key_parts, KeyPart, Value};
use sqlkit::ast::*;
use std::collections::{HashMap, HashSet};

/// Default work budget: generous for benchmark-sized data, small enough to
/// stop runaway cross joins from corrupted predictions.
pub const DEFAULT_WORK_BUDGET: u64 = 20_000_000;

/// Execute a query against a database with the default work budget.
pub fn execute(db: &Database, query: &Query) -> ExecResult<ResultSet> {
    execute_with_budget(db, query, DEFAULT_WORK_BUDGET)
}

/// Execute with an explicit work budget (rows touched).
pub fn execute_with_budget(db: &Database, query: &Query, budget: u64) -> ExecResult<ResultSet> {
    let _span = obs::span("minidb.exec.interpret");
    let counters = Counters::new(budget);
    let result = execute_query(db, query, None, &counters);
    counters.flush_obs();
    let mut rs = result?;
    rs.work = counters.work();
    Ok(rs)
}

/// Execute a (possibly compound) query in an optional outer scope.
pub(crate) fn execute_query(
    db: &Database,
    query: &Query,
    outer: Option<&Scope<'_>>,
    counters: &Counters,
) -> ExecResult<ResultSet> {
    if query.set_ops.is_empty() {
        return exec_core(db, &query.body, &query.order_by, query.limit, outer, counters);
    }

    // Compound query: evaluate each arm without ordering, combine, then sort
    // by output-column references.
    let mut acc = exec_core(db, &query.body, &[], None, outer, counters)?;
    for (op, core) in &query.set_ops {
        let rhs = exec_core(db, core, &[], None, outer, counters)?;
        if rhs.columns.len() != acc.columns.len() {
            return Err(ExecError::Arity(format!(
                "set operation arms have {} vs {} columns",
                acc.columns.len(),
                rhs.columns.len()
            )));
        }
        counters.charge(WorkOp::SetOp, (acc.rows.len() + rhs.rows.len()) as u64)?;
        acc.rows = combine_set_op(*op, std::mem::take(&mut acc.rows), rhs.rows);
    }

    // ORDER BY against the output columns.
    if !query.order_by.is_empty() {
        let bindings = vec![Binding { name: None, columns: acc.columns.clone(), offset: 0 }];
        let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::with_capacity(acc.rows.len());
        for row in acc.rows {
            counters.charge(WorkOp::Sort, 1)?;
            let scope = Scope { bindings: &bindings, row: &row, parent: outer };
            let ctx = EvalCtx { db, scope: &scope, group: None, counters };
            let mut keys = Vec::with_capacity(query.order_by.len());
            for k in &query.order_by {
                keys.push(eval(&ctx, &k.expr)?);
            }
            keyed.push((keys, row));
        }
        let desc: Vec<bool> = query.order_by.iter().map(|k| k.desc).collect();
        sort_keyed(&mut keyed, &desc);
        acc.rows = keyed.into_iter().map(|(_, r)| r).collect();
    }
    if let Some(limit) = query.limit {
        acc.rows = apply_limit(acc.rows, limit);
    }
    acc.ordered = !query.order_by.is_empty();
    Ok(acc)
}

/// Row-key set over the engine's trusted-key hasher: callers preserve
/// first-encounter order and never iterate, so the hasher is unobservable.
type KeySet = HashSet<RowKey, crate::value::KeyHashBuilder>;

/// Dedup key for one result row. Single-column rows (the common
/// `SELECT col UNION ...`) key by the bare [`KeyPart`], skipping a per-row
/// `Vec` allocation; set-op arms always agree on arity (checked upstream),
/// so the two variants never meet inside one set.
#[derive(PartialEq, Eq, Hash)]
enum RowKey {
    One(KeyPart),
    Many(Vec<KeyPart>),
}

fn row_key(row: &[Value]) -> RowKey {
    match row {
        [v] => RowKey::One(v.key_part()),
        _ => RowKey::Many(row_key_parts(row)),
    }
}

pub(crate) fn combine_set_op(
    op: SetOp,
    left: Vec<Vec<Value>>,
    right: Vec<Vec<Value>>,
) -> Vec<Vec<Value>> {
    // structured row keys: a value containing a separator byte can never
    // collide two distinct rows (the old "\u{1}"-joined string keys could)
    match op {
        SetOp::UnionAll => {
            let mut out = left;
            out.extend(right);
            out
        }
        SetOp::Union => {
            let mut seen: KeySet = KeySet::default();
            let mut out = Vec::new();
            for row in left.into_iter().chain(right) {
                if seen.insert(row_key(&row)) {
                    out.push(row);
                }
            }
            out
        }
        SetOp::Intersect => {
            let rhs: KeySet = right.iter().map(|r| row_key(r)).collect();
            let mut seen: KeySet = KeySet::default();
            left.into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    rhs.contains(&k) && seen.insert(k)
                })
                .collect()
        }
        SetOp::Except => {
            let rhs: KeySet = right.iter().map(|r| row_key(r)).collect();
            let mut seen: KeySet = KeySet::default();
            left.into_iter()
                .filter(|r| {
                    let k = row_key(r);
                    !rhs.contains(&k) && seen.insert(k)
                })
                .collect()
        }
    }
}

/// A materialized relation: bindings describing the concatenated row layout
/// plus the rows themselves.
struct Relation {
    bindings: Vec<Binding>,
    rows: Vec<Vec<Value>>,
    width: usize,
}

fn table_source(
    db: &Database,
    tref: &TableRef,
    outer: Option<&Scope<'_>>,
    counters: &Counters,
) -> ExecResult<Relation> {
    match tref {
        TableRef::Named { name, alias } => {
            let t = db.table(name)?;
            counters.charge(WorkOp::Scan, t.n_rows() as u64)?;
            let binding = Binding {
                name: Some(alias.clone().unwrap_or_else(|| name.clone())),
                columns: t.schema.column_names(),
                offset: 0,
            };
            Ok(Relation {
                width: t.schema.columns.len(),
                bindings: vec![binding],
                rows: t.to_rows(),
            })
        }
        TableRef::Subquery { query, alias } => {
            let rs = execute_query(db, query, outer, counters)?;
            let binding =
                Binding { name: alias.clone(), columns: rs.columns.clone(), offset: 0 };
            Ok(Relation { width: rs.columns.len(), bindings: vec![binding], rows: rs.rows })
        }
    }
}

/// Resolve a column reference to a flat index within one binding set, or
/// `None` if it does not resolve there (used to route equi-join sides).
pub(crate) fn resolve_in(
    bindings: &[Binding],
    table: Option<&str>,
    column: &str,
) -> Option<usize> {
    for b in bindings {
        if let Some(t) = table {
            let matches =
                b.name.as_deref().map(|n| n.eq_ignore_ascii_case(t)).unwrap_or(false);
            if !matches {
                continue;
            }
        }
        if let Some(ci) = b.columns.iter().position(|c| c.eq_ignore_ascii_case(column)) {
            return Some(b.offset + ci);
        }
    }
    None
}

/// Detect `left_col = right_col` equi-join conditions and return the flat
/// column indices (left-relative, right-relative). Right-side bindings are
/// probed with their *unshifted* offsets.
pub(crate) fn equi_join_columns(
    on: &Expr,
    left: &[Binding],
    right: &[Binding],
) -> Option<(usize, usize)> {
    let Expr::Binary { op: BinOp::Eq, left: a, right: b } = on else {
        return None;
    };
    let (Expr::Column { table: ta, column: ca }, Expr::Column { table: tb, column: cb }) =
        (a.as_ref(), b.as_ref())
    else {
        return None;
    };
    // try (a ∈ left, b ∈ right), then the swap; require each side to resolve
    // on exactly one relation to avoid ambiguity
    let a_left = resolve_in(left, ta.as_deref(), ca);
    let a_right = resolve_in(right, ta.as_deref(), ca);
    let b_left = resolve_in(left, tb.as_deref(), cb);
    let b_right = resolve_in(right, tb.as_deref(), cb);
    match (a_left, a_right, b_left, b_right) {
        (Some(l), None, None, Some(r)) => Some((l, r)),
        (None, Some(r), Some(l), None) => Some((l, r)),
        _ => None,
    }
}

fn materialize_from(
    db: &Database,
    from: &FromClause,
    outer: Option<&Scope<'_>>,
    counters: &Counters,
) -> ExecResult<Relation> {
    let mut rel = table_source(db, &from.base, outer, counters)?;
    for join in &from.joins {
        let mut right = table_source(db, &join.table, outer, counters)?;

        // hash-join fast path: INNER/LEFT join on a plain column equality
        let equi = match (&join.kind, &join.on) {
            (JoinKind::Inner | JoinKind::Left, Some(on)) => {
                equi_join_columns(on, &rel.bindings, &right.bindings)
            }
            _ => None,
        };

        // shift right-side binding offsets past the current row width
        for b in &mut right.bindings {
            b.offset += rel.width;
        }
        let mut bindings = rel.bindings.clone();
        bindings.extend(right.bindings.iter().cloned());
        let combined_width = rel.width + right.width;

        let mut out: Vec<Vec<Value>> = Vec::new();
        if let Some((lcol, rcol)) = equi {
            // build on the right side, probe from the left; NULL keys never
            // match (SQL equality semantics)
            let mut table: HashMap<KeyPart, Vec<usize>> =
                HashMap::with_capacity(right.rows.len());
            for (i, r) in right.rows.iter().enumerate() {
                counters.charge(WorkOp::Join, 1)?;
                let key = &r[rcol];
                if !key.is_null() {
                    table.entry(key.key_part()).or_default().push(i);
                }
            }
            out.reserve(rel.rows.len());
            for l in &rel.rows {
                counters.charge(WorkOp::Join, 1)?;
                let key = &l[lcol];
                let matches: &[usize] = if key.is_null() {
                    &[]
                } else {
                    table.get(&key.key_part()).map(Vec::as_slice).unwrap_or(&[])
                };
                for &ri in matches {
                    counters.charge(WorkOp::Join, 1)?;
                    out.push(joined_row(l, &right.rows[ri], combined_width));
                }
                if matches.is_empty() && join.kind == JoinKind::Left {
                    out.push(padded_row(l, right.width, combined_width));
                }
            }
            rel = Relation { bindings, rows: out, width: combined_width };
            continue;
        }

        // general nested-loop path
        let eval_on = |row: &[Value]| -> ExecResult<bool> {
            match &join.on {
                None => Ok(true),
                Some(on) => {
                    let scope = Scope { bindings: &bindings, row, parent: outer };
                    let ctx = EvalCtx { db, scope: &scope, group: None, counters };
                    Ok(eval(&ctx, on)?.truth() == Some(true))
                }
            }
        };
        match join.kind {
            JoinKind::Inner | JoinKind::Cross => {
                for l in &rel.rows {
                    for r in &right.rows {
                        counters.charge(WorkOp::Join, 1)?;
                        let row = joined_row(l, r, combined_width);
                        if eval_on(&row)? {
                            out.push(row);
                        }
                    }
                }
            }
            JoinKind::Left => {
                for l in &rel.rows {
                    let mut matched = false;
                    for r in &right.rows {
                        counters.charge(WorkOp::Join, 1)?;
                        let row = joined_row(l, r, combined_width);
                        if eval_on(&row)? {
                            matched = true;
                            out.push(row);
                        }
                    }
                    if !matched {
                        out.push(padded_row(l, right.width, combined_width));
                    }
                }
            }
            JoinKind::Right => {
                for r in &right.rows {
                    let mut matched = false;
                    for l in &rel.rows {
                        counters.charge(WorkOp::Join, 1)?;
                        let row = joined_row(l, r, combined_width);
                        if eval_on(&row)? {
                            matched = true;
                            out.push(row);
                        }
                    }
                    if !matched {
                        let mut row: Vec<Value> = Vec::with_capacity(combined_width);
                        row.extend(std::iter::repeat_n(Value::Null, rel.width));
                        row.extend_from_slice(r);
                        out.push(row);
                    }
                }
            }
        }
        rel = Relation { bindings, rows: out, width: combined_width };
    }
    Ok(rel)
}

/// Concatenate a left and a right row into one exactly-sized buffer (the
/// join hot path: one allocation, no clone-then-extend reallocation).
pub(crate) fn joined_row(l: &[Value], r: &[Value], width: usize) -> Vec<Value> {
    let mut row = Vec::with_capacity(width);
    row.extend_from_slice(l);
    row.extend_from_slice(r);
    row
}

/// A left row padded with NULLs on the right (outer-join non-match).
pub(crate) fn padded_row(l: &[Value], right_width: usize, width: usize) -> Vec<Value> {
    let mut row = Vec::with_capacity(width);
    row.extend_from_slice(l);
    row.extend(std::iter::repeat_n(Value::Null, right_width));
    row
}

/// Does any of these expressions contain an aggregate (not entering
/// subqueries)?
pub(crate) fn any_aggregate<'a>(exprs: impl Iterator<Item = &'a Expr>) -> bool {
    for e in exprs {
        if e.contains_aggregate() {
            return true;
        }
    }
    false
}

fn exec_core(
    db: &Database,
    core: &SelectCore,
    order_by: &[OrderKey],
    limit: Option<Limit>,
    outer: Option<&Scope<'_>>,
    counters: &Counters,
) -> ExecResult<ResultSet> {
    // 1. FROM
    let rel = match &core.from {
        Some(from) => materialize_from(db, from, outer, counters)?,
        None => Relation { bindings: Vec::new(), rows: vec![Vec::new()], width: 0 },
    };

    // 2. WHERE
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(rel.rows.len());
    match &core.where_clause {
        None => rows = rel.rows,
        Some(pred) => {
            for row in rel.rows {
                counters.charge(WorkOp::Filter, 1)?;
                let scope = Scope { bindings: &rel.bindings, row: &row, parent: outer };
                let ctx = EvalCtx { db, scope: &scope, group: None, counters };
                if eval(&ctx, pred)?.truth() == Some(true) {
                    rows.push(row);
                }
            }
        }
    }

    // 3. aggregate mode detection
    let select_exprs = core.items.iter().filter_map(|i| match i {
        SelectItem::Expr { expr, .. } => Some(expr),
        _ => None,
    });
    let agg_mode = !core.group_by.is_empty()
        || core.having.is_some()
        || any_aggregate(select_exprs)
        || any_aggregate(order_by.iter().map(|k| &k.expr));

    // output column names
    let columns = output_columns(core, &rel.bindings)?;

    // alias map for ORDER BY name resolution (alias → item index)
    let mut alias_index: HashMap<String, usize> = HashMap::new();
    for (i, item) in core.items.iter().enumerate() {
        if let SelectItem::Expr { alias: Some(a), .. } = item {
            alias_index.insert(a.to_lowercase(), i);
        }
    }

    let null_row: Vec<Value> = std::iter::repeat_n(Value::Null, rel.width).collect();

    // 4. produce output units: (projected row, order keys)
    let mut keyed: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    if agg_mode {
        // group rows
        let mut groups: Vec<Vec<Vec<Value>>> = Vec::new();
        if core.group_by.is_empty() {
            groups.push(rows);
        } else {
            let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
            for row in rows {
                counters.charge(WorkOp::Group, 1)?;
                let scope = Scope { bindings: &rel.bindings, row: &row, parent: outer };
                let ctx = EvalCtx { db, scope: &scope, group: None, counters };
                let mut key = Vec::with_capacity(core.group_by.len());
                for g in &core.group_by {
                    key.push(eval(&ctx, g)?.key_part());
                }
                let gi = *index.entry(key).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[gi].push(row);
            }
        }
        for group in &groups {
            counters.charge(WorkOp::Group, 1)?;
            let head: &[Value] = group.first().map(|r| r.as_slice()).unwrap_or(&null_row);
            let scope = Scope { bindings: &rel.bindings, row: head, parent: outer };
            let ctx = EvalCtx { db, scope: &scope, group: Some(group), counters };
            if let Some(having) = &core.having {
                if eval(&ctx, having)?.truth() != Some(true) {
                    continue;
                }
            }
            let out = project(&ctx, core, &rel.bindings, head)?;
            let keys = order_keys(&ctx, order_by, &alias_index, &out)?;
            keyed.push((keys, out));
        }
    } else {
        for row in &rows {
            counters.charge(WorkOp::Project, 1)?;
            let scope = Scope { bindings: &rel.bindings, row, parent: outer };
            let ctx = EvalCtx { db, scope: &scope, group: None, counters };
            let out = project(&ctx, core, &rel.bindings, row)?;
            let keys = order_keys(&ctx, order_by, &alias_index, &out)?;
            keyed.push((keys, out));
        }
    }

    // 5. DISTINCT
    if core.distinct {
        let mut seen = HashSet::new();
        keyed.retain(|(_, row)| seen.insert(row_key_parts(row)));
    }

    // 6. ORDER BY + LIMIT
    if !order_by.is_empty() {
        let desc: Vec<bool> = order_by.iter().map(|k| k.desc).collect();
        sort_keyed(&mut keyed, &desc);
    }
    let mut out_rows: Vec<Vec<Value>> = keyed.into_iter().map(|(_, r)| r).collect();
    if let Some(limit) = limit {
        out_rows = apply_limit(out_rows, limit);
    }

    Ok(ResultSet { columns, rows: out_rows, ordered: !order_by.is_empty(), work: 0 })
}

pub(crate) fn output_columns(core: &SelectCore, bindings: &[Binding]) -> ExecResult<Vec<String>> {
    let mut cols = Vec::new();
    for item in &core.items {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    cols.extend(b.columns.iter().cloned());
                }
                if bindings.is_empty() {
                    return Err(ExecError::Unsupported("SELECT * without FROM".into()));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let b = bindings
                    .iter()
                    .find(|b| {
                        b.name.as_deref().map(|n| n.eq_ignore_ascii_case(t)).unwrap_or(false)
                    })
                    .ok_or_else(|| ExecError::UnknownTable(t.clone()))?;
                cols.extend(b.columns.iter().cloned());
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column { column, .. } => column.clone(),
                        other => {
                            let mut s = String::new();
                            render_expr_name(&mut s, other);
                            s
                        }
                    },
                };
                cols.push(name);
            }
        }
    }
    Ok(cols)
}

fn render_expr_name(out: &mut String, e: &Expr) {
    // Reuse the printer through a throwaway query-free rendering.
    let item_sql = sqlkit::to_sql(&Query::simple(SelectCore::new(vec![SelectItem::expr(
        e.clone(),
    )])));
    out.push_str(item_sql.trim_start_matches("SELECT "));
}

fn project(
    ctx: &EvalCtx<'_>,
    core: &SelectCore,
    bindings: &[Binding],
    head: &[Value],
) -> ExecResult<Vec<Value>> {
    let mut out = Vec::with_capacity(core.items.len());
    for item in &core.items {
        match item {
            SelectItem::Wildcard => {
                out.extend(head.iter().cloned());
            }
            SelectItem::QualifiedWildcard(t) => {
                let b = bindings
                    .iter()
                    .find(|b| {
                        b.name.as_deref().map(|n| n.eq_ignore_ascii_case(t)).unwrap_or(false)
                    })
                    .ok_or_else(|| ExecError::UnknownTable(t.clone()))?;
                out.extend(head[b.offset..b.offset + b.columns.len()].iter().cloned());
            }
            SelectItem::Expr { expr, .. } => out.push(eval(ctx, expr)?),
        }
    }
    Ok(out)
}

/// Evaluate ORDER BY keys in the row/group context, falling back to select
/// aliases for bare column references (SQLite resolution order).
fn order_keys(
    ctx: &EvalCtx<'_>,
    order_by: &[OrderKey],
    alias_index: &HashMap<String, usize>,
    projected: &[Value],
) -> ExecResult<Vec<Value>> {
    let mut keys = Vec::with_capacity(order_by.len());
    for k in order_by {
        // alias reference?
        if let Expr::Column { table: None, column } = &k.expr {
            if let Some(&idx) = alias_index.get(&column.to_lowercase()) {
                keys.push(projected[idx].clone());
                continue;
            }
        }
        match eval(ctx, &k.expr) {
            Ok(v) => keys.push(v),
            Err(ExecError::UnknownColumn(name)) => {
                // final fallback: maybe it names a projected output column
                let lname = name.to_lowercase();
                if let Some(&idx) = alias_index.get(&lname) {
                    keys.push(projected[idx].clone());
                } else {
                    return Err(ExecError::UnknownColumn(name));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(keys)
}

/// Stable sort of `(keys, row)` pairs by the per-key descending flags.
pub(crate) fn sort_keyed<T>(keyed: &mut [(Vec<Value>, T)], desc: &[bool]) {
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, d) in desc.iter().enumerate() {
            let ord = ka[i].sql_cmp(&kb[i]);
            let ord = if *d { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

pub(crate) fn apply_limit<T>(rows: Vec<T>, limit: Limit) -> Vec<T> {
    rows.into_iter().skip(limit.offset as usize).take(limit.count as usize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::TableBuilder;
    use crate::value::Value as V;

    fn db() -> Database {
        let mut db = Database::new("concert_singer");
        db.add_table(
            TableBuilder::new("singer")
                .column_int("id")
                .column_text("name")
                .column_text("country")
                .column_int("age")
                .primary_key(&["id"])
                .rows(vec![
                    vec![V::Int(1), V::text("Ann"), V::text("US"), V::Int(30)],
                    vec![V::Int(2), V::text("Bo"), V::text("UK"), V::Int(20)],
                    vec![V::Int(3), V::text("Cy"), V::text("US"), V::Int(40)],
                    vec![V::Int(4), V::text("Dee"), V::text("FR"), V::Int(25)],
                ])
                .build(),
        )
        .unwrap();
        db.add_table(
            TableBuilder::new("concert")
                .column_int("cid")
                .column_int("singer_id")
                .column_int("year")
                .column_text("venue")
                .primary_key(&["cid"])
                .foreign_key("singer_id", "singer", "id")
                .rows(vec![
                    vec![V::Int(10), V::Int(1), V::Int(2014), V::text("Alpha")],
                    vec![V::Int(11), V::Int(1), V::Int(2015), V::text("Beta")],
                    vec![V::Int(12), V::Int(2), V::Int(2014), V::text("Alpha")],
                    vec![V::Int(13), V::Int(9), V::Int(2016), V::text("Gamma")],
                ])
                .build(),
        )
        .unwrap();
        db
    }

    fn run(sql: &str) -> ResultSet {
        db().run(sql).unwrap_or_else(|e| panic!("run `{sql}`: {e}"))
    }

    fn cell(rs: &ResultSet, r: usize, c: usize) -> &V {
        &rs.rows[r][c]
    }

    #[test]
    fn simple_projection_and_filter() {
        let rs = run("SELECT name FROM singer WHERE age > 25");
        let mut names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["Ann", "Cy"]);
        assert_eq!(rs.columns, vec!["name"]);
    }

    #[test]
    fn select_star_expands() {
        let rs = run("SELECT * FROM singer");
        assert_eq!(rs.columns, vec!["id", "name", "country", "age"]);
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn qualified_wildcard() {
        let rs = run("SELECT T1.* FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id");
        assert_eq!(rs.columns, vec!["id", "name", "country", "age"]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn inner_join() {
        let rs = run(
            "SELECT T1.name, T2.venue FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id",
        );
        assert_eq!(rs.rows.len(), 3, "singer 9 has no match");
    }

    #[test]
    fn left_join_pads_nulls() {
        let rs = run(
            "SELECT T1.name, T2.venue FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id ORDER BY T1.id",
        );
        assert_eq!(rs.rows.len(), 5, "Ann twice, Bo once, Cy+Dee padded");
        assert!(rs.rows.iter().any(|r| r[0] == V::text("Cy") && r[1].is_null()));
    }

    #[test]
    fn right_join() {
        let rs = run(
            "SELECT T1.name, T2.venue FROM singer AS T1 RIGHT JOIN concert AS T2 ON T1.id = T2.singer_id",
        );
        assert_eq!(rs.rows.len(), 4, "concert 13 has no singer");
        assert!(rs.rows.iter().any(|r| r[0].is_null() && r[1] == V::text("Gamma")));
    }

    #[test]
    fn comma_join_is_cross() {
        let rs = run("SELECT singer.name FROM singer, concert");
        assert_eq!(rs.rows.len(), 16);
    }

    #[test]
    fn group_by_count() {
        let rs = run("SELECT country, COUNT(*) FROM singer GROUP BY country ORDER BY country");
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(cell(&rs, 2, 0), &V::text("US"));
        assert_eq!(cell(&rs, 2, 1), &V::Int(2));
    }

    #[test]
    fn having_filters_groups() {
        let rs = run(
            "SELECT country FROM singer GROUP BY country HAVING COUNT(*) > 1",
        );
        assert_eq!(rs.rows, vec![vec![V::text("US")]]);
    }

    #[test]
    fn aggregates() {
        let rs = run("SELECT COUNT(*), SUM(age), AVG(age), MIN(age), MAX(age) FROM singer");
        assert_eq!(rs.rows[0], vec![V::Int(4), V::Int(115), V::Real(28.75), V::Int(20), V::Int(40)]);
    }

    #[test]
    fn aggregates_on_empty_input() {
        let rs = run("SELECT COUNT(*), SUM(age), MAX(age) FROM singer WHERE age > 100");
        assert_eq!(rs.rows[0], vec![V::Int(0), V::Null, V::Null]);
    }

    #[test]
    fn count_distinct() {
        let rs = run("SELECT COUNT(DISTINCT country) FROM singer");
        assert_eq!(rs.rows[0], vec![V::Int(3)]);
    }

    #[test]
    fn order_by_and_limit() {
        let rs = run("SELECT name FROM singer ORDER BY age DESC LIMIT 2");
        assert!(rs.ordered);
        assert_eq!(rs.rows, vec![vec![V::text("Cy")], vec![V::text("Ann")]]);
    }

    #[test]
    fn order_by_alias() {
        let rs = run("SELECT age * 2 AS doubled FROM singer ORDER BY doubled LIMIT 1");
        assert_eq!(rs.rows[0], vec![V::Int(40)]);
    }

    #[test]
    fn order_by_aggregate() {
        let rs = run(
            "SELECT country FROM singer GROUP BY country ORDER BY COUNT(*) DESC, country LIMIT 1",
        );
        assert_eq!(rs.rows[0], vec![V::text("US")]);
    }

    #[test]
    fn limit_offset() {
        let rs = run("SELECT name FROM singer ORDER BY id LIMIT 2 OFFSET 1");
        assert_eq!(rs.rows, vec![vec![V::text("Bo")], vec![V::text("Cy")]]);
    }

    #[test]
    fn distinct() {
        let rs = run("SELECT DISTINCT country FROM singer");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn in_subquery() {
        let rs = run("SELECT name FROM singer WHERE id IN (SELECT singer_id FROM concert)");
        let mut names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["Ann", "Bo"]);
    }

    #[test]
    fn not_in_subquery() {
        let rs = run("SELECT name FROM singer WHERE id NOT IN (SELECT singer_id FROM concert)");
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn scalar_subquery() {
        let rs = run("SELECT name FROM singer WHERE age > (SELECT AVG(age) FROM singer)");
        let mut names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        names.sort();
        assert_eq!(names, vec!["Ann", "Cy"]);
    }

    #[test]
    fn correlated_exists() {
        let rs = run(
            "SELECT name FROM singer WHERE EXISTS (SELECT 1 FROM concert WHERE concert.singer_id = singer.id AND concert.year = 2015)",
        );
        assert_eq!(rs.rows, vec![vec![V::text("Ann")]]);
    }

    #[test]
    fn correlated_scalar() {
        let rs = run(
            "SELECT name, (SELECT COUNT(*) FROM concert WHERE concert.singer_id = singer.id) FROM singer ORDER BY id",
        );
        assert_eq!(cell(&rs, 0, 1), &V::Int(2));
        assert_eq!(cell(&rs, 3, 1), &V::Int(0));
    }

    #[test]
    fn union_dedupes() {
        let rs = run("SELECT country FROM singer UNION SELECT country FROM singer");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn union_all_keeps_duplicates() {
        let rs = run("SELECT country FROM singer UNION ALL SELECT country FROM singer");
        assert_eq!(rs.rows.len(), 8);
    }

    #[test]
    fn intersect_and_except() {
        let rs = run(
            "SELECT venue FROM concert WHERE year = 2014 INTERSECT SELECT venue FROM concert WHERE year = 2015",
        );
        assert_eq!(rs.rows.len(), 0);
        let rs = run(
            "SELECT venue FROM concert EXCEPT SELECT venue FROM concert WHERE year = 2014",
        );
        let mut v: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        v.sort();
        assert_eq!(v, vec!["Beta", "Gamma"]);
    }

    #[test]
    fn compound_order_by() {
        let rs = run(
            "SELECT name FROM singer WHERE age < 25 UNION SELECT name FROM singer WHERE age > 35 ORDER BY name DESC",
        );
        assert_eq!(rs.rows, vec![vec![V::text("Cy")], vec![V::text("Bo")]]);
    }

    #[test]
    fn from_subquery() {
        let rs = run(
            "SELECT sub.c FROM (SELECT country AS c, COUNT(*) AS n FROM singer GROUP BY country) AS sub WHERE sub.n > 1",
        );
        assert_eq!(rs.rows, vec![vec![V::text("US")]]);
    }

    #[test]
    fn case_expression() {
        let rs = run(
            "SELECT name, CASE WHEN age >= 30 THEN 'old' ELSE 'young' END FROM singer ORDER BY id LIMIT 2",
        );
        assert_eq!(cell(&rs, 0, 1), &V::text("old"));
        assert_eq!(cell(&rs, 1, 1), &V::text("young"));
    }

    #[test]
    fn iif_function() {
        let rs = run("SELECT IIF(age > 25, 1, 0) FROM singer ORDER BY id");
        let v: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| if let V::Int(i) = r[0] { i } else { panic!() })
            .collect();
        assert_eq!(v, vec![1, 0, 1, 0]);
    }

    #[test]
    fn like_predicate() {
        let rs = run("SELECT name FROM singer WHERE name LIKE '%n%'");
        assert_eq!(rs.rows.len(), 1, "Ann only (ASCII case-insensitive)");
    }

    #[test]
    fn between_predicate() {
        let rs = run("SELECT name FROM singer WHERE age BETWEEN 20 AND 30 ORDER BY age");
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn arithmetic_in_projection() {
        let rs = run("SELECT age + 1, age / 2, age % 7 FROM singer WHERE id = 1");
        assert_eq!(rs.rows[0], vec![V::Int(31), V::Int(15), V::Int(2)]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let rs = run("SELECT age / 0 FROM singer WHERE id = 1");
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(matches!(
            db().run("SELECT nonexistent FROM singer"),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn unknown_table_errors() {
        assert!(matches!(db().run("SELECT x FROM nope"), Err(ExecError::UnknownTable(_))));
    }

    #[test]
    fn set_op_arity_mismatch_errors() {
        assert!(matches!(
            db().run("SELECT id, name FROM singer UNION SELECT id FROM singer"),
            Err(ExecError::Arity(_))
        ));
    }

    #[test]
    fn work_counter_nonzero_and_deterministic() {
        let db = db();
        let q = sqlkit::parse_query("SELECT * FROM singer JOIN concert ON singer.id = concert.singer_id").unwrap();
        let a = execute(&db, &q).unwrap();
        let b = execute(&db, &q).unwrap();
        assert!(a.work > 0);
        assert_eq!(a.work, b.work);
    }

    #[test]
    fn budget_trips_on_huge_cross_join() {
        let db = db();
        let q = sqlkit::parse_query(
            "SELECT * FROM singer, concert, singer AS s2, concert AS c2, singer AS s3, concert AS c3",
        )
        .unwrap();
        let res = execute_with_budget(&db, &q, 1000);
        assert!(matches!(res, Err(ExecError::ResourceExhausted(_))));
    }

    #[test]
    fn no_from_select() {
        let rs = run("SELECT 1, 'x'");
        assert_eq!(rs.rows, vec![vec![V::Int(1), V::text("x")]]);
    }

    #[test]
    fn group_by_with_join() {
        let rs = run(
            "SELECT T1.name, COUNT(*) FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id GROUP BY T1.name ORDER BY COUNT(*) DESC",
        );
        assert_eq!(rs.rows[0], vec![V::text("Ann"), V::Int(2)]);
    }

    #[test]
    fn null_handling_in_where() {
        // padded NULLs from the left join never satisfy equality
        let rs = run(
            "SELECT T1.name FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id WHERE T2.year = 2014",
        );
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        // `a = b` takes the hash path; `b = a AND 1 = 1` is structurally not
        // a plain column equality, so it takes the nested-loop path — both
        // must produce identical result multisets.
        let db = db();
        let hash = db
            .run("SELECT T1.name, T2.venue FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id")
            .unwrap();
        let nested = db
            .run("SELECT T1.name, T2.venue FROM singer AS T1 JOIN concert AS T2 ON T2.singer_id = T1.id AND 1 = 1")
            .unwrap();
        assert!(crate::result::results_equivalent(&hash, &nested));
        assert!(hash.work < nested.work, "hash join must do less work");
    }

    #[test]
    fn hash_left_join_agrees_with_nested_loop() {
        let db = db();
        let hash = db
            .run("SELECT T1.name, T2.venue FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id")
            .unwrap();
        let nested = db
            .run("SELECT T1.name, T2.venue FROM singer AS T1 LEFT JOIN concert AS T2 ON T1.id = T2.singer_id AND 1 = 1")
            .unwrap();
        assert!(crate::result::results_equivalent(&hash, &nested));
    }

    #[test]
    fn hash_join_skips_null_keys() {
        let mut db = Database::new("nulls");
        db.add_table(
            TableBuilder::new("l")
                .column_int("id")
                .column_int("k")
                .rows(vec![
                    vec![V::Int(1), V::Int(10)],
                    vec![V::Int(2), V::Null],
                ])
                .build(),
        )
        .unwrap();
        db.add_table(
            TableBuilder::new("r")
                .column_int("id")
                .column_int("k")
                .rows(vec![
                    vec![V::Int(1), V::Int(10)],
                    vec![V::Int(2), V::Null],
                ])
                .build(),
        )
        .unwrap();
        let rs = db.run("SELECT l.id, r.id FROM l JOIN r ON l.k = r.k").unwrap();
        assert_eq!(rs.rows, vec![vec![V::Int(1), V::Int(1)]], "NULL = NULL never joins");
    }

    #[test]
    fn ves_style_work_scaling() {
        // LIMIT-ed scans do not reduce scan work here (no index), but a
        // filtered join touches more rows than a single-table scan.
        let scan = run("SELECT name FROM singer");
        let join = run("SELECT T1.name FROM singer AS T1 JOIN concert AS T2 ON T1.id = T2.singer_id");
        assert!(join.work > scan.work);
    }
}
