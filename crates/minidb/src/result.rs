//! Query results and the execution-accuracy equivalence check.

use crate::value::{row_key_parts, KeyPart, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSet {
    /// Output column names (aliases, rendered expressions, or `*`-expanded
    /// column names).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Whether the query carried a top-level ORDER BY, making row order
    /// semantically meaningful for equivalence checks.
    pub ordered: bool,
    /// Deterministic execution cost: rows touched while executing. Used by
    /// the Valid Efficiency Score so results don't depend on wall-clock
    /// noise.
    pub work: u64,
}

impl ResultSet {
    /// An empty result with the given column names.
    pub fn empty(columns: Vec<String>) -> Self {
        Self { columns, rows: Vec::new(), ordered: false, work: 0 }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Canonical multiset signature of the rows (ignores column names).
    fn multiset(&self) -> HashMap<Vec<KeyPart>, usize> {
        let mut m = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            // structured key: no separator-byte collisions between rows
            *m.entry(row_key_parts(row)).or_insert(0) += 1;
        }
        m
    }
}

/// Execution-accuracy equivalence between a gold and a predicted result.
///
/// Mirrors the Spider/BIRD execution-match convention:
/// * row **multisets** must match (duplicates matter);
/// * when the *gold* query is ordered (top-level ORDER BY), the row
///   **sequence** must match as well;
/// * column names are ignored, but arity must agree;
/// * `1` and `1.0` compare equal (numeric canonicalization).
pub fn results_equivalent(gold: &ResultSet, pred: &ResultSet) -> bool {
    if gold.rows.len() != pred.rows.len() {
        return false;
    }
    if gold.columns.len() != pred.columns.len() {
        return false;
    }
    if gold.ordered {
        gold.rows.iter().zip(&pred.rows).all(|(g, p)| row_key_parts(g) == row_key_parts(p))
    } else {
        gold.multiset() == pred.multiset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(rows: Vec<Vec<Value>>, ordered: bool) -> ResultSet {
        let cols = rows.first().map(|r| r.len()).unwrap_or(1);
        ResultSet {
            columns: (0..cols).map(|i| format!("c{i}")).collect(),
            rows,
            ordered,
            work: 0,
        }
    }

    #[test]
    fn unordered_multiset_semantics() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], false);
        assert!(results_equivalent(&a, &b));
    }

    #[test]
    fn duplicates_matter() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(1)]], false);
        let b = rs(vec![vec![Value::Int(1)]], false);
        assert!(!results_equivalent(&a, &b));
    }

    #[test]
    fn ordered_sequence_semantics() {
        let a = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], true);
        let b = rs(vec![vec![Value::Int(2)], vec![Value::Int(1)]], true);
        assert!(!results_equivalent(&a, &b));
        let c = rs(vec![vec![Value::Int(1)], vec![Value::Int(2)]], false);
        assert!(results_equivalent(&a, &c), "only gold's ordered flag matters");
    }

    #[test]
    fn numeric_canonicalization() {
        let a = rs(vec![vec![Value::Int(1)]], false);
        let b = rs(vec![vec![Value::Real(1.0)]], false);
        assert!(results_equivalent(&a, &b));
        let c = rs(vec![vec![Value::text("1")]], false);
        assert!(!results_equivalent(&a, &c));
    }

    #[test]
    fn arity_must_agree() {
        let a = rs(vec![vec![Value::Int(1)]], false);
        let mut b = rs(vec![vec![Value::Int(1), Value::Int(2)]], false);
        b.rows = vec![vec![Value::Int(1), Value::Int(2)]];
        assert!(!results_equivalent(&a, &b));
    }

    #[test]
    fn empty_results_equal() {
        let a = rs(vec![], false);
        let b = rs(vec![], false);
        assert!(results_equivalent(&a, &b));
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }

    #[test]
    fn null_rows_compare() {
        let a = rs(vec![vec![Value::Null]], false);
        let b = rs(vec![vec![Value::Null]], false);
        assert!(results_equivalent(&a, &b));
    }
}
