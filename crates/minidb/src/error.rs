//! Execution error type.

use std::fmt;

/// Result alias for execution.
pub type ExecResult<T> = std::result::Result<T, ExecError>;

/// An error raised while executing a query.
///
/// Predicted SQL from NL2SQL systems frequently references unknown columns or
/// tables; such failures simply count as wrong under the EX metric, so the
/// variants carry enough context for error analysis without aborting an
/// evaluation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The SQL text failed to parse.
    Parse(String),
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist in scope.
    UnknownColumn(String),
    /// A column reference matched more than one table in scope.
    AmbiguousColumn(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Mismatched arity (inserted row width, set-operation widths, ...).
    Arity(String),
    /// Type error during evaluation (e.g. SUM over text).
    Type(String),
    /// Unsupported construct reached the executor.
    Unsupported(String),
    /// Scalar subquery returned more than one row/column.
    CardinalityViolation(String),
    /// Resource guard tripped (row budget exceeded; runaway cross joins).
    ResourceExhausted(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Parse(m) => write!(f, "parse error: {m}"),
            ExecError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            ExecError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            ExecError::DuplicateTable(t) => write!(f, "duplicate table: {t}"),
            ExecError::Arity(m) => write!(f, "arity error: {m}"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::Unsupported(m) => write!(f, "unsupported: {m}"),
            ExecError::CardinalityViolation(m) => write!(f, "cardinality violation: {m}"),
            ExecError::ResourceExhausted(m) => write!(f, "resource exhausted: {m}"),
        }
    }
}

impl ExecError {
    /// The offending table/column/function name, when the error payload
    /// identifies one:
    ///
    /// - `UnknownTable` / `UnknownColumn` / `AmbiguousColumn`: the payload
    ///   itself (columns render as `table.column` when qualified).
    /// - `Arity`: the leading all-uppercase token of a function-arity
    ///   message (`"ROUND expects 1 or 2 args"` → `ROUND`); width-mismatch
    ///   messages (`"set operation arms ..."`, `"insert ..."`) name nothing.
    /// - `Unsupported`: `"function X"` → `X`, `"aggregate X ..."` → `X`.
    ///
    /// Static analysis (the `sqlcheck` crate) matches this against its
    /// `Diagnostic::ident` in the differential parity suite.
    pub fn offending_name(&self) -> Option<&str> {
        match self {
            ExecError::UnknownTable(t) | ExecError::DuplicateTable(t) => Some(t),
            ExecError::UnknownColumn(c) | ExecError::AmbiguousColumn(c) => Some(c),
            ExecError::Arity(m) => {
                let first = m.split_whitespace().next()?;
                (!first.is_empty() && first.chars().all(|c| c.is_ascii_uppercase()))
                    .then_some(first)
            }
            ExecError::Unsupported(m) => {
                if let Some(rest) = m.strip_prefix("function ") {
                    Some(rest)
                } else if let Some(rest) = m.strip_prefix("aggregate ") {
                    rest.split_whitespace().next()
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl std::error::Error for ExecError {}

impl From<sqlkit::Error> for ExecError {
    fn from(e: sqlkit::Error) -> Self {
        ExecError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(ExecError::UnknownTable("t".into()).to_string(), "unknown table: t");
        assert_eq!(ExecError::UnknownColumn("c".into()).to_string(), "unknown column: c");
    }

    #[test]
    fn offending_name_extraction() {
        assert_eq!(ExecError::UnknownTable("t".into()).offending_name(), Some("t"));
        assert_eq!(
            ExecError::UnknownColumn("t1.age".into()).offending_name(),
            Some("t1.age")
        );
        assert_eq!(
            ExecError::Arity("ROUND expects 1 or 2 args".into()).offending_name(),
            Some("ROUND")
        );
        assert_eq!(
            ExecError::Arity("set operation arms have 1 vs 2 columns".into()).offending_name(),
            None
        );
        assert_eq!(
            ExecError::Unsupported("function TRIM".into()).offending_name(),
            Some("TRIM")
        );
        assert_eq!(
            ExecError::Unsupported("aggregate SUM outside GROUP context".into())
                .offending_name(),
            Some("SUM")
        );
        assert_eq!(
            ExecError::Unsupported("SELECT * without FROM".into()).offending_name(),
            None
        );
        assert_eq!(ExecError::Parse("boom".into()).offending_name(), None);
    }

    #[test]
    fn from_parse_error() {
        let pe = sqlkit::Error::new(3, "boom");
        let ee: ExecError = pe.into();
        assert!(matches!(ee, ExecError::Parse(_)));
    }
}
